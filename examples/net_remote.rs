//! The service behind its TCP front door: bind a loopback `NetServer`,
//! connect a `Client`, solve by value once to learn the instance id,
//! then go id-addressed — including a reconnect that resumes from
//! nothing but the persisted raw id (DESIGN.md §13).
//!
//! Run with `cargo run --release --example net_remote`.

use hsa::engine::net::{Client, NetConfig, NetServer};
use hsa::engine::{Engine, EngineConfig, Service, ServiceConfig, TenantId};
use hsa::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = hsa::workloads::paper_scenario();
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let service = Arc::new(Service::new(Arc::clone(&engine), ServiceConfig::default()));
    let server = NetServer::bind("127.0.0.1:0", service, NetConfig::default())?;
    println!("serving on {}", server.local_addr());

    // First contact goes by value; the answer carries the instance id.
    let mut client = Client::connect(server.local_addr())?;
    let first = client.solve(&sc.tree, &sc.costs, Lambda::HALF)?;
    let id = first.instance_id().expect("first contact learns the id");
    let sol = first.solution().expect("solve answers a solution");
    println!(
        "solved by value: objective {}, S {} / B {}, id {:#018x}",
        sol.objective,
        sol.report.host_time,
        sol.report.bottleneck,
        id.raw()
    );

    // Hot path: id-addressed, a λ sweep without trees on the wire.
    for n in [0u32, 2, 4, 6, 8] {
        let lambda = Lambda::new(n, 8).unwrap();
        let reply = client.solve_by_id(id, lambda)?;
        let sol = reply.solution().expect("id-addressed solve answers");
        println!("  λ = {n}/8 → objective {}", sol.objective);
    }

    // A tenant session over the wire: one drift step, answered FIFO.
    let tenant = TenantId(1);
    client.open_tenant(tenant, &sc.tree, &sc.costs)?;
    let busier = Delta::new().scale_subtree(sc.tree.root(), 11, 10);
    let applied = client.delta(tenant, busier, Lambda::HALF)?;
    let drifted = applied.solution().expect("delta answers a solution");
    println!(
        "after a 10% busier tree: objective {} (was {})",
        drifted.objective, sol.objective
    );
    let stats = client.close_tenant(tenant)?;
    println!("tenant closed after {} applies", stats.applies);

    // Reconnect and resume from nothing but the persisted raw id.
    let raw = id.raw();
    drop(client);
    let mut client = Client::connect(server.local_addr())?;
    let resumed = client.solve_by_id(hsa::engine::InstanceId::from_raw(raw), Lambda::HALF)?;
    println!(
        "reconnected, resumed by raw id: objective {}",
        resumed.solution().expect("resumed solve answers").objective
    );

    server.shutdown();
    println!("server drained and closed");
    Ok(())
}
