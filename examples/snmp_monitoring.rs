//! SNMP network monitoring (the paper's §3 second motivating domain):
//! where should MIB polling, rate computation and health detection run —
//! on the managed devices or on the manager? Sweeps the fleet size and
//! reports how the optimal split and the gains evolve.
//!
//! ```sh
//! cargo run --example snmp_monitoring
//! ```

use hsa::prelude::*;

fn main() {
    println!("agents | optimal µs | central µs | speed-up | CRUs on devices");
    println!("-------+------------+------------+----------+----------------");
    for n_agents in [1usize, 2, 4, 8, 12] {
        let scenario = snmp_scenario(&SnmpParams {
            n_agents,
            ..SnmpParams::default()
        });
        let prep = Prepared::new(&scenario.tree, &scenario.costs).expect("valid scenario");
        let optimal = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let central = AllOnHost.solve(&prep, Lambda::HALF).unwrap();
        let on_devices: usize = optimal
            .assignment
            .per_satellite
            .iter()
            .map(|v| v.len())
            .sum();
        println!(
            "{:>6} | {:>10} | {:>10} | {:>7.2}× | {:>3} of {}",
            n_agents,
            optimal.delay(),
            central.delay(),
            central.delay().ticks() as f64 / optimal.delay().ticks().max(1) as f64,
            on_devices,
            scenario.tree.len(),
        );
    }

    // Detail view for the default fleet: who does what.
    let scenario = snmp_scenario(&SnmpParams::default());
    let prep = Prepared::new(&scenario.tree, &scenario.costs).unwrap();
    let sol = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
    println!("\ndefault fleet deployment:");
    println!(
        "  manager runs: {:?}",
        sol.assignment
            .host
            .iter()
            .map(|&c| scenario.tree.node_unchecked(c).name.clone())
            .collect::<Vec<_>>()
    );
    for (d, tasks) in sol.assignment.per_satellite.iter().enumerate() {
        println!(
            "  device {d} runs: {:?}",
            tasks
                .iter()
                .map(|&c| scenario.tree.node_unchecked(c).name.clone())
                .collect::<Vec<_>>()
        );
    }
    println!(
        "  manager time {} µs + bottleneck device {} µs = {} µs",
        sol.report.host_time,
        sol.report.bottleneck,
        sol.delay()
    );
}
