//! Quickstart: build a small context-reasoning tree by hand, solve it with
//! the paper's algorithm, and inspect the deployment.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hsa::prelude::*;
use hsa::tree::render::render_tree;

fn main() {
    // A tiny wearable: one fusion CRU on the phone (host), two sensor
    // pipelines on two sensor boxes (satellites).
    let mut b = TreeBuilder::new("fusion");
    let root = b.root();
    let ecg_feat = b.add_child(root, "ecg-features");
    let ecg = b.add_child(ecg_feat, "ecg-filter");
    let act = b.add_child(root, "activity");
    let accel = b.add_child(act, "accel-filter");
    let tree = b.build();

    // Costs in microseconds per one-second frame. `h` = on the phone,
    // `s` = on the sensor box; `c_up` ships a stage's output, `c_raw` the
    // raw signal.
    let mut costs = CostModel::zeroed(&tree, 2);
    let us = Cost::new;
    costs
        .set_host_time(root, us(2_000))
        .set_satellite_time(root, us(8_000));
    costs
        .set_host_time(ecg_feat, us(9_000))
        .set_satellite_time(ecg_feat, us(3_000))
        .set_comm_up(ecg_feat, us(700));
    costs
        .set_host_time(ecg, us(24_000))
        .set_satellite_time(ecg, us(6_000))
        .set_comm_up(ecg, us(2_500));
    costs
        .set_host_time(act, us(4_000))
        .set_satellite_time(act, us(2_000))
        .set_comm_up(act, us(700));
    costs
        .set_host_time(accel, us(10_000))
        .set_satellite_time(accel, us(3_000))
        .set_comm_up(accel, us(1_200));
    costs.pin_leaf(ecg, SatelliteId(0), us(12_000)); // raw ECG is bulky
    costs.pin_leaf(accel, SatelliteId(1), us(7_000));

    // Prepare: colouring, σ/β labels, coloured assignment graph.
    let prep = Prepared::new(&tree, &costs).expect("valid instance");
    println!("The CRU tree (colours propagated from the pinned sensors):\n");
    println!(
        "{}",
        render_tree(&tree, Some(&costs), Some(&prep.colouring))
    );

    // Solve with the paper's adapted SSB algorithm (λ = ½ ⇒ minimise S+B).
    let sol = PaperSsb::default()
        .solve(&prep, Lambda::HALF)
        .expect("solvable");

    println!("Optimal deployment (end-to-end delay {} µs):", sol.delay());
    println!("  host: {:?}", names(&tree, &sol.assignment.host));
    for (i, sat) in sol.assignment.per_satellite.iter().enumerate() {
        println!("  sat{i}: {:?}", names(&tree, sat));
    }
    println!(
        "  S (host time) = {} µs, B (bottleneck satellite) = {} µs",
        sol.report.host_time, sol.report.bottleneck
    );

    // Compare against the naive deployments.
    for solver in [&AllOnHost as &dyn Solver, &MaxOffload] {
        let s = solver.solve(&prep, Lambda::HALF).unwrap();
        println!("  {:<12} would take {} µs", solver.name(), s.delay());
    }

    // And double-check against exhaustive enumeration.
    let brute = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
    assert_eq!(brute.objective, sol.objective);
    println!("\nBrute force agrees: {} µs is optimal.", sol.delay());
}

fn names(tree: &CruTree, ids: &[CruId]) -> Vec<String> {
    ids.iter()
        .map(|&c| tree.node_unchecked(c).name.clone())
        .collect()
}
