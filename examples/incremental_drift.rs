//! Incremental re-solve on a drifting instance: hold a `Session` open,
//! stream a random-walk drift trace through it, and watch the optimal
//! deployment follow the costs — with every answer cross-checked against
//! a from-scratch solve of the drifted instance.
//!
//! ```sh
//! cargo run --release --example incremental_drift
//! ```

use hsa::engine::{Session, SessionConfig};
use hsa::prelude::*;
use hsa::workloads::{drift_trace, DriftConfig};

fn main() {
    // The paper's Figure 2 instance as the deployment…
    let sc = hsa::workloads::paper_scenario();
    // …and a 16-step drift: ±15% random cost walk, occasional subtree
    // surges, a little satellite churn.
    let trace = drift_trace(
        &sc,
        &DriftConfig {
            steps: 16,
            magnitude_permille: 150,
            churn_permille: 120,
            ..DriftConfig::default()
        },
    );

    let mut session =
        Session::new(&sc.tree, &sc.costs, SessionConfig::default()).expect("valid instance");
    let mut mirror = sc.costs.clone();
    println!("step  dirty/total  path   delay_us  host_CRUs  (drifting the Figure 2 instance)");
    for (step, delta) in trace.deltas.iter().enumerate() {
        let outcome = session.apply(delta).expect("drift deltas are valid");
        let sol = session.solve(Lambda::HALF).expect("solvable");

        // The incremental answer is identical to solving the drifted
        // instance from nothing — that is the Session's contract.
        delta.apply(&sc.tree, &mut mirror).unwrap();
        let scratch_prep = Prepared::new(&sc.tree, &mirror).unwrap();
        let scratch = Expanded::default()
            .solve(&scratch_prep, Lambda::HALF)
            .unwrap();
        assert_eq!(sol.objective, scratch.objective);
        assert_eq!(sol.cut, scratch.cut);

        println!(
            "{:>4}  {:>5}/{:<5}  {}  {:>8}  {:>9}",
            step,
            outcome.dirty_colours,
            outcome.total_colours,
            if outcome.full_rebuild {
                "full "
            } else {
                "incr."
            },
            sol.delay(),
            sol.assignment.host.len(),
        );
    }
    let stats = session.stats();
    println!(
        "\n{} applies: {} incremental, {} full rebuilds; {:.0}% of colour frontiers reused",
        stats.applies,
        stats.incremental,
        stats.full_rebuilds,
        stats.reuse_rate() * 100.0
    );
    println!("every step above was asserted identical to a from-scratch solve.");
}
