//! Runs the solver portfolio through the **batch engine**: every scenario
//! is prepared once into the engine's instance cache, a λ-grid of queries
//! is answered in one `solve_batch` call, and each instance's λ-frontier
//! (every optimal cut for every λ) is printed alongside a per-solver
//! cross-check of the classic one-shot API.
//!
//! ```sh
//! cargo run --example solver_comparison
//! ```

use hsa::assign::all_solvers;
use hsa::engine::{Engine, EngineConfig, InstanceId};
use hsa::prelude::*;

fn main() {
    // Assemble the workload: catalog scenarios plus one random instance per
    // placement regime.
    let mut scenarios = catalog();
    for (seed, placement) in [(7u64, Placement::Blocked), (7, Placement::Interleaved)] {
        scenarios.push(random_scenario(
            &RandomTreeParams {
                n_crus: 18,
                n_satellites: 3,
                placement,
                ..RandomTreeParams::default()
            },
            seed,
        ));
    }

    // Prepare everything once; the engine caches by content hash.
    let engine = Engine::new(EngineConfig::default());
    let ids: Vec<InstanceId> = scenarios
        .iter()
        .map(|sc| engine.prepare(&sc.tree, &sc.costs).expect("valid scenario"))
        .collect();

    // One batch over the whole (instance × λ) grid.
    let lambdas: Vec<Lambda> = (0..=4).map(|n| Lambda::new(n, 4).unwrap()).collect();
    let queries: Vec<(InstanceId, Lambda)> = ids
        .iter()
        .flat_map(|&id| lambdas.iter().map(move |&l| (id, l)))
        .collect();
    let solutions = engine.solve_batch(&queries);

    for (i, (scenario, &id)) in scenarios.iter().zip(&ids).enumerate() {
        println!("── {} ── ({id})", scenario.name);
        println!("   λ-grid batch answers (engine, cached frontiers):");
        println!("   λ        delay µs        S        B");
        for (j, lambda) in lambdas.iter().enumerate() {
            let sol = solutions[i * lambdas.len() + j]
                .as_ref()
                .expect("batch solve succeeds");
            println!(
                "   {:<8} {:>9} {:>8} {:>8}",
                lambda.to_string(),
                sol.delay().ticks(),
                sol.report.host_time.ticks(),
                sol.report.bottleneck.ticks(),
            );
        }

        // The λ-frontier: every optimal cut over λ ∈ [0, 1] in one pass.
        let frontier = engine.frontier(id).expect("frontier");
        let breakpoints: Vec<String> = frontier
            .breakpoints()
            .iter()
            .map(|bp| bp.to_string())
            .collect();
        println!(
            "   λ-frontier: {} optimal cut(s); breakpoints: [{}]",
            frontier.num_segments(),
            breakpoints.join(", ")
        );

        // Cross-check the classic one-shot API at λ = ½: exact solvers must
        // agree with the engine's cached-frontier answer. (Compare S + B
        // delays: `objective` values are scaled by each λ's denominator, so
        // the grid's 2/4 and the constant 1/2 are not directly comparable.)
        let prep = Prepared::new(&scenario.tree, &scenario.costs).expect("valid scenario");
        let engine_half = &solutions[i * lambdas.len() + 2].as_ref().unwrap();
        println!("   one-shot cross-check (λ=1/2):");
        println!("   solver          delay µs   iter  composites");
        for solver in all_solvers() {
            match solver.solve(&prep, Lambda::HALF) {
                Ok(sol) => {
                    println!(
                        "   {:<14} {:>9} {:>6} {:>11}",
                        solver.name(),
                        sol.delay().ticks(),
                        sol.stats.iterations,
                        sol.stats.composites,
                    );
                    if ["paper-ssb", "expanded", "brute-force"].contains(&solver.name()) {
                        assert_eq!(
                            sol.delay(),
                            engine_half.delay(),
                            "exact solver disagrees with the engine!"
                        );
                    }
                }
                Err(e) => println!("   {:<14} failed: {e}", solver.name()),
            }
        }
        println!();
    }

    let stats = engine.stats();
    println!(
        "engine: {} instances cached, {} queries answered, {} thresholds swept",
        engine.len(),
        stats.queries,
        stats.solve.evaluated,
    );
}
