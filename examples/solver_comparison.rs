//! Runs every solver — the paper's adapted SSB, the full-expansion exact
//! solver, brute force, Bokhari's SB objective, and the naive baselines —
//! on the catalog scenarios plus random instances, comparing answers and
//! work counters.
//!
//! ```sh
//! cargo run --example solver_comparison
//! ```

use hsa::assign::all_solvers;
use hsa::prelude::*;

fn main() {
    // Catalog scenarios first.
    for scenario in catalog() {
        compare(&scenario);
    }
    // A couple of random instances, one per placement regime.
    for (seed, placement) in [(7u64, Placement::Blocked), (7, Placement::Interleaved)] {
        let sc = random_scenario(
            &RandomTreeParams {
                n_crus: 18,
                n_satellites: 3,
                placement,
                ..RandomTreeParams::default()
            },
            seed,
        );
        compare(&sc);
    }
}

fn compare(scenario: &Scenario) {
    println!("── {} ──", scenario.name);
    let prep = Prepared::new(&scenario.tree, &scenario.costs).expect("valid scenario");
    println!(
        "   {} CRUs, {} leaves, {} satellites, colours {}; host-forced: {}",
        scenario.tree.len(),
        scenario.tree.leaves_in_order().len(),
        scenario.costs.n_satellites,
        if prep.colouring.is_contiguous() {
            "contiguous"
        } else {
            "interleaved"
        },
        prep.colouring.host_forced.len(),
    );
    println!("   solver          delay µs        S        B   iter  composites");
    let mut optimal: Option<Cost> = None;
    for solver in all_solvers() {
        match solver.solve(&prep, Lambda::HALF) {
            Ok(sol) => {
                println!(
                    "   {:<14} {:>9} {:>8} {:>8} {:>6} {:>11}",
                    solver.name(),
                    sol.delay().ticks(),
                    sol.report.host_time.ticks(),
                    sol.report.bottleneck.ticks(),
                    sol.stats.iterations,
                    sol.stats.composites,
                );
                if ["paper-ssb", "expanded", "brute-force"].contains(&solver.name()) {
                    match optimal {
                        None => optimal = Some(sol.delay()),
                        Some(o) => assert_eq!(o, sol.delay(), "exact solvers disagree!"),
                    }
                }
            }
            Err(e) => println!("   {:<14} failed: {e}", solver.name()),
        }
    }
    println!();
}
