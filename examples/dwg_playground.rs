//! The generic doubly-weighted-graph layer on its own: reproduces the
//! paper's Figure 4 worked example step by step, then contrasts the SSB
//! objective with Bokhari's SB objective on the same graph.
//!
//! ```sh
//! cargo run --example dwg_playground
//! ```

use hsa::graph::figures::fig4_graph;
use hsa::prelude::*;

fn main() {
    let (g, s, t) = fig4_graph();
    println!("Figure 4 graph: S → M → T with 4 parallel edges per hop.");
    println!("edges (σ, β):");
    for (id, e) in g.all_edges() {
        println!(
            "  e{:<2} {:?} → {:?}  <{},{}>",
            id.0, e.from, e.to, e.sigma, e.beta
        );
    }

    // Run the SSB algorithm with a full trace (λ = ½ ⇒ SSB printed as S+B,
    // exactly the numbers in the figure).
    let cfg = SsbConfig {
        record_trace: true,
        ..SsbConfig::default()
    };
    let mut g2 = g.clone();
    let out = ssb_search(&mut g2, s, t, &cfg);
    println!("\nSSB iterations (compare with the paper's Figure 4):");
    for (i, it) in out.trace.iter().enumerate() {
        println!(
            "  iteration {}: min-S path S={} B={} SSB={}{}  removed {} edge(s)",
            i + 1,
            it.s,
            it.b,
            it.ssb,
            if it.improved {
                "  → new candidate"
            } else {
                ""
            },
            it.removed.len(),
        );
    }
    let best = out.best.expect("connected");
    println!(
        "  optimal SSB path: S={} B={} SSB={} (paper: 20)",
        best.s, best.b, best.ssb
    );
    assert_eq!(best.ssb, 20);
    assert_eq!(out.iterations, 3);

    // Bokhari's objective on the same graph.
    let mut g3 = g.clone();
    let sb = sb_search(&mut g3, s, t);
    let (sb_path, sb_w) = sb.best.expect("connected");
    println!(
        "\nBokhari SB (minimise max(S,B)) on the same graph: weight {} via S={} B={}",
        sb_w,
        sb_path.s_weight(&g),
        sb_path.b_weight(&g)
    );

    // On Figure 4 the two objectives happen to pick the same path; here is
    // a two-edge graph where they genuinely part ways (the paper's §2
    // motivation for replacing SB with SSB):
    let mut g4 = Dwg::with_nodes(2);
    let quick = g4.add_edge(NodeId(0), NodeId(1), Cost::new(2), Cost::new(10));
    let balanced = g4.add_edge(NodeId(0), NodeId(1), Cost::new(9), Cost::new(9));
    let ssb_pick = ssb_search(&mut g4.clone(), NodeId(0), NodeId(1), &SsbConfig::default())
        .best
        .unwrap();
    let sb_pick = sb_search(&mut g4.clone(), NodeId(0), NodeId(1))
        .best
        .unwrap();
    println!("\ncontrast graph: e0 <2,10> vs e1 <9,9>");
    println!(
        "  SSB (end-to-end delay) picks e{} with S+B = {}",
        ssb_pick.path.edges[0].0, ssb_pick.ssb
    );
    println!(
        "  SB (bottleneck) picks e{} with max(S,B) = {} — but S+B = {}",
        sb_pick.0.edges[0].0,
        sb_pick.1,
        sb_pick.0.s_plus_b(&g4)
    );
    assert_eq!(ssb_pick.path.edges[0], quick);
    assert_eq!(sb_pick.0.edges[0], balanced);
    println!(
        "  minimising the bottleneck costs {} extra delay ticks here.",
        sb_pick.0.s_plus_b(&g4) - Cost::new(ssb_pick.ssb as u64)
    );
}
