//! Heterogeneity study (experiment T6 as an interactive example): how does
//! the optimal deployment shift as the host gets faster or slower relative
//! to the satellites? Shows the crossover from "offload everything"
//! through genuine splits to "keep everything on the host".
//!
//! ```sh
//! cargo run --example heterogeneity_study
//! ```

use hsa::prelude::*;
use hsa::workloads::scale_host_times;

fn main() {
    let base = epilepsy_scenario(&EpilepsyParams::default());
    println!("scenario: {}\n", base.name);
    println!("host speed | optimal µs | all-host µs | offload µs | CRUs on host");
    println!("-----------+------------+-------------+------------+-------------");
    // num/den scales host *times*: larger = slower host.
    for (num, den, label) in [
        (8u64, 1u64, "8× slower"),
        (4, 1, "4× slower"),
        (2, 1, "2× slower"),
        (1, 1, "baseline "),
        (1, 2, "2× faster"),
        (1, 4, "4× faster"),
        (1, 16, "16× faster"),
    ] {
        let sc = scale_host_times(&base, num, den);
        let prep = Prepared::new(&sc.tree, &sc.costs).expect("valid");
        let optimal = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let naive = AllOnHost.solve(&prep, Lambda::HALF).unwrap();
        let offload = MaxOffload.solve(&prep, Lambda::HALF).unwrap();
        println!(
            "{label}  | {:>10} | {:>11} | {:>10} | {:>4} of {}",
            optimal.delay(),
            naive.delay(),
            offload.delay(),
            optimal.assignment.host.len(),
            sc.tree.len(),
        );
    }
    println!(
        "\nReading: with a slow host the optimum hugs max-offload; as the host \
         speeds up, CRUs migrate back until all-on-host wins — the crossover \
         the paper's introduction argues motivates optimal assignment."
    );
}
