//! The paper's motivating application (§1, Figure 1): epilepsy
//! tele-monitoring. Finds the optimal deployment across the PDA and the
//! sensor boxes, then *executes* it in the discrete-event simulator and
//! prints the Gantt chart — including the pipelined (streaming) regime.
//!
//! ```sh
//! cargo run --example epilepsy_monitoring
//! ```

use hsa::prelude::*;
use hsa::sim::render_gantt;
use hsa::tree::render::render_tree;

fn main() {
    let scenario = epilepsy_scenario(&EpilepsyParams::default());
    println!("{}\n", scenario.description);
    let prep = Prepared::new(&scenario.tree, &scenario.costs).expect("valid scenario");
    println!(
        "{}",
        render_tree(&scenario.tree, Some(&scenario.costs), Some(&prep.colouring))
    );

    // Optimal vs naive deployments.
    let optimal = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
    let naive = AllOnHost.solve(&prep, Lambda::HALF).unwrap();
    let offload = MaxOffload.solve(&prep, Lambda::HALF).unwrap();
    println!("end-to-end delay per 1 s context frame:");
    println!("  everything on the PDA : {:>8} µs", naive.delay());
    println!("  maximal offloading    : {:>8} µs", offload.delay());
    println!("  optimal (paper SSB)   : {:>8} µs", optimal.delay());
    println!(
        "  speed-up over naive   : {:.2}×\n",
        naive.delay().ticks() as f64 / optimal.delay().ticks() as f64
    );

    // Execute the optimal deployment in the simulator (paper model) and
    // show the schedule.
    let cfg = SimConfig {
        record_trace: true,
        ..SimConfig::paper_model()
    };
    let sim = simulate(&prep, &optimal.cut, &cfg).unwrap();
    assert_eq!(sim.end_to_end, optimal.report.end_to_end);
    println!("simulated schedule (paper timing model):");
    println!("{}", render_gantt(&sim, 64));

    // The eager relaxation quantifies the model's conservatism.
    let eager = simulate(&prep, &optimal.cut, &SimConfig::eager()).unwrap();
    println!(
        "eager-host relaxation finishes at {} µs ({} µs earlier than the paper model)\n",
        eager.end_to_end,
        sim.end_to_end - eager.end_to_end
    );

    // Streaming: ECG frames arrive once per second; check the pipeline
    // holds up and report the sustainable rate.
    let frame_interval = Cost::new(1_000_000); // 1 s in µs
    let stream = simulate_periodic(&prep, &optimal.cut, frame_interval, 30).unwrap();
    println!(
        "streaming at 1 frame/s: steady-state latency {} µs, saturated: {}",
        stream.latencies.last().unwrap(),
        stream.saturated
    );
    println!(
        "fastest sustainable frame interval: {} µs (bottleneck resource)",
        stream.bottleneck_service
    );
}
