//! # hsa — optimal assignment of tree-structured context reasoning onto host–satellites systems
//!
//! Umbrella crate for the reproduction of Mei, Pawar & Widya,
//! *"Optimal Assignment of a Tree-Structured Context Reasoning Procedure
//! onto a Host-Satellites System"* (IPPS 2007).
//!
//! A context reasoning procedure is a tree of CRUs (Context Reasoning
//! Units) turning raw sensor data into application-level context; the
//! platform is one host plus sensor-box satellites with physically pinned
//! sensors. The library finds the assignment of CRUs to machines that
//! minimises the end-to-end delay `S + B` (host time plus bottleneck
//! satellite time), via the paper's coloured assignment graph and SSB
//! path search.
//!
//! ```
//! use hsa::prelude::*;
//!
//! // The paper's own Figure 2 instance…
//! let scenario = hsa::workloads::paper_scenario();
//! let prep = Prepared::new(&scenario.tree, &scenario.costs).unwrap();
//! // …solved with the paper's adapted SSB algorithm:
//! let solution = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
//! // CRU1–CRU3 are host-forced by the colouring; the rest is optimised.
//! assert!(solution.assignment.host.len() >= 3);
//! // The exact optimum matches brute-force enumeration:
//! let brute = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
//! assert_eq!(solution.objective, brute.objective);
//! ```
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-versus-measured record. The workspace
//! layers are re-exported here as modules:
//!
//! * [`graph`] — doubly weighted graphs, generic SSB/SB path algorithms;
//! * [`tree`] — the CRU tree model, colouring, σ/β labellings, cuts;
//! * [`assign`] — assignment graphs and the solvers (the paper's core);
//! * [`engine`] — the batch service layer: prepared-instance cache,
//!   threaded `(instance, λ)` query fan-out, and the λ-frontier;
//! * [`sim`] — the discrete-event host–satellites simulator;
//! * [`workloads`] — scenarios (epilepsy, SNMP, industrial, random);
//! * [`heuristics`] — the future-work DAG model with B&B / GA / SA.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use hsa_assign as assign;
pub use hsa_engine as engine;
pub use hsa_graph as graph;
pub use hsa_heuristics as heuristics;
pub use hsa_sim as sim;
pub use hsa_tree as tree;
pub use hsa_workloads as workloads;

/// The guided API tour (the contents of `docs/API.md`): one runnable,
/// asserted example per layer, tree → DWG → solver → engine →
/// experiments. Every code block below is a doctest, so the tour cannot
/// rot.
#[doc = include_str!("../docs/API.md")]
pub mod api {}

/// Commonly used items from every layer.
pub mod prelude {
    pub use hsa_assign::prelude::*;
    pub use hsa_engine::prelude::*;
    pub use hsa_graph::prelude::*;
    pub use hsa_heuristics::prelude::*;
    pub use hsa_sim::prelude::*;
    pub use hsa_tree::prelude::*;
    pub use hsa_workloads::prelude::*;
}
