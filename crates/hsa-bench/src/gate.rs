//! The perf-regression gate: committed baseline `BENCH_*.json` artefacts
//! versus a fresh run, with a configurable relative tolerance.
//!
//! The gate answers one question per metric: *did this hot path get more
//! than `tolerance`× slower than the committed baseline?* Tolerances are
//! deliberately generous — shared CI runners are noisy and the point is to
//! catch accidental algorithmic regressions (a 2× slowdown from a lost
//! cache or an O(n²) slip), not 5 % jitter. Speed-ups never fail the gate;
//! they are reported so a better baseline can be committed.
//!
//! Comparisons are guarded structurally first: schema versions must match
//! (enforced by [`BenchReport::load`]) and the workload `profile` must be
//! identical — a `"quick"` run gated against `"full"` baselines would
//! compare different workloads and is rejected outright.

use crate::report::BenchReport;
use std::fmt::Write as _;
use std::path::Path;

/// Gate configuration.
#[derive(Clone, Copy, Debug)]
pub struct GateConfig {
    /// Maximum allowed `current / baseline` ratio per metric. Values
    /// above this fail the gate.
    pub tolerance: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { tolerance: 4.0 }
    }
}

/// Verdict for one compared metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateStatus {
    /// Within tolerance.
    Ok,
    /// Slower than `baseline × tolerance`.
    Regressed,
    /// Present in the baseline, absent from the current run.
    Missing,
}

/// One percentile compared on a metric (present when both the baseline
/// and the current run carry it).
#[derive(Clone, Copy, Debug)]
pub struct PercentileFinding {
    /// Baseline per-op percentile, nanoseconds.
    pub baseline_ns: f64,
    /// Current per-op percentile, nanoseconds.
    pub current_ns: f64,
    /// `current / baseline`, judged by the same tolerance as ns/op.
    pub ratio: f64,
}

/// One row of the regression table.
#[derive(Clone, Debug)]
pub struct GateFinding {
    /// Report name (artefact stem).
    pub report: String,
    /// Metric name within the report.
    pub metric: String,
    /// Baseline ns/op.
    pub baseline_ns_per_op: f64,
    /// Current ns/op (0 when [`GateStatus::Missing`]).
    pub current_ns_per_op: f64,
    /// `current / baseline` mean ratio (0 when missing).
    pub ratio: f64,
    /// The p50 comparison, when both sides measured it.
    pub p50: Option<PercentileFinding>,
    /// The p99 comparison, when both sides measured it.
    pub p99: Option<PercentileFinding>,
    /// The verdict (worst of the mean and percentile ratios).
    pub status: GateStatus,
}

impl GateFinding {
    /// The worst of the mean and percentile ratios — what the verdict and
    /// the table ordering use, so a tail-only regression surfaces first.
    pub fn worst_ratio(&self) -> f64 {
        [self.p50, self.p99]
            .into_iter()
            .flatten()
            .fold(self.ratio, |acc, p| acc.max(p.ratio))
    }
}

/// Everything one gate run found: per-metric findings plus structural
/// errors (unreadable files, profile mismatches, missing artefacts).
#[derive(Clone, Debug, Default)]
pub struct GateOutcome {
    /// Per-metric comparison rows.
    pub findings: Vec<GateFinding>,
    /// Structural failures — any entry fails the gate.
    pub errors: Vec<String>,
}

impl GateOutcome {
    /// True when no metric regressed and no structural error occurred.
    pub fn passed(&self) -> bool {
        self.errors.is_empty() && self.findings.iter().all(|f| f.status == GateStatus::Ok)
    }

    /// Number of regressed or missing metrics.
    pub fn num_failures(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.status != GateStatus::Ok)
            .count()
    }

    /// Renders the human-readable regression table (one line per metric,
    /// worst ratios first, errors appended).
    pub fn render_text(&self, cfg: &GateConfig) -> String {
        let mut rows = self.findings.clone();
        rows.sort_by(|a, b| b.worst_ratio().total_cmp(&a.worst_ratio()));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:<28} {:>14} {:>14} {:>8} {:>8} {:>8}  verdict",
            "report", "metric", "baseline ns/op", "current ns/op", "ratio", "p50", "p99"
        );
        out.push_str(&"-".repeat(118));
        out.push('\n');
        // Percentile columns print the ratio when both sides measured the
        // percentile and a dash otherwise, so pre-percentile artefacts
        // still render.
        let pcol = |p: &Option<PercentileFinding>| match p {
            Some(p) => format!("{:.2}x", p.ratio),
            None => "-".to_string(),
        };
        for f in &rows {
            let verdict = match f.status {
                GateStatus::Ok => "ok",
                GateStatus::Regressed => "REGRESSED",
                GateStatus::Missing => "MISSING",
            };
            let _ = writeln!(
                out,
                "{:<20} {:<28} {:>14.1} {:>14.1} {:>7.2}x {:>8} {:>8}  {verdict}",
                f.report,
                f.metric,
                f.baseline_ns_per_op,
                f.current_ns_per_op,
                f.ratio,
                pcol(&f.p50),
                pcol(&f.p99),
            );
        }
        for e in &self.errors {
            let _ = writeln!(out, "error: {e}");
        }
        let _ = writeln!(
            out,
            "{} metric(s) compared, {} failure(s), tolerance {:.2}x — {}",
            self.findings.len(),
            self.num_failures() + self.errors.len(),
            cfg.tolerance,
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Compares one current report against its baseline. Every baseline
/// metric must exist in the current report and stay within tolerance;
/// metrics newly added to the current report are ignored (they have no
/// baseline yet).
pub fn compare_reports(
    baseline: &BenchReport,
    current: &BenchReport,
    cfg: &GateConfig,
) -> GateOutcome {
    let mut out = GateOutcome::default();
    if baseline.profile != current.profile {
        out.errors.push(format!(
            "{}: profile mismatch — baseline `{}` vs current `{}` (workloads differ, refusing to compare)",
            baseline.name, baseline.profile, current.profile
        ));
        return out;
    }
    if baseline.env.debug_assertions != current.env.debug_assertions {
        out.errors.push(format!(
            "{}: build mismatch — baseline debug_assertions={} vs current {} (a debug run gated against release numbers reports fake regressions, refusing to compare)",
            baseline.name, baseline.env.debug_assertions, current.env.debug_assertions
        ));
        return out;
    }
    for base in &baseline.metrics {
        match current.find_metric(&base.name) {
            None => out.findings.push(GateFinding {
                report: baseline.name.clone(),
                metric: base.name.clone(),
                baseline_ns_per_op: base.ns_per_op,
                current_ns_per_op: 0.0,
                ratio: 0.0,
                p50: None,
                p99: None,
                status: GateStatus::Missing,
            }),
            Some(cur) => {
                // A baseline that gates a percentile must keep being fed
                // one: silently dropping the measurement would un-gate the
                // tail, which is exactly the regression class this exists
                // to catch. (The reverse — a *new* percentile with no
                // baseline yet — is fine, like any new metric.)
                for (pname, b, c) in [
                    ("p50_ns", base.p50_ns, cur.p50_ns),
                    ("p99_ns", base.p99_ns, cur.p99_ns),
                ] {
                    if b.is_some() && c.is_none() {
                        out.errors.push(format!(
                            "{}: metric `{}` lost its {pname} — the baseline gates tail latency but the current run stopped emitting it",
                            baseline.name, base.name
                        ));
                    }
                }
                let pair = |b: Option<f64>, c: Option<f64>| {
                    b.zip(c).map(|(b, c)| PercentileFinding {
                        baseline_ns: b,
                        current_ns: c,
                        ratio: c / b,
                    })
                };
                let mut finding = GateFinding {
                    report: baseline.name.clone(),
                    metric: base.name.clone(),
                    baseline_ns_per_op: base.ns_per_op,
                    current_ns_per_op: cur.ns_per_op,
                    ratio: cur.ns_per_op / base.ns_per_op,
                    p50: pair(base.p50_ns, cur.p50_ns),
                    p99: pair(base.p99_ns, cur.p99_ns),
                    status: GateStatus::Ok,
                };
                if finding.worst_ratio() > cfg.tolerance {
                    finding.status = GateStatus::Regressed;
                }
                out.findings.push(finding);
            }
        }
    }
    out
}

/// Lists the `BENCH_*.json` files in `dir`, sorted by name.
pub fn bench_artefacts(dir: &Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Gates every baseline artefact in `baseline_dir` against its same-named
/// counterpart in `current_dir`. A baseline without a counterpart is a
/// structural error (an experiment silently stopped emitting); extra
/// current artefacts are fine (new experiments without a baseline yet).
pub fn gate_directories(baseline_dir: &Path, current_dir: &Path, cfg: &GateConfig) -> GateOutcome {
    let mut out = GateOutcome::default();
    let baselines = match bench_artefacts(baseline_dir) {
        Ok(b) => b,
        Err(e) => {
            out.errors
                .push(format!("cannot read {}: {e}", baseline_dir.display()));
            return out;
        }
    };
    if baselines.is_empty() {
        out.errors.push(format!(
            "no BENCH_*.json baselines under {}",
            baseline_dir.display()
        ));
        return out;
    }
    for base_path in baselines {
        let baseline = match BenchReport::load(&base_path) {
            Ok(r) => r,
            Err(e) => {
                out.errors.push(e);
                continue;
            }
        };
        let cur_path = current_dir.join(base_path.file_name().expect("artefact file name"));
        if !cur_path.exists() {
            out.errors.push(format!(
                "baseline {} has no counterpart in {}",
                baseline.file_name(),
                current_dir.display()
            ));
            continue;
        }
        match BenchReport::load(&cur_path) {
            Ok(current) => {
                let one = compare_reports(&baseline, &current, cfg);
                out.findings.extend(one.findings);
                out.errors.extend(one.errors);
            }
            Err(e) => out.errors.push(e),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(profile: &str, metrics: &[(&str, u64)]) -> BenchReport {
        let mut r = BenchReport::new("demo", "t0", "demo", profile, 1);
        for (name, ns) in metrics {
            r.metric(*name, 1, *ns);
        }
        r
    }

    #[test]
    fn identical_reports_pass() {
        let base = report("quick", &[("a", 1_000), ("b", 2_000)]);
        let out = compare_reports(&base, &base, &GateConfig::default());
        assert!(out.passed());
        assert_eq!(out.findings.len(), 2);
    }

    #[test]
    fn injected_2x_slowdown_fails_the_gate() {
        // The acceptance-criteria scenario: a hot path gets 2× slower
        // while the gate runs at a 1.5× tolerance — it must fail, and the
        // regression table must name the culprit.
        let base = report("quick", &[("hot_path", 1_000_000), ("cold_path", 500_000)]);
        let current = report("quick", &[("hot_path", 2_000_000), ("cold_path", 500_000)]);
        let cfg = GateConfig { tolerance: 1.5 };
        let out = compare_reports(&base, &current, &cfg);
        assert!(!out.passed());
        assert_eq!(out.num_failures(), 1);
        let bad = out
            .findings
            .iter()
            .find(|f| f.status == GateStatus::Regressed)
            .unwrap();
        assert_eq!(bad.metric, "hot_path");
        assert!((bad.ratio - 2.0).abs() < 1e-9);
        let table = out.render_text(&cfg);
        assert!(table.contains("hot_path") && table.contains("REGRESSED"));
        assert!(table.contains("FAIL"));
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let base = report("quick", &[("a", 1_000_000)]);
        let current = report("quick", &[("a", 1_900_000)]);
        let out = compare_reports(&base, &current, &GateConfig { tolerance: 2.0 });
        assert!(out.passed());
    }

    #[test]
    fn speedup_never_fails() {
        let base = report("quick", &[("a", 1_000_000)]);
        let current = report("quick", &[("a", 1_000)]);
        let out = compare_reports(&base, &current, &GateConfig { tolerance: 1.1 });
        assert!(out.passed());
    }

    #[test]
    fn missing_metric_fails() {
        let base = report("quick", &[("a", 1_000), ("gone", 1_000)]);
        let current = report("quick", &[("a", 1_000)]);
        let out = compare_reports(&base, &current, &GateConfig::default());
        assert!(!out.passed());
        assert!(out
            .findings
            .iter()
            .any(|f| f.metric == "gone" && f.status == GateStatus::Missing));
    }

    fn report_with_tails(profile: &str, metrics: &[(&str, u64, u64, u64)]) -> BenchReport {
        let mut r = BenchReport::new("demo", "t0", "demo", profile, 1);
        for (name, ns, p50, p99) in metrics {
            r.metric_with_percentiles(*name, 1, *ns, *p50, *p99);
        }
        r
    }

    #[test]
    fn p99_regression_fails_even_when_the_mean_is_flat() {
        // The tentpole scenario: identical means, 3× worse tail.
        let base = report_with_tails("quick", &[("svc", 1_000_000, 800_000, 1_200_000)]);
        let current = report_with_tails("quick", &[("svc", 1_000_000, 800_000, 3_600_000)]);
        let cfg = GateConfig { tolerance: 2.0 };
        let out = compare_reports(&base, &current, &cfg);
        assert!(!out.passed());
        let f = &out.findings[0];
        assert_eq!(f.status, GateStatus::Regressed);
        assert!((f.ratio - 1.0).abs() < 1e-9, "mean is flat");
        assert!((f.p99.unwrap().ratio - 3.0).abs() < 1e-9);
        assert!((f.worst_ratio() - 3.0).abs() < 1e-9);
        let table = out.render_text(&cfg);
        assert!(table.contains("3.00x") && table.contains("REGRESSED"));
    }

    #[test]
    fn percentiles_within_tolerance_pass() {
        let base = report_with_tails("quick", &[("svc", 1_000_000, 800_000, 1_200_000)]);
        let current = report_with_tails("quick", &[("svc", 1_100_000, 900_000, 1_500_000)]);
        assert!(compare_reports(&base, &current, &GateConfig { tolerance: 2.0 }).passed());
    }

    #[test]
    fn losing_a_gated_percentile_is_a_structural_error() {
        let base = report_with_tails("quick", &[("svc", 1_000_000, 800_000, 1_200_000)]);
        let current = report("quick", &[("svc", 1_000_000)]);
        let out = compare_reports(&base, &current, &GateConfig::default());
        assert!(!out.passed());
        assert_eq!(out.errors.len(), 2, "both p50 and p99 were lost");
        assert!(out.errors[0].contains("p50_ns") && out.errors[1].contains("p99_ns"));
    }

    #[test]
    fn old_baselines_without_percentiles_still_gate_and_render() {
        // Pre-percentile baseline vs an instrumented current run: the new
        // percentiles have no baseline, so only the mean is judged, and
        // the table renders dashes for the absent columns.
        let base = report("quick", &[("svc", 1_000_000)]);
        let current = report_with_tails("quick", &[("svc", 1_000_000, 800_000, 1_200_000)]);
        let cfg = GateConfig::default();
        let out = compare_reports(&base, &current, &cfg);
        assert!(out.passed());
        assert!(out.findings[0].p50.is_none() && out.findings[0].p99.is_none());
        let row = out
            .render_text(&cfg)
            .lines()
            .find(|l| l.starts_with("demo"))
            .unwrap()
            .to_string();
        assert!(
            row.contains(" - "),
            "dash columns for absent percentiles: {row}"
        );
    }

    #[test]
    fn profile_mismatch_is_a_structural_error() {
        let base = report("full", &[("a", 1_000)]);
        let current = report("quick", &[("a", 1_000)]);
        let out = compare_reports(&base, &current, &GateConfig::default());
        assert!(!out.passed());
        assert!(out.errors[0].contains("profile mismatch"));
    }

    #[test]
    fn debug_vs_release_build_is_a_structural_error() {
        let base = report("quick", &[("a", 1_000)]);
        let mut current = report("quick", &[("a", 1_000)]);
        current.env.debug_assertions = !base.env.debug_assertions;
        let out = compare_reports(&base, &current, &GateConfig::default());
        assert!(!out.passed());
        assert!(out.errors[0].contains("build mismatch"));
    }

    #[test]
    fn gate_directories_round_trip() {
        let root = std::env::temp_dir().join("hsa-bench-gate-test");
        let _ = std::fs::remove_dir_all(&root);
        let (base_dir, cur_dir) = (root.join("base"), root.join("cur"));
        let base = report("quick", &[("a", 1_000_000)]);
        base.write_json(&base_dir).unwrap();
        // Self-comparison passes…
        base.write_json(&cur_dir).unwrap();
        assert!(gate_directories(&base_dir, &cur_dir, &GateConfig::default()).passed());
        // …a 2× slowdown at tolerance 1.5 fails…
        let slow = report("quick", &[("a", 2_000_000)]);
        slow.write_json(&cur_dir).unwrap();
        let out = gate_directories(&base_dir, &cur_dir, &GateConfig { tolerance: 1.5 });
        assert!(!out.passed());
        // …and a missing counterpart is a structural error.
        std::fs::remove_file(cur_dir.join("BENCH_demo.json")).unwrap();
        let out = gate_directories(&base_dir, &cur_dir, &GateConfig::default());
        assert!(!out.passed() && !out.errors.is_empty());
    }

    #[test]
    fn empty_baseline_dir_is_an_error() {
        let dir = std::env::temp_dir().join("hsa-bench-gate-empty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = gate_directories(&dir, &dir, &GateConfig::default());
        assert!(!out.passed());
    }
}
