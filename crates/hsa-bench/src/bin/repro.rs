//! `repro` — regenerates every figure and experiment of the paper.
//!
//! ```sh
//! cargo run -p hsa-bench --bin repro --release              # everything
//! cargo run -p hsa-bench --bin repro --release -- --exp f4  # one artefact
//! cargo run -p hsa-bench --bin repro --release -- --out results
//! ```
//!
//! Experiment ids follow DESIGN.md §4: `f2 f4 f5 f6 f8 f9` reproduce the
//! paper's figures; `t1 … t8` are the quantitative studies and `t9` is the
//! engine batch-throughput experiment (DESIGN.md §7). Tables are printed
//! and also written as CSV under the output directory (`t9` additionally
//! writes `BENCH_engine.json`).

use hsa_assign::{
    all_solvers, evaluate_cut, sb_optimum, solve_with_trace, AllOnHost, BruteForce, Expanded,
    MaxOffload, PaperSsb, PaperSsbConfig, Prepared, SbObjective, Solver, SsbEvent,
};
use hsa_bench::{parallel_map, sweep_instances, time_median_ns, CsvTable};
use hsa_graph::generate::{layered_dag, LayeredParams};
use hsa_graph::{ssb_search, Cost, Lambda, SsbConfig};
use hsa_heuristics::{
    branch_and_bound, genetic, simulated_annealing, BnbConfig, GaConfig, SaConfig, TaskDag,
};
use hsa_sim::{render_gantt, simulate, SimConfig};
use hsa_tree::figures::fig2_tree;
use hsa_tree::render::render_tree;
use hsa_tree::{Colour, Cut, TreeEdge};
use hsa_workloads::{
    catalog, epilepsy_scenario, paper_scenario, random_instance, scale_host_times, EpilepsyParams,
    Placement, RandomTreeParams,
};
use std::path::{Path, PathBuf};

fn main() {
    let mut out_dir = PathBuf::from("results");
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a path")),
            "--exp" => only = Some(args.next().expect("--exp needs an id")),
            "--help" | "-h" => {
                println!("usage: repro [--exp <id>] [--out <dir>]");
                println!("ids: f2 f4 f5 f6 f8 f9 t1 t2 t3 t4 t5 t6 t7 t8 t9");
                return;
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    type Exp = (&'static str, &'static str, fn(&Path));
    let experiments: Vec<Exp> = vec![
        ("f2", "Figure 2 — the CRU tree with pinned sensors", exp_f2),
        (
            "f4",
            "Figure 3/4 — the SSB algorithm's worked trace",
            exp_f4,
        ),
        ("f5", "Figure 5 — colouring and host-forced CRUs", exp_f5),
        ("f6", "Figure 6 — the coloured assignment graph", exp_f6),
        ("f8", "Figure 8 — σ (host time) labelling", exp_f8),
        ("f9", "Figure 9/10 — expansion & branching events", exp_f9),
        (
            "t1",
            "T1 — generic SSB runtime vs |V|,|E| (O(|V|²|E|) claim)",
            exp_t1,
        ),
        (
            "t2",
            "T2 — expanded graph size |E′| and adapted-algorithm work",
            exp_t2,
        ),
        ("t3", "T3 — SSB objective vs Bokhari's SB objective", exp_t3),
        (
            "t4",
            "T4 — simulator vs analytic model (and eager ablation)",
            exp_t4,
        ),
        (
            "t5",
            "T5 — exact solvers: agreement and runtime vs n",
            exp_t5,
        ),
        (
            "t6",
            "T6 — heterogeneity sweep: when does offloading win?",
            exp_t6,
        ),
        ("t7", "T7 — future-work heuristics vs exact optimum", exp_t7),
        ("t8", "T8 — epilepsy tele-monitoring end-to-end", exp_t8),
        (
            "t9",
            "T9 — engine batch throughput: batched+cached vs naive per-call",
            exp_t9,
        ),
    ];

    if let Some(o) = only.as_deref() {
        if !experiments.iter().any(|(id, _, _)| *id == o) {
            eprintln!(
                "unknown experiment id `{o}`; known ids: {}",
                experiments
                    .iter()
                    .map(|(id, _, _)| *id)
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            std::process::exit(2);
        }
    }
    for (id, title, run) in &experiments {
        if only.as_deref().map(|o| o != *id).unwrap_or(false) {
            continue;
        }
        println!("\n════ {id}: {title} ════\n");
        run(&out_dir);
    }
    println!("\nCSV written under {}/", out_dir.display());
}

// ───────────────────────────── figures ─────────────────────────────────

fn exp_f2(_out: &Path) {
    let sc = paper_scenario();
    let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
    println!(
        "{}",
        render_tree(&sc.tree, Some(&sc.costs), Some(&prep.colouring))
    );
    let leaves: Vec<String> = sc
        .tree
        .leaves_in_order()
        .iter()
        .map(|&l| {
            format!(
                "{}→{}",
                sc.tree.node_unchecked(l).name,
                sc.costs.pinned_satellite(l).unwrap()
            )
        })
        .collect();
    println!("leaf order and pinning: {}", leaves.join(", "));
    println!("(satellite B = Sat2 serves sensors under both CRU2 and CRU3 —");
    println!(" the paper's 'some sensors are physically linked to the same satellite')");
}

fn exp_f4(out: &Path) {
    let (mut g, s, t) = hsa_graph::figures::fig4_graph();
    let cfg = SsbConfig {
        record_trace: true,
        ..SsbConfig::default()
    };
    let run = ssb_search(&mut g, s, t, &cfg);
    let mut table = CsvTable::new(
        "f4_ssb_trace",
        &[
            "iteration",
            "S",
            "B",
            "SSB",
            "candidate_updated",
            "edges_removed",
        ],
    );
    for (i, it) in run.trace.iter().enumerate() {
        table.row(&[
            (i + 1).to_string(),
            it.s.to_string(),
            it.b.to_string(),
            it.ssb.to_string(),
            it.improved.to_string(),
            it.removed.len().to_string(),
        ]);
    }
    println!("{}", table.render_text());
    let best = run.best.unwrap();
    println!(
        "optimal SSB path: S={} B={} SSB={}   [paper: <5,10>-<5,10>, SSB weight 20]",
        best.s, best.b, best.ssb
    );
    println!(
        "iterations: {}   [paper: three iterations, terminating at S weight 33]",
        run.iterations
    );
    assert_eq!(best.ssb, 20, "Figure 4 reproduction regressed");
    table.write_csv(out).unwrap();
}

fn exp_f5(out: &Path) {
    let (tree, costs) = fig2_tree();
    let prep = Prepared::new(&tree, &costs).unwrap();
    let mut table = CsvTable::new("f5_colouring", &["edge", "colour"]);
    for c in tree.preorder() {
        if c == tree.root() {
            continue;
        }
        let col = match prep.colouring.edge_colour(TreeEdge::Parent(c)) {
            Colour::Conflict => "CONFLICT".to_string(),
            Colour::Satellite(s) => ["R", "Y", "B", "G"][s.index()].to_string(),
        };
        table.row(&[
            format!(
                "<{},{}>",
                tree.node_unchecked(tree.parent(c).unwrap()).name,
                tree.node_unchecked(c).name
            ),
            col,
        ]);
    }
    println!("{}", table.render_text());
    let forced: Vec<&str> = prep
        .colouring
        .host_forced
        .iter()
        .map(|&c| tree.node_unchecked(c).name.as_str())
        .collect();
    println!(
        "host-forced CRUs: {:?}   [paper: CRU1, CRU2 and CRU3 have to be deployed on the host]",
        forced
    );
    assert_eq!(forced, ["CRU1", "CRU2", "CRU3"]);
    table.write_csv(out).unwrap();
}

fn exp_f6(out: &Path) {
    let (tree, costs) = fig2_tree();
    let prep = Prepared::new(&tree, &costs).unwrap();
    let g = &prep.graph;
    println!(
        "assignment graph: {} nodes (S, {} gaps, T), {} coloured edges",
        g.dwg.num_nodes(),
        g.n_leaves - 1,
        g.n_edges()
    );
    let mut table = CsvTable::new(
        "f6_assignment_graph",
        &[
            "dual_edge",
            "crosses",
            "colour",
            "from_gap",
            "to_gap",
            "sigma",
            "beta",
        ],
    );
    for (i, meta) in g.edges.iter().enumerate() {
        table.row(&[
            format!("e{i}"),
            meta.tree_edge.to_string(),
            ["R", "Y", "B", "G"][meta.colour.index()].to_string(),
            meta.from_gap.to_string(),
            meta.to_gap.to_string(),
            meta.sigma.to_string(),
            meta.beta.to_string(),
        ]);
    }
    println!("{}", table.render_text());
    println!("conflicted tree edges <CRU1,CRU2>, <CRU1,CRU3> are absent — they can never be cut.");
    table.write_csv(out).unwrap();
}

fn exp_f8(out: &Path) {
    let (tree, costs) = fig2_tree();
    let prep = Prepared::new(&tree, &costs).unwrap();
    use hsa_tree::figures::cru;
    let named: Vec<(TreeEdge, &str)> = vec![
        (TreeEdge::Parent(cru(2)), "h1"),
        (TreeEdge::Parent(cru(4)), "h1+h2"),
        (TreeEdge::Sensor(cru(9)), "h1+h2+h4+h9"),
        (TreeEdge::Sensor(cru(10)), "h10"),
        (TreeEdge::Parent(cru(3)), "0"),
        (TreeEdge::Parent(cru(6)), "h3"),
        (TreeEdge::Sensor(cru(13)), "h3+h6+h13"),
        (TreeEdge::Sensor(cru(7)), "h7"),
        (TreeEdge::Sensor(cru(8)), "h8"),
    ];
    let mut table = CsvTable::new("f8_sigma_labels", &["edge", "paper_label", "sigma_ticks"]);
    for (e, label) in named {
        table.row(&[
            e.to_string(),
            label.to_string(),
            prep.sigma.sigma(e).to_string(),
        ]);
    }
    println!("{}", table.render_text());
    println!("(h_k = 10+k ticks in the canonical cost model; every label matches symbolically —");
    println!(" asserted by hsa-tree's figure8_labels test)");
    table.write_csv(out).unwrap();
}

fn exp_f9(out: &Path) {
    // The interleaved instance forces both expansion and joint branching.
    let (tree, costs) = random_instance(
        &RandomTreeParams {
            n_crus: 14,
            n_satellites: 2,
            placement: Placement::Interleaved,
            ..RandomTreeParams::default()
        },
        5,
    );
    let prep = Prepared::new(&tree, &costs).unwrap();
    println!(
        "instance: 14 CRUs, 2 satellites, interleaved placement (colours in {} bands)",
        prep.colouring.bands.len()
    );
    let cfg = PaperSsbConfig {
        record_trace: true,
        ..PaperSsbConfig::default()
    };
    let (sol, trace) = solve_with_trace(&prep, Lambda::HALF, &cfg).unwrap();
    let mut table = CsvTable::new("f9_expansion_events", &["event", "detail"]);
    for ev in &trace {
        let (kind, detail) = match ev {
            SsbEvent::Iteration {
                s,
                b,
                ssb,
                improved,
                removed,
            } => (
                "iteration",
                format!("S={s} B={b} SSB={ssb} improved={improved} removed={removed}"),
            ),
            SsbEvent::Expansion {
                colour,
                bands,
                composites,
            } => (
                "expansion",
                format!("colour={colour} bands={bands} composites={composites}"),
            ),
            SsbEvent::Branch { colour, combos } => {
                ("branch", format!("colour={colour} joint_combos={combos}"))
            }
        };
        table.row(&[kind.to_string(), detail]);
    }
    println!("{}", table.render_text());
    let brute = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
    println!(
        "result: delay {} (brute force agrees: {}); expansions={} composites={} branches={}",
        sol.delay(),
        brute.delay(),
        sol.stats.expansions,
        sol.stats.composites,
        sol.stats.branches
    );
    assert_eq!(sol.objective, brute.objective);
    table.write_csv(out).unwrap();
}

// ──────────────────────────── experiments ──────────────────────────────

fn exp_t1(out: &Path) {
    // Generic SSB on random layered DWGs: runtime vs |V| and |E|.
    let mut table = CsvTable::new(
        "t1_ssb_scaling",
        &["nodes", "edges", "median_ns", "ns_per_v2e_x1e9"],
    );
    let mut configs = Vec::new();
    for layers in [2usize, 4, 8, 16] {
        for width in [2usize, 4, 8] {
            configs.push((layers, width));
        }
    }
    let rows = parallel_map(configs, 4, |(layers, width)| {
        let params = LayeredParams {
            layers,
            width,
            extra_edges: 3 * width,
            max_sigma: 1000,
            max_beta: 1000,
        };
        let gen = layered_dag(&params, 42);
        let v = gen.graph.num_nodes() as u64;
        let e = gen.graph.num_edges() as u64;
        let ns = time_median_ns(9, || {
            let mut g = gen.graph.clone();
            let out = ssb_search(&mut g, gen.source, gen.target, &SsbConfig::default());
            std::hint::black_box(out.iterations);
        });
        (v, e, ns)
    });
    for (v, e, ns) in rows {
        let normal = ns as f64 * 1e9 / (v as f64 * v as f64 * e as f64);
        table.row(&[
            v.to_string(),
            e.to_string(),
            ns.to_string(),
            format!("{normal:.1}"),
        ]);
    }
    println!("{}", table.render_text());
    println!("shape check: the last column (time / |V|²|E|, scaled) should stay bounded");
    println!("as the instances grow — the paper's §4.2 O(|V|²|E|) claim.");
    table.write_csv(out).unwrap();
}

fn exp_t2(out: &Path) {
    let mut table = CsvTable::new(
        "t2_expansion_cost",
        &[
            "n_crus",
            "placement",
            "composites_Eprime",
            "paper_iterations",
            "paper_expansions",
            "paper_branches",
            "paper_ns",
            "expanded_ns",
        ],
    );
    let suite = sweep_instances(
        &[10, 20, 40, 80],
        &[
            Placement::Blocked,
            Placement::Interleaved,
            Placement::Random,
        ],
        3,
        3,
    );
    let rows = parallel_map(suite, 4, |(n, pl, _seed, tree, costs)| {
        let prep = Prepared::new(&tree, &costs).unwrap();
        let fast = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let paper = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
        assert_eq!(fast.objective, paper.objective, "solvers disagree");
        let paper_ns = time_median_ns(5, || {
            let s = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
            std::hint::black_box(s.objective);
        });
        let exp_ns = time_median_ns(5, || {
            let s = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
            std::hint::black_box(s.objective);
        });
        (
            n,
            format!("{pl:?}"),
            fast.stats.composites,
            paper.stats.iterations,
            paper.stats.expansions,
            paper.stats.branches,
            paper_ns,
            exp_ns,
        )
    });
    // Aggregate per (n, placement): means over seeds.
    let mut agg: std::collections::BTreeMap<(usize, String), Vec<[u64; 6]>> = Default::default();
    for (n, pl, comp, iters, exps, brs, pns, ens) in rows {
        agg.entry((n, pl))
            .or_default()
            .push([comp, iters, exps, brs, pns, ens]);
    }
    for ((n, pl), cell) in agg {
        let k = cell.len() as u64;
        let mean = |i: usize| cell.iter().map(|r| r[i]).sum::<u64>() / k;
        table.row(&[
            n.to_string(),
            pl,
            mean(0).to_string(),
            mean(1).to_string(),
            mean(2).to_string(),
            mean(3).to_string(),
            mean(4).to_string(),
            mean(5).to_string(),
        ]);
    }
    println!("{}", table.render_text());
    println!("shape check: |E′| (composites) grows with n; interleaved placement forces");
    println!("branches where blocked needs none — the regime split of DESIGN.md §2.");
    table.write_csv(out).unwrap();
}

fn exp_t3(out: &Path) {
    let mut table = CsvTable::new(
        "t3_objective_gap",
        &[
            "instance",
            "ssb_opt_delay",
            "sb_opt_delay",
            "delay_penalty_pct",
            "ssb_opt_bottleneck_SB",
            "sb_opt_bottleneck_SB",
        ],
    );
    {
        let mut run = |name: &str, tree: &hsa_tree::CruTree, costs: &hsa_tree::CostModel| {
            let prep = Prepared::new(tree, costs).unwrap();
            let ssb = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
            let sb_sol = SbObjective::default().solve(&prep, Lambda::HALF).unwrap();
            let sb_val = sb_optimum(&prep).unwrap();
            let penalty =
                (sb_sol.delay().ticks() as f64 / ssb.delay().ticks().max(1) as f64 - 1.0) * 100.0;
            table.row(&[
                name.to_string(),
                ssb.delay().to_string(),
                sb_sol.delay().to_string(),
                format!("{penalty:.1}"),
                ssb.report.host_time.max(ssb.report.bottleneck).to_string(),
                sb_val.to_string(),
            ]);
        };
        for sc in catalog() {
            run(&sc.name, &sc.tree, &sc.costs);
        }
        for seed in 0..6u64 {
            let (tree, costs) = random_instance(
                &RandomTreeParams {
                    n_crus: 24,
                    n_satellites: 3,
                    placement: Placement::Random,
                    ..RandomTreeParams::default()
                },
                seed,
            );
            run(&format!("random-{seed}"), &tree, &costs);
        }
    }
    println!("{}", table.render_text());
    println!("shape check: minimising Bokhari's bottleneck (SB) costs end-to-end delay —");
    println!("the penalty column is ≥ 0 and often substantial. This is the paper's §2");
    println!("case for replacing the SB objective with SSB.");
    table.write_csv(out).unwrap();
}

fn exp_t4(out: &Path) {
    let mut table = CsvTable::new(
        "t4_sim_validation",
        &[
            "scenario",
            "cut",
            "analytic_S_plus_B",
            "sim_paper_model",
            "match",
            "sim_eager",
            "eager_gain_pct",
        ],
    );
    for sc in catalog() {
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let optimal = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let cuts: Vec<(&str, Cut)> = vec![
            ("all-on-host", Cut::all_on_host(&sc.tree)),
            ("max-offload", Cut::max_offload(&sc.tree, &prep.colouring)),
            ("optimal", optimal.cut.clone()),
        ];
        for (name, cut) in cuts {
            let (_a, rep) = evaluate_cut(&prep, &cut).unwrap();
            let paper = simulate(&prep, &cut, &SimConfig::paper_model()).unwrap();
            let eager = simulate(&prep, &cut, &SimConfig::eager()).unwrap();
            let gain = (1.0
                - eager.end_to_end.ticks() as f64 / paper.end_to_end.ticks().max(1) as f64)
                * 100.0;
            assert_eq!(paper.end_to_end, rep.end_to_end);
            table.row(&[
                sc.name.clone(),
                name.to_string(),
                rep.end_to_end.to_string(),
                paper.end_to_end.to_string(),
                (paper.end_to_end == rep.end_to_end).to_string(),
                eager.end_to_end.to_string(),
                format!("{gain:.1}"),
            ]);
        }
    }
    println!("{}", table.render_text());
    println!("shape check: the paper-model simulation reproduces S+B exactly on every row;");
    println!("the eager relaxation quantifies the §3 model's conservatism.");
    table.write_csv(out).unwrap();
}

fn exp_t5(out: &Path) {
    let mut table = CsvTable::new(
        "t5_solver_comparison",
        &[
            "n_crus",
            "brute_cuts",
            "brute_ns",
            "paper_ns",
            "expanded_ns",
            "all_agree",
        ],
    );
    for n in [8usize, 12, 16, 20, 24] {
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: n,
                n_satellites: 3,
                placement: Placement::Random,
                ..RandomTreeParams::default()
            },
            7,
        );
        let prep = Prepared::new(&tree, &costs).unwrap();
        let brute = BruteForce::default().solve(&prep, Lambda::HALF);
        let paper = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
        let fast = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let (cuts, brute_ns, agree) = match brute {
            Ok(b) => {
                let ns = time_median_ns(3, || {
                    let s = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
                    std::hint::black_box(s.objective);
                });
                (
                    b.stats.evaluated.to_string(),
                    ns.to_string(),
                    (b.objective == paper.objective && b.objective == fast.objective).to_string(),
                )
            }
            Err(_) => (
                ">cap".into(),
                "-".into(),
                (paper.objective == fast.objective).to_string(),
            ),
        };
        let paper_ns = time_median_ns(5, || {
            let s = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
            std::hint::black_box(s.objective);
        });
        let exp_ns = time_median_ns(5, || {
            let s = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
            std::hint::black_box(s.objective);
        });
        table.row(&[
            n.to_string(),
            cuts,
            brute_ns,
            paper_ns.to_string(),
            exp_ns.to_string(),
            agree,
        ]);
    }
    println!("{}", table.render_text());
    println!("shape check: brute-force cut counts explode exponentially while both");
    println!("polynomial solvers stay in the micro/millisecond range and always agree.");
    table.write_csv(out).unwrap();
}

fn exp_t6(out: &Path) {
    let mut table = CsvTable::new(
        "t6_heterogeneity",
        &[
            "host_speed",
            "optimal",
            "all_on_host",
            "max_offload",
            "greedy",
            "random",
            "advantage_vs_naive",
            "crus_on_host",
        ],
    );
    let base = epilepsy_scenario(&EpilepsyParams::default());
    for (num, den, label) in [
        (8u64, 1u64, "8x-slower"),
        (4, 1, "4x-slower"),
        (2, 1, "2x-slower"),
        (1, 1, "baseline"),
        (1, 2, "2x-faster"),
        (1, 4, "4x-faster"),
        (1, 16, "16x-faster"),
    ] {
        let sc = scale_host_times(&base, num, den);
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let solve = |s: &dyn Solver| s.solve(&prep, Lambda::HALF).unwrap();
        let optimal = solve(&Expanded::default());
        let naive = solve(&AllOnHost);
        let offload = solve(&MaxOffload);
        let greedy = solve(&hsa_assign::GreedyDescent);
        let random = solve(&hsa_assign::RandomCut::default());
        table.row(&[
            label.to_string(),
            optimal.delay().to_string(),
            naive.delay().to_string(),
            offload.delay().to_string(),
            greedy.delay().to_string(),
            random.delay().to_string(),
            format!(
                "{:.2}x",
                naive.delay().ticks() as f64 / optimal.delay().ticks().max(1) as f64
            ),
            format!("{}/{}", optimal.assignment.host.len(), sc.tree.len()),
        ]);
    }
    println!("{}", table.render_text());
    println!("shape check: the optimal column always wins; its advantage over all-on-host");
    println!("shrinks monotonically as the host speeds up, and CRUs migrate hostward —");
    println!("the crossover the paper's introduction motivates.");
    table.write_csv(out).unwrap();
}

fn exp_t7(out: &Path) {
    let mut table = CsvTable::new(
        "t7_heuristics",
        &[
            "instance",
            "tree_opt_delay",
            "bnb_makespan",
            "bnb_nodes",
            "ga_makespan",
            "ga_vs_bnb_pct",
            "sa_makespan",
            "sa_vs_bnb_pct",
        ],
    );
    for seed in 0..5u64 {
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: 8,
                n_satellites: 2,
                placement: Placement::Random,
                ..RandomTreeParams::default()
            },
            seed,
        );
        let prep = Prepared::new(&tree, &costs).unwrap();
        let tree_opt = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let dag = TaskDag::from_tree(&tree, &costs);
        let bnb = branch_and_bound(&dag, &BnbConfig::default()).unwrap();
        let ga = genetic(
            &dag,
            &GaConfig {
                seed,
                ..GaConfig::default()
            },
        )
        .unwrap();
        let sa = simulated_annealing(
            &dag,
            &SaConfig {
                seed,
                ..SaConfig::default()
            },
        )
        .unwrap();
        let pct = |x: Cost| (x.ticks() as f64 / bnb.makespan.ticks().max(1) as f64 - 1.0) * 100.0;
        table.row(&[
            format!("random-{seed}"),
            tree_opt.delay().to_string(),
            bnb.makespan.to_string(),
            bnb.nodes.to_string(),
            ga.makespan.to_string(),
            format!("{:.1}", pct(ga.makespan)),
            sa.makespan.to_string(),
            format!("{:.1}", pct(sa.makespan)),
        ]);
    }
    println!("{}", table.render_text());
    println!("shape check: B&B (exact, list-scheduling objective) never exceeds the tree");
    println!("optimum (assignments ⊇ cuts and list scheduling only overlaps more);");
    println!("GA/SA sit at or slightly above B&B — the paper's §6 expectation.");
    table.write_csv(out).unwrap();
}

fn exp_t9(out: &Path) {
    let report = hsa_bench::engine_throughput(&hsa_bench::ThroughputConfig::default());
    let mut table = CsvTable::new(
        "t9_engine_throughput",
        &[
            "arm",
            "instances",
            "queries",
            "threads",
            "total_ns",
            "solves_per_sec",
        ],
    );
    table.row(&[
        "naive-per-call".into(),
        report.instances.to_string(),
        report.queries.to_string(),
        "1".into(),
        report.naive_ns.to_string(),
        format!("{:.1}", report.naive_solves_per_sec()),
    ]);
    table.row(&[
        "engine-batched".into(),
        report.instances.to_string(),
        report.queries.to_string(),
        report.threads.to_string(),
        report.batched_ns.to_string(),
        format!("{:.1}", report.batched_solves_per_sec()),
    ]);
    println!("{}", table.render_text());
    println!(
        "speedup: {:.2}x  (batched answers are asserted byte-identical to the naive arm)",
        report.speedup()
    );
    println!("shape check: the engine amortises preparation and the λ-independent frontier");
    println!("DP across the λ grid — the speedup must stay ≥ 2x even on one core.");
    table.write_csv(out).unwrap();
    let json = report.write_json(out).unwrap();
    println!("bench artefact: {}", json.display());
}

fn exp_t8(out: &Path) {
    let sc = epilepsy_scenario(&EpilepsyParams::default());
    let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
    let mut table = CsvTable::new("t8_epilepsy", &["deployment", "delay_us", "S_us", "B_us"]);
    for solver in all_solvers() {
        if let Ok(sol) = solver.solve(&prep, Lambda::HALF) {
            table.row(&[
                solver.name().to_string(),
                sol.delay().to_string(),
                sol.report.host_time.to_string(),
                sol.report.bottleneck.to_string(),
            ]);
        }
    }
    println!("{}", table.render_text());
    let optimal = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
    let cfg = SimConfig {
        record_trace: true,
        ..SimConfig::paper_model()
    };
    let sim = simulate(&prep, &optimal.cut, &cfg).unwrap();
    println!("optimal deployment executed in the simulator:");
    println!("{}", render_gantt(&sim, 64));
    table.write_csv(out).unwrap();
}
