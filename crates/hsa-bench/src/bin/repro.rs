//! `repro` — the experiment harness CLI: regenerates every figure and
//! experiment of the paper from the central registry, and runs the perf
//! gate against committed baselines.
//!
//! ```sh
//! cargo run -p hsa-bench --bin repro --release -- --list       # enumerate
//! cargo run -p hsa-bench --bin repro --release -- --all        # full matrix
//! cargo run -p hsa-bench --bin repro --release -- --exp f4     # one artefact
//! cargo run -p hsa-bench --bin repro --release -- --bench-only --quick
//! cargo run -p hsa-bench --bin repro --release -- --gate baselines --quick
//! ```
//!
//! Experiment ids follow DESIGN.md §4: `f2 f4 f5 f6 f8 f9` reproduce the
//! paper's figures, `t1 … t12` are the quantitative studies and `a1` the
//! design ablations — `repro --list` is authoritative. Tables are printed
//! and written as CSV under the output directory; perf-tracked experiments
//! additionally emit schema-versioned `BENCH_*.json` artefacts.
//!
//! Gate modes (exit code 1 on regression, 2 on usage errors):
//!
//! * `--gate <baseline-dir>` runs every perf-tracked experiment into
//!   `--out`, then compares the fresh `BENCH_*.json` artefacts against the
//!   same-named baselines;
//! * `--compare <baseline-dir>` skips the run and compares whatever
//!   already sits in `--out` (useful to re-render a regression table);
//! * `--tolerance <x>` sets the allowed `current/baseline` ns/op ratio
//!   (default 4.0 — generous, for shared CI runners).

use hsa_bench::experiments::{self, ExpCtx, Profile, REGISTRY};
use hsa_bench::gate::{gate_directories, GateConfig};
use std::path::PathBuf;

const USAGE: &str = "usage: repro [--list] [--table] [--all] [--exp <id>] [--out <dir>]
             [--quick] [--bench-only] [--gate <baseline-dir>]
             [--compare <baseline-dir>] [--tolerance <x>]";

fn main() {
    let mut out_dir = PathBuf::from("results");
    let mut only: Option<String> = None;
    let mut list = false;
    let mut table = false;
    let mut quick = false;
    let mut bench_only = false;
    let mut gate_baseline: Option<PathBuf> = None;
    let mut compare_baseline: Option<PathBuf> = None;
    let mut tolerance = GateConfig::default().tolerance;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--out" => out_dir = PathBuf::from(value("--out")),
            "--exp" => only = Some(value("--exp")),
            "--gate" => gate_baseline = Some(PathBuf::from(value("--gate"))),
            "--compare" => compare_baseline = Some(PathBuf::from(value("--compare"))),
            "--tolerance" => {
                let raw = value("--tolerance");
                tolerance = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance needs a number, got `{raw}`");
                    std::process::exit(2);
                });
                // NaN would make every `ratio > tolerance` check false and
                // silently disable the gate.
                if !tolerance.is_finite() || tolerance <= 0.0 {
                    eprintln!("--tolerance must be a finite positive number, got `{raw}`");
                    std::process::exit(2);
                }
            }
            "--list" => list = true,
            "--table" => table = true,
            "--quick" => quick = true,
            "--bench-only" => bench_only = true,
            "--all" => {} // running everything is the default
            "--help" | "-h" => {
                println!("{USAGE}");
                println!("ids: {}", experiments::ids().join(" "));
                return;
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    if list {
        println!("{:<4} {:<10} {:<62} artefacts", "id", "perf-gate", "title");
        for e in REGISTRY {
            println!(
                "{:<4} {:<10} {:<62} {}",
                e.id,
                if e.bench_artefact.is_some() {
                    "gated"
                } else {
                    "-"
                },
                e.title,
                if e.artefacts.is_empty() {
                    "(stdout only)".to_string()
                } else {
                    e.artefacts.join(", ")
                }
            );
        }
        return;
    }
    if table {
        print!("{}", experiments::markdown_table());
        // When the output directory already holds bench artefacts (a prior
        // run, or --out baselines), render their measured metrics too —
        // percentile columns when present, dashes when not.
        if let Some(metrics) = experiments::metrics_table(&out_dir) {
            println!("\nmeasured metrics under {}/:\n", out_dir.display());
            print!("{metrics}");
        }
        return;
    }

    let profile = if quick { Profile::Quick } else { Profile::Full };
    let cfg = GateConfig { tolerance };
    let ctx = ExpCtx::new(&out_dir, profile);

    // The gate modes compare the *full* perf-tracked artefact set; running
    // a single experiment underneath them would fabricate missing-artefact
    // failures (or gate stale files), so the combination is rejected.
    if only.is_some() && (gate_baseline.is_some() || compare_baseline.is_some()) {
        eprintln!("--exp cannot be combined with --gate/--compare (the gate covers every perf-tracked experiment)");
        std::process::exit(2);
    }

    if let Some(baseline) = compare_baseline {
        let outcome = gate_directories(&baseline, &out_dir, &cfg);
        print!("{}", outcome.render_text(&cfg));
        std::process::exit(if outcome.passed() { 0 } else { 1 });
    }

    if let Some(o) = only.as_deref() {
        match experiments::find(o) {
            None => {
                eprintln!(
                    "unknown experiment id `{o}`; known ids: {}",
                    experiments::ids().join(" ")
                );
                std::process::exit(2);
            }
            Some(e) if bench_only && e.bench_artefact.is_none() => {
                eprintln!("experiment `{o}` is not perf-tracked; drop --bench-only to run it");
                std::process::exit(2);
            }
            Some(_) => {}
        }
    }

    let gating = gate_baseline.is_some();
    for e in REGISTRY {
        if only.as_deref().map(|o| o != e.id).unwrap_or(false) {
            continue;
        }
        // Gate runs (and --bench-only) cover exactly the perf-tracked set.
        if (bench_only || gating) && e.bench_artefact.is_none() {
            continue;
        }
        println!("\n════ {}: {} ════\n", e.id, e.title);
        experiments::run(e.id, &ctx).expect("registered id runs");
    }
    println!("\nartefacts written under {}/", out_dir.display());

    if let Some(baseline) = gate_baseline {
        println!();
        let outcome = gate_directories(&baseline, &out_dir, &cfg);
        print!("{}", outcome.render_text(&cfg));
        std::process::exit(if outcome.passed() { 0 } else { 1 });
    }
}
