//! Quantitative studies (`t1`–`t14`, `a1`): the measured experiments.
//! Each prints a human-readable table, writes it as CSV, and — where the
//! experiment is perf-tracked — emits a schema-versioned `BENCH_*.json`
//! via [`crate::report`] for the trajectory and the CI perf gate.
//!
//! Every study honours the active [`super::Profile`]: `Full` runs the
//! paper-faithful matrix, `Quick` a shrunk one (same code, smaller
//! instances, fewer repetitions). The profile and the RNG seeds actually
//! used are recorded inside every emitted report.

use super::ExpCtx;
use crate::report::BenchReport;
use crate::{parallel_map, sweep_instances, time_median_ns, CsvTable};
use hsa_assign::{
    all_solvers, evaluate_cut, evaluate_cut_in, lambda_frontier_with, sb_optimum,
    solve_with_frontiers, AllOnHost, BruteForce, CancelToken, EvalScratch, Expanded,
    ExpandedConfig, FrontierSet, MaxOffload, PaperSsb, Prepared, SbObjective, Solver,
};
use hsa_engine::net::{wire, Client, NetConfig, NetServer, NetStats};
use hsa_engine::{
    Engine, EngineConfig, InstanceId, Portfolio, PortfolioConfig, Reply, Request, Service,
    ServiceConfig, Session, SessionConfig, TenantId, Ticket,
};
use hsa_graph::generate::{layered_dag, LayeredParams};
use hsa_graph::{
    sb_search, sb_search_sweep, ssb_search, ssb_search_sweep, Cost, EliminationRule, Lambda,
    SsbConfig,
};
use hsa_heuristics::{
    branch_and_bound, genetic, simulated_annealing, BnbConfig, GaConfig, SaConfig, TaskDag,
};
use hsa_sim::{render_gantt, simulate, SimConfig};
use hsa_workloads::{
    catalog, drift_trace, epilepsy_scenario, random_instance, random_scenario, request_stream,
    scale_host_times, DriftConfig, EpilepsyParams, Placement, RandomTreeParams, RequestStream,
    StreamConfig, StreamOp,
};
use std::sync::Arc;

/// Makes a scenario name usable as a metric key (alphanumeric + `_`).
fn metric_key(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

pub(super) fn t1(ctx: &ExpCtx) {
    const SEED: u64 = 42;
    // Generic SSB on random layered DWGs: runtime vs |V| and |E|.
    let mut table = CsvTable::new(
        "t1_ssb_scaling",
        &["nodes", "edges", "median_ns", "ns_per_v2e_x1e9"],
    );
    let (layer_set, width_set): (&[usize], &[usize]) = ctx.profile.pick(
        (&[2, 4, 8, 16][..], &[2, 4, 8][..]),
        (&[2, 4][..], &[2, 4][..]),
    );
    let reps = ctx.profile.pick(9, 3);
    let mut configs = Vec::new();
    for &layers in layer_set {
        for &width in width_set {
            configs.push((layers, width));
        }
    }
    let threads = 4;
    let rows = parallel_map(configs, threads, move |(layers, width)| {
        let params = LayeredParams {
            layers,
            width,
            extra_edges: 3 * width,
            max_sigma: 1000,
            max_beta: 1000,
        };
        let gen = layered_dag(&params, SEED);
        let v = gen.graph.num_nodes() as u64;
        let e = gen.graph.num_edges() as u64;
        let ns = time_median_ns(reps, || {
            let mut g = gen.graph.clone();
            let out = ssb_search(&mut g, gen.source, gen.target, &SsbConfig::default());
            std::hint::black_box(out.iterations);
        });
        (v, e, ns)
    });
    let mut report = BenchReport::new(
        "ssb_scaling",
        "t1",
        "generic SSB search on random layered DWGs",
        ctx.profile.name(),
        SEED,
    );
    report.threads = threads;
    for &(v, e, ns) in &rows {
        let normal = ns as f64 * 1e9 / (v as f64 * v as f64 * e as f64);
        table.row(&[
            v.to_string(),
            e.to_string(),
            ns.to_string(),
            format!("{normal:.1}"),
        ]);
        report.instance_sizes.push(v);
        report.metric(format!("ssb_v{v}_e{e}"), 1, ns);
    }
    println!("{}", table.render_text());
    println!("shape check: the last column (time / |V|²|E|, scaled) should stay bounded");
    println!("as the instances grow — the paper's §4.2 O(|V|²|E|) claim.");
    table.write_csv(ctx.out_dir).unwrap();
    ctx.emit(&report);
}

pub(super) fn t2(ctx: &ExpCtx) {
    // sweep_instances derives per-cell seeds as `seed + 1000·n`; the base
    // recorded here is the first cell's seed.
    const SEED_STRIDE: u64 = 1000;
    let mut table = CsvTable::new(
        "t2_expansion_cost",
        &[
            "n_crus",
            "placement",
            "composites_Eprime",
            "paper_iterations",
            "paper_expansions",
            "paper_branches",
            "paper_ns",
            "expanded_ns",
        ],
    );
    let sizes: &[usize] = ctx.profile.pick(&[10, 20, 40, 80][..], &[10, 20][..]);
    let per_cell = ctx.profile.pick(3, 1);
    let reps = ctx.profile.pick(5, 3);
    let threads = 4;
    let suite = sweep_instances(
        sizes,
        &[
            Placement::Blocked,
            Placement::Interleaved,
            Placement::Random,
        ],
        3,
        per_cell,
    );
    let rows = parallel_map(suite, threads, move |(n, pl, _seed, tree, costs)| {
        let prep = Prepared::new(&tree, &costs).unwrap();
        let fast = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let paper = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
        assert_eq!(fast.objective, paper.objective, "solvers disagree");
        let paper_ns = time_median_ns(reps, || {
            let s = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
            std::hint::black_box(s.objective);
        });
        let exp_ns = time_median_ns(reps, || {
            let s = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
            std::hint::black_box(s.objective);
        });
        (
            n,
            format!("{pl:?}"),
            fast.stats.composites,
            paper.stats.iterations,
            paper.stats.expansions,
            paper.stats.branches,
            paper_ns,
            exp_ns,
        )
    });
    // Aggregate per (n, placement): means over seeds.
    let mut agg: std::collections::BTreeMap<(usize, String), Vec<[u64; 6]>> = Default::default();
    for (n, pl, comp, iters, exps, brs, pns, ens) in rows {
        agg.entry((n, pl))
            .or_default()
            .push([comp, iters, exps, brs, pns, ens]);
    }
    let mut report = BenchReport::new(
        "expansion",
        "t2",
        "expansion machinery cost: PaperSsb vs Expanded across placements",
        ctx.profile.name(),
        SEED_STRIDE * sizes[0] as u64,
    );
    report.threads = threads;
    for ((n, pl), cell) in agg {
        let k = cell.len() as u64;
        let mean = |i: usize| cell.iter().map(|r| r[i]).sum::<u64>() / k;
        table.row(&[
            n.to_string(),
            pl.clone(),
            mean(0).to_string(),
            mean(1).to_string(),
            mean(2).to_string(),
            mean(3).to_string(),
            mean(4).to_string(),
            mean(5).to_string(),
        ]);
        if !report.instance_sizes.contains(&(n as u64)) {
            report.instance_sizes.push(n as u64);
        }
        let key = metric_key(&pl.to_lowercase());
        report.metric(format!("paper_n{n}_{key}"), 1, mean(4));
        report.metric(format!("expanded_n{n}_{key}"), 1, mean(5));
    }
    println!("{}", table.render_text());
    println!("shape check: |E′| (composites) grows with n; interleaved placement forces");
    println!("branches where blocked needs none — the regime split of DESIGN.md §2.");
    table.write_csv(ctx.out_dir).unwrap();
    ctx.emit(&report);
}

pub(super) fn t3(ctx: &ExpCtx) {
    let mut table = CsvTable::new(
        "t3_objective_gap",
        &[
            "instance",
            "ssb_opt_delay",
            "sb_opt_delay",
            "delay_penalty_pct",
            "ssb_opt_bottleneck_SB",
            "sb_opt_bottleneck_SB",
        ],
    );
    {
        let mut run = |name: &str, tree: &hsa_tree::CruTree, costs: &hsa_tree::CostModel| {
            let prep = Prepared::new(tree, costs).unwrap();
            let ssb = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
            let sb_sol = SbObjective::default().solve(&prep, Lambda::HALF).unwrap();
            let sb_val = sb_optimum(&prep).unwrap();
            let penalty =
                (sb_sol.delay().ticks() as f64 / ssb.delay().ticks().max(1) as f64 - 1.0) * 100.0;
            table.row(&[
                name.to_string(),
                ssb.delay().to_string(),
                sb_sol.delay().to_string(),
                format!("{penalty:.1}"),
                ssb.report.host_time.max(ssb.report.bottleneck).to_string(),
                sb_val.to_string(),
            ]);
        };
        for sc in catalog() {
            run(&sc.name, &sc.tree, &sc.costs);
        }
        for seed in 0..ctx.profile.pick(6u64, 2) {
            let (tree, costs) = random_instance(
                &RandomTreeParams {
                    n_crus: 24,
                    n_satellites: 3,
                    placement: Placement::Random,
                    ..RandomTreeParams::default()
                },
                seed,
            );
            run(&format!("random-{seed}"), &tree, &costs);
        }
    }
    println!("{}", table.render_text());
    println!("shape check: minimising Bokhari's bottleneck (SB) costs end-to-end delay —");
    println!("the penalty column is ≥ 0 and often substantial. This is the paper's §2");
    println!("case for replacing the SB objective with SSB.");
    table.write_csv(ctx.out_dir).unwrap();
}

pub(super) fn t4(ctx: &ExpCtx) {
    let mut table = CsvTable::new(
        "t4_sim_validation",
        &[
            "scenario",
            "cut",
            "analytic_S_plus_B",
            "sim_paper_model",
            "match",
            "sim_eager",
            "eager_gain_pct",
        ],
    );
    for sc in catalog() {
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let optimal = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let cuts: Vec<(&str, hsa_tree::Cut)> = vec![
            ("all-on-host", hsa_tree::Cut::all_on_host(&sc.tree)),
            (
                "max-offload",
                hsa_tree::Cut::max_offload(&sc.tree, &prep.colouring),
            ),
            ("optimal", optimal.cut.clone()),
        ];
        for (name, cut) in cuts {
            let (_a, rep) = evaluate_cut(&prep, &cut).unwrap();
            let paper = simulate(&prep, &cut, &SimConfig::paper_model()).unwrap();
            let eager = simulate(&prep, &cut, &SimConfig::eager()).unwrap();
            let gain = (1.0
                - eager.end_to_end.ticks() as f64 / paper.end_to_end.ticks().max(1) as f64)
                * 100.0;
            assert_eq!(paper.end_to_end, rep.end_to_end);
            table.row(&[
                sc.name.clone(),
                name.to_string(),
                rep.end_to_end.to_string(),
                paper.end_to_end.to_string(),
                (paper.end_to_end == rep.end_to_end).to_string(),
                eager.end_to_end.to_string(),
                format!("{gain:.1}"),
            ]);
        }
    }
    println!("{}", table.render_text());
    println!("shape check: the paper-model simulation reproduces S+B exactly on every row;");
    println!("the eager relaxation quantifies the §3 model's conservatism.");
    table.write_csv(ctx.out_dir).unwrap();
}

pub(super) fn t5(ctx: &ExpCtx) {
    const SEED: u64 = 7;
    let mut table = CsvTable::new(
        "t5_solver_comparison",
        &[
            "n_crus",
            "brute_cuts",
            "brute_ns",
            "paper_ns",
            "expanded_ns",
            "all_agree",
        ],
    );
    let sizes: &[usize] = ctx.profile.pick(&[8, 12, 16, 20, 24][..], &[8, 12][..]);
    let reps = ctx.profile.pick(5, 3);
    let mut report = BenchReport::new(
        "solver_comparison",
        "t5",
        "exact solvers (PaperSsb, Expanded, preparation) vs instance size",
        ctx.profile.name(),
        SEED,
    );
    for &n in sizes {
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: n,
                n_satellites: 3,
                placement: Placement::Random,
                ..RandomTreeParams::default()
            },
            SEED,
        );
        let prep = Prepared::new(&tree, &costs).unwrap();
        let brute = BruteForce::default().solve(&prep, Lambda::HALF);
        let paper = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
        let fast = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        // Brute force stays in the CSV for the exponential-blow-up story but
        // out of the gated report: its runtime is cap-dependent and noisy.
        let (cuts, brute_ns, agree) = match brute {
            Ok(b) => {
                let ns = time_median_ns(3, || {
                    let s = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
                    std::hint::black_box(s.objective);
                });
                (
                    b.stats.evaluated.to_string(),
                    ns.to_string(),
                    (b.objective == paper.objective && b.objective == fast.objective).to_string(),
                )
            }
            Err(_) => (
                ">cap".into(),
                "-".into(),
                (paper.objective == fast.objective).to_string(),
            ),
        };
        let paper_ns = time_median_ns(reps, || {
            let s = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
            std::hint::black_box(s.objective);
        });
        let exp_ns = time_median_ns(reps, || {
            let s = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
            std::hint::black_box(s.objective);
        });
        let prep_ns = time_median_ns(reps, || {
            std::hint::black_box(Prepared::new(&tree, &costs).unwrap().graph.n_edges());
        });
        table.row(&[
            n.to_string(),
            cuts,
            brute_ns,
            paper_ns.to_string(),
            exp_ns.to_string(),
            agree,
        ]);
        report.instance_sizes.push(n as u64);
        report.metric(format!("paper_n{n}"), 1, paper_ns);
        report.metric(format!("expanded_n{n}"), 1, exp_ns);
        report.metric(format!("prepare_n{n}"), 1, prep_ns);
    }
    println!("{}", table.render_text());
    println!("shape check: brute-force cut counts explode exponentially while both");
    println!("polynomial solvers stay in the micro/millisecond range and always agree.");
    table.write_csv(ctx.out_dir).unwrap();
    ctx.emit(&report);
}

pub(super) fn t6(ctx: &ExpCtx) {
    let mut table = CsvTable::new(
        "t6_heterogeneity",
        &[
            "host_speed",
            "optimal",
            "all_on_host",
            "max_offload",
            "greedy",
            "random",
            "advantage_vs_naive",
            "crus_on_host",
        ],
    );
    let base = epilepsy_scenario(&EpilepsyParams::default());
    for (num, den, label) in [
        (8u64, 1u64, "8x-slower"),
        (4, 1, "4x-slower"),
        (2, 1, "2x-slower"),
        (1, 1, "baseline"),
        (1, 2, "2x-faster"),
        (1, 4, "4x-faster"),
        (1, 16, "16x-faster"),
    ] {
        let sc = scale_host_times(&base, num, den);
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let solve = |s: &dyn Solver| s.solve(&prep, Lambda::HALF).unwrap();
        let optimal = solve(&Expanded::default());
        let naive = solve(&AllOnHost);
        let offload = solve(&MaxOffload);
        let greedy = solve(&hsa_assign::GreedyDescent);
        let random = solve(&hsa_assign::RandomCut::default());
        table.row(&[
            label.to_string(),
            optimal.delay().to_string(),
            naive.delay().to_string(),
            offload.delay().to_string(),
            greedy.delay().to_string(),
            random.delay().to_string(),
            format!(
                "{:.2}x",
                naive.delay().ticks() as f64 / optimal.delay().ticks().max(1) as f64
            ),
            format!("{}/{}", optimal.assignment.host.len(), sc.tree.len()),
        ]);
    }
    println!("{}", table.render_text());
    println!("shape check: the optimal column always wins; its advantage over all-on-host");
    println!("shrinks monotonically as the host speeds up, and CRUs migrate hostward —");
    println!("the crossover the paper's introduction motivates.");
    table.write_csv(ctx.out_dir).unwrap();
}

pub(super) fn t7(ctx: &ExpCtx) {
    let mut table = CsvTable::new(
        "t7_heuristics",
        &[
            "instance",
            "tree_opt_delay",
            "bnb_makespan",
            "bnb_nodes",
            "ga_makespan",
            "ga_vs_bnb_pct",
            "sa_makespan",
            "sa_vs_bnb_pct",
        ],
    );
    for seed in 0..ctx.profile.pick(5u64, 2) {
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: 8,
                n_satellites: 2,
                placement: Placement::Random,
                ..RandomTreeParams::default()
            },
            seed,
        );
        let prep = Prepared::new(&tree, &costs).unwrap();
        let tree_opt = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let dag = TaskDag::from_tree(&tree, &costs);
        let bnb = branch_and_bound(&dag, &BnbConfig::default()).unwrap();
        let ga = genetic(
            &dag,
            &GaConfig {
                seed,
                ..GaConfig::default()
            },
        )
        .unwrap();
        let sa = simulated_annealing(
            &dag,
            &SaConfig {
                seed,
                ..SaConfig::default()
            },
        )
        .unwrap();
        let pct = |x: Cost| (x.ticks() as f64 / bnb.makespan.ticks().max(1) as f64 - 1.0) * 100.0;
        table.row(&[
            format!("random-{seed}"),
            tree_opt.delay().to_string(),
            bnb.makespan.to_string(),
            bnb.nodes.to_string(),
            ga.makespan.to_string(),
            format!("{:.1}", pct(ga.makespan)),
            sa.makespan.to_string(),
            format!("{:.1}", pct(sa.makespan)),
        ]);
    }
    println!("{}", table.render_text());
    println!("shape check: B&B (exact, list-scheduling objective) never exceeds the tree");
    println!("optimum (assignments ⊇ cuts and list scheduling only overlaps more);");
    println!("GA/SA sit at or slightly above B&B — the paper's §6 expectation.");
    table.write_csv(ctx.out_dir).unwrap();
}

pub(super) fn t8(ctx: &ExpCtx) {
    let sc = epilepsy_scenario(&EpilepsyParams::default());
    let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
    let mut table = CsvTable::new("t8_epilepsy", &["deployment", "delay_us", "S_us", "B_us"]);
    for solver in all_solvers() {
        if let Ok(sol) = solver.solve(&prep, Lambda::HALF) {
            table.row(&[
                solver.name().to_string(),
                sol.delay().to_string(),
                sol.report.host_time.to_string(),
                sol.report.bottleneck.to_string(),
            ]);
        }
    }
    println!("{}", table.render_text());
    let optimal = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
    let cfg = SimConfig {
        record_trace: true,
        ..SimConfig::paper_model()
    };
    let sim = simulate(&prep, &optimal.cut, &cfg).unwrap();
    println!("optimal deployment executed in the simulator:");
    println!("{}", render_gantt(&sim, 64));
    table.write_csv(ctx.out_dir).unwrap();
}

pub(super) fn t9(ctx: &ExpCtx) {
    let cfg = ctx.profile.pick(
        crate::ThroughputConfig::default(),
        crate::ThroughputConfig {
            random_instances: 1,
            n_crus: 10,
            lambda_steps: 3,
            reps: 2,
        },
    );
    let report = crate::engine_throughput(&cfg);
    let mut table = CsvTable::new(
        "t9_engine_throughput",
        &[
            "arm",
            "instances",
            "queries",
            "threads",
            "total_ns",
            "solves_per_sec",
        ],
    );
    table.row(&[
        "naive-per-call".into(),
        report.instances.to_string(),
        report.queries.to_string(),
        "1".into(),
        report.naive_ns.to_string(),
        format!("{:.1}", report.naive_solves_per_sec()),
    ]);
    table.row(&[
        "engine-batched".into(),
        report.instances.to_string(),
        report.queries.to_string(),
        report.threads.to_string(),
        report.batched_ns.to_string(),
        format!("{:.1}", report.batched_solves_per_sec()),
    ]);
    println!("{}", table.render_text());
    println!(
        "speedup: {:.2}x  (batched answers are asserted byte-identical to the naive arm)",
        report.speedup()
    );
    println!("shape check: the engine amortises preparation and the λ-independent frontier");
    println!("DP across the λ grid — the speedup must stay ≥ 2x even on one core.");
    table.write_csv(ctx.out_dir).unwrap();
    ctx.emit(&report.to_report(ctx.profile.name()));
}

pub(super) fn t10(ctx: &ExpCtx) {
    const SEED: u64 = 200;
    // The λ-frontier case: one envelope pass answers a whole λ grid. Both
    // arms run over identical cached preparations; correctness is asserted
    // at every grid point before anything is timed.
    let grid = ctx.profile.pick(16u32, 4);
    let reps = ctx.profile.pick(5, 3);
    let mut instances: Vec<(String, hsa_tree::CruTree, hsa_tree::CostModel)> = catalog()
        .into_iter()
        .map(|sc| (sc.name, sc.tree, sc.costs))
        .collect();
    for i in 0..ctx.profile.pick(3u64, 1) {
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: 24,
                n_satellites: 3,
                placement: Placement::Random,
                ..RandomTreeParams::default()
            },
            SEED + i,
        );
        instances.push((format!("random-{i}"), tree, costs));
    }
    let lambdas: Vec<Lambda> = (0..=grid).map(|n| Lambda::new(n, grid).unwrap()).collect();
    let mut table = CsvTable::new(
        "t10_lambda_frontier",
        &[
            "instance",
            "crus",
            "segments",
            "breakpoints",
            "frontier_ns",
            "grid_ns",
            "speedup",
        ],
    );
    let mut report = BenchReport::new(
        "frontier",
        "t10",
        "λ-frontier envelope vs a per-λ solve grid",
        ctx.profile.name(),
        SEED,
    );
    report.param("lambda_grid_points", lambdas.len() as f64);
    let mut total_segments = 0u64;
    for (name, tree, costs) in &instances {
        let prep = Prepared::new(tree, costs).unwrap();
        let frontiers = FrontierSet::prepare(&prep, &ExpandedConfig::default()).unwrap();
        let frontier = lambda_frontier_with(&prep, &frontiers).unwrap();
        for &lambda in &lambdas {
            let fresh = Expanded::default().solve(&prep, lambda).unwrap();
            assert_eq!(
                frontier.objective_at(lambda),
                fresh.objective,
                "{name}: frontier disagrees with a fresh solve at λ={lambda}"
            );
        }
        let frontier_ns = time_median_ns(reps, || {
            let f = lambda_frontier_with(&prep, &frontiers).unwrap();
            std::hint::black_box(f.num_segments());
        });
        let grid_ns = time_median_ns(reps, || {
            for &lambda in &lambdas {
                let s = Expanded::default().solve(&prep, lambda).unwrap();
                std::hint::black_box(s.objective);
            }
        });
        let key = metric_key(name);
        table.row(&[
            name.clone(),
            tree.len().to_string(),
            frontier.num_segments().to_string(),
            frontier.breakpoints().len().to_string(),
            frontier_ns.to_string(),
            grid_ns.to_string(),
            format!("{:.2}", grid_ns as f64 / frontier_ns.max(1) as f64),
        ]);
        report.instance_sizes.push(tree.len() as u64);
        report.metric(format!("frontier_{key}"), 1, frontier_ns);
        report.metric(format!("grid_{key}"), lambdas.len() as u64, grid_ns);
        total_segments += frontier.num_segments() as u64;
    }
    report.param("total_segments", total_segments as f64);
    println!("{}", table.render_text());
    println!("shape check: the frontier answers the entire λ grid in one envelope pass —");
    println!("its time tracks one threshold sweep, not grid_points × solves, so the");
    println!("speedup column grows with the grid resolution (DESIGN.md §7).");
    table.write_csv(ctx.out_dir).unwrap();
    ctx.emit(&report);
}

pub(super) fn t11(ctx: &ExpCtx) {
    const SEED: u64 = 1100;
    // Incremental re-solve on drifting instances: replay the same drift
    // trace through (a) a held-open `Session` (apply + incremental frontier
    // refresh + solve per step) and (b) from-scratch solving (apply to a
    // bare cost model + full `Prepared` + full `Expanded` solve per step).
    // Before anything is timed, every step's incremental solution is
    // asserted identical — cut for cut — to the fresh solve at λ = 0, ½, 1.
    let steps = ctx.profile.pick(24usize, 5);
    let reps = ctx.profile.pick(7, 3);
    // Production-shaped instance: large tree, blocked placement (eight
    // single-band colours), so the λ-independent frontier DP dominates a
    // from-scratch solve — exactly the regime a drifting deployment lives
    // in. The quick profile shrinks it (same code path; at that size the
    // DP no longer dominates, so no speedup is asserted there).
    let base = random_scenario(
        &RandomTreeParams {
            n_crus: ctx.profile.pick(192, 16),
            n_satellites: ctx.profile.pick(8, 4),
            placement: Placement::Blocked,
            ..RandomTreeParams::default()
        },
        SEED,
    );
    // The drift-magnitude axis: permille scale of the per-step random walk
    // (20‰ ≈ sensor-rate wobble, 400‰ ≈ violent re-costing). Larger
    // magnitudes also scale whole subtrees more often, dirtying more
    // colours per step, so the incremental advantage shrinks — that decay
    // is the experiment's shape.
    let magnitudes: &[u32] = ctx.profile.pick(&[20, 100, 400][..], &[20, 400][..]);
    let mut table = CsvTable::new(
        "t11_incremental",
        &[
            "magnitude_permille",
            "steps",
            "avg_dirty_colours",
            "full_rebuilds",
            "incremental_ns",
            "scratch_ns",
            "speedup",
        ],
    );
    let mut report = BenchReport::new(
        "incremental",
        "t11",
        "incremental re-solve (Session) vs from-scratch across drift magnitudes",
        ctx.profile.name(),
        SEED,
    );
    report.instance_sizes.push(base.tree.len() as u64);
    report.param("steps", steps as f64);
    let lambdas = [Lambda::ZERO, Lambda::HALF, Lambda::ONE];
    let mut small_mag_speedup = f64::NAN;
    for &mag in magnitudes {
        let cfg = DriftConfig {
            steps,
            magnitude_permille: mag,
            touched_per_step: 1,
            subtree_permille: mag.min(400),
            churn_permille: 30,
            seed: SEED + mag as u64,
        };
        let trace = drift_trace(&base, &cfg);
        // Correctness gate: the incremental path must be exact at every
        // single step before its timing means anything.
        let pristine = Session::new(&base.tree, &base.costs, SessionConfig::default()).unwrap();
        let mut session = pristine.clone();
        let mut mirror = base.costs.clone();
        let mut dirty_sum = 0usize;
        for (i, delta) in trace.deltas.iter().enumerate() {
            delta.apply(&base.tree, &mut mirror).unwrap();
            dirty_sum += session.apply(delta).unwrap().dirty_colours;
            let fresh_prep = Prepared::new(&base.tree, &mirror).unwrap();
            for lambda in lambdas {
                let fresh = Expanded::default().solve(&fresh_prep, lambda).unwrap();
                let incr = session.solve(lambda).unwrap();
                assert_eq!(
                    incr.objective, fresh.objective,
                    "m={mag} step {i}: incremental objective diverged at λ={lambda}"
                );
                assert_eq!(
                    incr.cut, fresh.cut,
                    "m={mag} step {i}: incremental cut diverged at λ={lambda}"
                );
            }
        }
        assert_eq!(session.costs(), &trace.final_costs, "replay mismatch");
        let stats = session.stats();
        // The two arms are timed *interleaved* (one sample of each per
        // repetition, medians per arm) so transient machine load lands on
        // both ratios' sides instead of poisoning one whole arm.
        let mut incr_samples = Vec::with_capacity(reps);
        let mut scratch_samples = Vec::with_capacity(reps);
        // Per-step latency tails across every repetition: a drift step
        // that falls back to a full rebuild is exactly the p99 the gated
        // percentile columns are for (the arm totals above only see its
        // contribution to the mean). The per-step `Instant` reads are
        // nanoseconds against millisecond-scale steps.
        let incr_hist = hsa_engine::LatencyHistogram::new();
        let scratch_hist = hsa_engine::LatencyHistogram::new();
        for _ in 0..reps {
            // Forking the pristine replay point is setup, not the
            // apply+solve work under measurement — keep it off the clock.
            let mut s = pristine.clone();
            let t0 = std::time::Instant::now();
            for delta in &trace.deltas {
                let s0 = std::time::Instant::now();
                s.apply(delta).unwrap();
                std::hint::black_box(s.solve(Lambda::HALF).unwrap().objective);
                incr_hist.record_duration(s0.elapsed());
            }
            incr_samples.push(t0.elapsed().as_nanos() as u64);
            let mut costs = base.costs.clone();
            let t0 = std::time::Instant::now();
            for delta in &trace.deltas {
                let s0 = std::time::Instant::now();
                delta.apply(&base.tree, &mut costs).unwrap();
                let prep = Prepared::new(&base.tree, &costs).unwrap();
                let sol = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
                std::hint::black_box(sol.objective);
                scratch_hist.record_duration(s0.elapsed());
            }
            scratch_samples.push(t0.elapsed().as_nanos() as u64);
        }
        let incr_lat = incr_hist.snapshot().stats();
        let scratch_lat = scratch_hist.snapshot().stats();
        incr_samples.sort_unstable();
        scratch_samples.sort_unstable();
        let incr_ns = incr_samples[incr_samples.len() / 2];
        let scratch_ns = scratch_samples[scratch_samples.len() / 2];
        let speedup = scratch_ns as f64 / incr_ns.max(1) as f64;
        if mag == magnitudes[0] {
            small_mag_speedup = speedup;
        }
        table.row(&[
            mag.to_string(),
            steps.to_string(),
            // Truly *dirty* colours per step (a fallback step rebuilds all
            // colours but dirties only what the diff reported).
            format!("{:.2}", dirty_sum as f64 / steps as f64),
            stats.full_rebuilds.to_string(),
            incr_ns.to_string(),
            scratch_ns.to_string(),
            format!("{speedup:.2}"),
        ]);
        report.metric_with_percentiles(
            format!("incremental_m{mag}"),
            steps as u64,
            incr_ns,
            incr_lat.p50_ns,
            incr_lat.p99_ns,
        );
        report.metric_with_percentiles(
            format!("scratch_m{mag}"),
            steps as u64,
            scratch_ns,
            scratch_lat.p50_ns,
            scratch_lat.p99_ns,
        );
        report.param(format!("speedup_m{mag}"), speedup);
        report.param(format!("full_rebuilds_m{mag}"), stats.full_rebuilds as f64);
        report.param(format!("reuse_rate_m{mag}"), stats.reuse_rate());
    }
    println!("{}", table.render_text());
    println!("shape check: a drift step dirties only one or two colours on average, so the");
    println!("session skips most of the per-step frontier DP — in the full profile the");
    println!("speedup must be ≥ 2x at the smallest magnitude (DESIGN.md §9; the quick");
    println!("profile's instances are too small for the DP to dominate, so the ratio is");
    println!("reported but not asserted there).");
    // Artefacts first, gate second: a timing flake must not destroy the
    // very diagnostics (CSV + BENCH report) that explain it, nor abort
    // the experiments registered after t11.
    table.write_csv(ctx.out_dir).unwrap();
    ctx.emit(&report);
    if ctx.profile == super::Profile::Full {
        assert!(
            small_mag_speedup >= 2.0,
            "incremental re-solve must be ≥ 2x over scratch at small drift \
             (measured {small_mag_speedup:.2}x)"
        );
    }
}

/// One timed (or verified) pass of a request stream through a fresh
/// engine + service at `workers` workers: open one tenant per instance,
/// submit every request in arrival order (open-loop: submission never
/// waits for completions, only for backpressure), wait for every answer,
/// and assert the tenants drifted into exactly the stream's recorded
/// final cost models. Returns the wall time for the whole stream plus
/// the engine and service counter snapshots.
fn run_service_stream(
    stream: &RequestStream,
    arcs: &[(Arc<hsa_tree::CruTree>, Arc<hsa_tree::CostModel>)],
    workers: usize,
    verify: bool,
) -> (u64, hsa_engine::EngineStats, hsa_engine::ServiceStats) {
    // The engine's own pool is bypassed by single-query service solves;
    // one thread keeps it from idling workers the stream never feeds.
    let engine = Arc::new(Engine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    }));
    let service = Service::new(
        Arc::clone(&engine),
        ServiceConfig {
            workers,
            verify,
            ..ServiceConfig::default()
        },
    );
    // Tenant sessions are opened outside the clock (a warm multi-tenant
    // service); the engine's prepare cache starts cold, so solve requests
    // pay first-touch misses *inside* the stream — that is the hit-rate
    // the experiment reports.
    for (i, sc) in stream.instances.iter().enumerate() {
        service
            .open_tenant(TenantId(i as u64), &sc.tree, &sc.costs)
            .expect("stream tenants open");
    }
    // A real hot client cannot know an instance id before its first answer:
    // the first contact per instance goes by value (and is waited inline to
    // learn the id from the reply); every later solve/frontier on that
    // instance is id-addressed, skipping hashing and the first-contact
    // equality check entirely. `Answer` carries either the outstanding
    // ticket or the already-waited first-contact reply, so the drain loop
    // below checks every answer exactly once either way.
    enum Answer {
        Pending(Ticket),
        Done(Box<Reply>),
    }
    let mut learned: Vec<Option<InstanceId>> = vec![None; stream.instances.len()];
    let first_contact = |req: Request, instance: usize| -> Reply {
        service
            .submit(req)
            .wait()
            .unwrap_or_else(|e| panic!("request on instance {instance} failed: {e}"))
    };
    let t0 = std::time::Instant::now();
    let answers: Vec<Answer> = stream
        .requests
        .iter()
        .map(|r| {
            let (tree, costs) = &arcs[r.instance];
            match &r.op {
                StreamOp::Solve { lambda } => match learned[r.instance] {
                    Some(id) => Answer::Pending(service.submit(Request::solve_by_id(id, *lambda))),
                    None => {
                        let reply = first_contact(
                            Request::solve_arc(Arc::clone(tree), Arc::clone(costs), *lambda),
                            r.instance,
                        );
                        learned[r.instance] = reply.instance_id();
                        Answer::Done(Box::new(reply))
                    }
                },
                StreamOp::Frontier => match learned[r.instance] {
                    Some(id) => Answer::Pending(service.submit(Request::frontier_by_id(id))),
                    None => {
                        let reply = first_contact(
                            Request::frontier_arc(Arc::clone(tree), Arc::clone(costs)),
                            r.instance,
                        );
                        learned[r.instance] = reply.instance_id();
                        Answer::Done(Box::new(reply))
                    }
                },
                StreamOp::Delta { delta, lambda } => Answer::Pending(service.submit(
                    Request::delta(TenantId(r.instance as u64), delta.clone(), *lambda),
                )),
            }
        })
        .collect();
    for (answer, r) in answers.into_iter().zip(&stream.requests) {
        let reply = match answer {
            Answer::Done(reply) => *reply,
            Answer::Pending(ticket) => ticket
                .wait()
                .unwrap_or_else(|e| panic!("request on instance {} failed: {e}", r.instance)),
        };
        // The reply kind must match the request kind, always.
        match (&r.op, &reply) {
            (StreamOp::Solve { .. }, Reply::Solution { .. })
            | (StreamOp::Frontier, Reply::Frontier { .. })
            | (StreamOp::Delta { .. }, Reply::Applied { .. }) => {}
            _ => panic!("reply kind does not match request kind"),
        }
    }
    let elapsed = t0.elapsed().as_nanos() as u64;
    // Exactness of the stateful path, independent of `verify`: each
    // tenant's session must have drifted into exactly the cost model the
    // generator recorded (FIFO per tenant, nothing lost, nothing reordered).
    for (i, want) in stream.final_costs.iter().enumerate() {
        let got = service
            .tenant_costs(TenantId(i as u64))
            .expect("tenant still open");
        assert_eq!(
            &got, want,
            "tenant {i} did not drift into the generated final costs"
        );
    }
    (elapsed, engine.stats(), service.stats())
}

pub(super) fn t12(ctx: &ExpCtx) {
    const SEED: u64 = 1200;
    // The multi-tenant service under an open-loop Zipf request stream:
    // throughput and prepare-cache hit rate as the worker count grows.
    // Phase 1 runs the whole stream in verification mode (every single
    // answer cross-checked byte-for-byte against a from-scratch
    // `Expanded::solve` / frontier of the same instance state) — only
    // then is anything timed.
    let stream_cfg = StreamConfig {
        requests: ctx.profile.pick(512, 64),
        extra_instances: ctx.profile.pick(5, 2),
        n_crus: ctx.profile.pick(26, 12),
        seed: SEED,
        ..StreamConfig::default()
    };
    let stream = request_stream(&stream_cfg);
    let arcs = stream.arc_instances();
    let reps = ctx.profile.pick(5, 3);

    // Correctness gate before any timing.
    let workers_for_verify = 2;
    let (_, _, vstats) = run_service_stream(&stream, &arcs, workers_for_verify, true);
    assert_eq!(
        vstats.failed, 0,
        "verification stream must answer everything"
    );
    assert_eq!(vstats.completed, stream.requests.len() as u64);

    // The worker-count axis: 1, 2, 4, plus the actual core count when it
    // is larger (on a 1-core runner the >1 points measure oversubscription
    // overhead, not scaling — the report's env fingerprint records cpus).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut worker_counts = vec![1usize, 2, 4];
    if cores > 4 {
        worker_counts.push(cores);
    }
    worker_counts.dedup();

    let mut table = CsvTable::new(
        "t12_service_stream",
        &[
            "workers",
            "requests",
            "total_ns",
            "req_per_sec",
            "hit_rate",
            "backpressure_waits",
            "solves",
            "frontiers",
            "deltas",
            "solve_p50_us",
            "solve_p99_us",
            "delta_p99_us",
        ],
    );
    let mut report = BenchReport::new(
        "service",
        "t12",
        "service throughput & hit-rate vs worker count under a Zipf request stream",
        ctx.profile.name(),
        SEED,
    );
    report.instance_sizes = stream
        .instances
        .iter()
        .map(|sc| sc.tree.len() as u64)
        .collect();
    report.param("requests", stream.requests.len() as f64);
    report.param("zipf_milli", stream_cfg.zipf_milli as f64);

    // Per-stage breakdown of the id-addressed hot path on the stream's
    // hottest instance against a warm cache: where each answered request's
    // nanoseconds go once the first contact is paid. Each stage is timed
    // tight-looped (median of `stage_reps` loops) and emitted as
    // ops × total-ns, so the gate reads a per-op mean per stage.
    {
        let hot = &stream.instances[0];
        let engine = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let id = engine
            .prepare(&hot.tree, &hot.costs)
            .expect("hot instance prepares");
        let cached = engine.instance(id).expect("just prepared");
        let lambda = Lambda::HALF;
        let cut = solve_with_frontiers(&cached.prepared, &cached.frontiers, lambda)
            .expect("hot instance solves")
            .cut;
        let mut scratch = EvalScratch::new();
        let iters: u64 = ctx.profile.pick(4096, 512);
        let stage_reps = ctx.profile.pick(9, 5);
        let mut stage = |name: &str, f: &mut dyn FnMut()| {
            let ns = time_median_ns(stage_reps, || {
                for _ in 0..iters {
                    f();
                }
            });
            report.metric(format!("hot_stage_{name}"), iters, ns.max(1));
        };
        // Stage 1: instance identity — two cached content hashes mixed.
        stage("hash", &mut || {
            let mut h = hsa_tree::Fnv1a::new();
            h.write_u64(hot.tree.content_hash());
            h.write_u64(hot.costs.content_hash());
            std::hint::black_box(h.finish());
        });
        // Stage 2: sharded cache lookup by id (lock + Arc clone).
        stage("cache_lookup", &mut || {
            std::hint::black_box(engine.instance(id).is_some());
        });
        // Stage 3: the λ-sweep over the cached per-colour frontiers,
        // including the single winning-cut evaluation it ends with.
        stage("sweep", &mut || {
            let s = solve_with_frontiers(&cached.prepared, &cached.frontiers, lambda).unwrap();
            std::hint::black_box(s.objective);
        });
        // Stage 4: one walk-free cut evaluation in reused scratch — the
        // allocation-free tail every answer pays.
        stage("evaluate", &mut || {
            let out = evaluate_cut_in(&cached.prepared, &cut, &mut scratch).unwrap();
            std::hint::black_box(&out);
        });
    }

    for &w in &worker_counts {
        let mut samples = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps {
            let (ns, estats, sstats) = run_service_stream(&stream, &arcs, w, false);
            samples.push(ns);
            last = Some((estats, sstats));
        }
        samples.sort_unstable();
        let ns = samples[samples.len() / 2];
        let (estats, sstats) = last.expect("reps >= 1");
        let per_sec = stream.requests.len() as f64 * 1e9 / ns.max(1) as f64;
        let lat = sstats.latency;
        let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
        table.row(&[
            w.to_string(),
            stream.requests.len().to_string(),
            ns.to_string(),
            format!("{per_sec:.1}"),
            format!("{:.3}", estats.hit_rate()),
            sstats.backpressure_waits.to_string(),
            sstats.solves.to_string(),
            sstats.frontiers.to_string(),
            sstats.deltas.to_string(),
            us(lat.solve.p50_ns),
            us(lat.solve.p99_ns),
            us(lat.delta.p99_ns),
        ]);
        report.metric(format!("stream_w{w}"), stream.requests.len() as u64, ns);
        // Per-kind accepted→answered latency of the (last) timed pass:
        // ops × mean = the histogram's own count and sum, with the tail
        // percentiles riding along as gated columns.
        for (kind, l) in [
            ("solve", lat.solve),
            ("frontier", lat.frontier),
            ("delta", lat.delta),
        ] {
            if l.count > 0 {
                report.metric_with_percentiles(
                    format!("lat_{kind}_w{w}"),
                    l.count,
                    l.sum_ns.max(1),
                    l.p50_ns,
                    l.p99_ns,
                );
            }
        }
        report.param(format!("hit_rate_w{w}"), estats.hit_rate());
        report.param(
            format!("backpressure_waits_w{w}"),
            sstats.backpressure_waits as f64,
        );
    }
    report.threads = *worker_counts.last().unwrap();
    println!("{}", table.render_text());
    println!("shape check: the p50/p99 columns are accepted→answered request latency");
    println!("(a delta's wait in its tenant FIFO included) — the tail the perf gate");
    println!("defends via the lat_*_w* metrics' percentile columns.");
    println!("shape check: the stream is a hot client — every instance is addressed by");
    println!("id after its first answer, so prepares (and hence the hit rate) count only");
    println!("first contacts and post-delta re-prepares, not the Zipf hot keys; the");
    println!("hot_stage_* metrics break the id-addressed floor into hash / cache lookup /");
    println!("sweep / evaluate ns. Requests/sec should grow with workers on multi-core");
    println!("machines and at worst plateau on one core.");
    println!("Every answer of the verification pass was asserted byte-identical to a");
    println!("from-scratch solve before timing anything (DESIGN.md §10).");
    table.write_csv(ctx.out_dir).unwrap();
    ctx.emit(&report);
}

/// Waits (pipelined) until the answer for `corr` arrives, discarding —
/// after checking — any other answers that land first. Returns the reply
/// and how many *other* outstanding answers were drained along the way.
fn recv_until(client: &mut Client, corr: u64) -> (Reply, usize) {
    let mut drained = 0usize;
    loop {
        let (got, outcome) = client.recv_any().expect("loopback stream answers");
        let reply = outcome.expect("stream requests succeed");
        if got == corr {
            return (reply, drained);
        }
        drained += 1;
    }
}

/// Tenant ids namespaced per connection: concurrent replays of the same
/// stream must never share session state, or the delta drift of one
/// connection would corrupt another's expected answers. Namespace 0 is
/// also the in-process reference's namespace.
fn conn_tenant(conn: usize, instance: usize) -> TenantId {
    TenantId(conn as u64 * 100_000 + instance as u64)
}

/// One precomputed stream step. The request payload is encoded once and
/// replayed by every connection (`tenant` and the correlation id travel
/// in the frame header, so the payload bytes are namespace-blind), and
/// `expected` is the canonical wire JSON the sequential in-process
/// replay answered — valid for any connection namespace because reply
/// payloads never embed the tenant id (the header field is zeroed by
/// [`wire::reply_json`]) and instance ids are structural hashes, stable
/// across services.
struct PreStep {
    kind: u8,
    payload: Vec<u8>,
    /// `Some(instance)` for deltas: the one request kind that addresses a
    /// connection-namespaced tenant (in the header).
    delta_instance: Option<usize>,
    /// First contact of an instance goes by value and is waited inline,
    /// so the engine knows it before this connection's by-id traffic.
    first_contact: bool,
    expected: String,
}

/// Sequential in-process replay of the stream: per request index, the
/// encoded request bytes and the canonical reply JSON every connection
/// must answer.
fn precompute_stream(
    stream: &RequestStream,
    arcs: &[(Arc<hsa_tree::CruTree>, Arc<hsa_tree::CostModel>)],
) -> Vec<PreStep> {
    let engine = Arc::new(Engine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    }));
    let service = Service::new(
        Arc::clone(&engine),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    for (i, sc) in stream.instances.iter().enumerate() {
        service
            .open_tenant(conn_tenant(0, i), &sc.tree, &sc.costs)
            .expect("reference tenants open");
    }
    let mut learned: Vec<Option<InstanceId>> = vec![None; stream.instances.len()];
    stream
        .requests
        .iter()
        .map(|r| {
            let (tree, costs) = &arcs[r.instance];
            let first_contact = learned[r.instance].is_none()
                && matches!(r.op, StreamOp::Solve { .. } | StreamOp::Frontier);
            let req = stream_request(&r.op, r.instance, 0, learned[r.instance], tree, costs);
            let frame = wire::request_frame(0, &req);
            let reply = service.submit(req).wait().expect("reference answers");
            if first_contact {
                learned[r.instance] = reply.instance_id();
            }
            PreStep {
                kind: frame.kind,
                payload: frame.payload,
                delta_instance: matches!(r.op, StreamOp::Delta { .. }).then_some(r.instance),
                first_contact,
                expected: wire::reply_json(&reply),
            }
        })
        .collect()
}

/// The [`Request`] one stream step maps to: first contact per instance
/// goes by value (the reply teaches the id), everything after by id;
/// deltas address the connection's own tenant namespace.
fn stream_request(
    op: &StreamOp,
    instance: usize,
    conn: usize,
    learned: Option<InstanceId>,
    tree: &Arc<hsa_tree::CruTree>,
    costs: &Arc<hsa_tree::CostModel>,
) -> Request {
    match op {
        StreamOp::Solve { lambda } => match learned {
            Some(id) => Request::solve_by_id(id, *lambda),
            None => Request::solve_arc(Arc::clone(tree), Arc::clone(costs), *lambda),
        },
        StreamOp::Frontier => match learned {
            Some(id) => Request::frontier_by_id(id),
            None => Request::frontier_arc(Arc::clone(tree), Arc::clone(costs)),
        },
        StreamOp::Delta { delta, lambda } => {
            Request::delta(conn_tenant(conn, instance), delta.clone(), *lambda)
        }
    }
}

/// One pass of the request stream over loopback TCP: a fresh engine +
/// service + [`NetServer`], `conns` concurrent pipelined [`Client`]
/// connections each replaying the precomputed stream in its own tenant
/// namespace. Per connection the shape matches [`run_service_stream`] —
/// tenants open outside the clock (a barrier releases every replay at
/// once), the first contact per instance is waited inline, everything
/// else pipelines on the socket as batched flushes. With `verify` every
/// answer is waited inline, fully decoded, and asserted byte-identical
/// (canonical wire JSON) to the in-process replay — run that pass
/// untimed, before the timed reps; the timed drain reads raw frames (a
/// thin satellite forwarding answers). Returns wall time (barrier
/// release → last connection drained), the server-side service counters
/// (accepted→answered latency histograms), and the reactor's
/// [`NetStats`].
/// How many replies a timed replay lets ride on the socket before it
/// drains one. Deep enough that the service never starves across the
/// loopback round trip, shallow enough that the accepted→answered
/// histograms read service latency, not self-inflicted queueing delay.
const PIPELINE_WINDOW: usize = 16;

fn run_net_stream(
    stream: &RequestStream,
    pre: &[PreStep],
    conns: usize,
    workers: usize,
    verify: bool,
) -> (u64, hsa_engine::ServiceStats, NetStats) {
    let engine = Arc::new(Engine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    }));
    let service = Arc::new(Service::new(
        Arc::clone(&engine),
        ServiceConfig {
            workers,
            // A front door sized for hundreds of pipelining connections
            // gets a deeper submission gate than the in-process default:
            // with 64 slots, 256 connections spend more time in
            // park/retry cycles than solving.
            queue_capacity: 256,
            ..ServiceConfig::default()
        },
    ));
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
        .expect("loopback bind");
    let addr = server.local_addr();
    let barrier = std::sync::Barrier::new(conns + 1);

    let replay = |conn: usize| {
        let mut client = Client::connect(addr).expect("loopback connect");
        for (i, sc) in stream.instances.iter().enumerate() {
            client
                .open_tenant(conn_tenant(conn, i), &sc.tree, &sc.costs)
                .expect("stream tenants open over the wire");
        }
        barrier.wait();
        let mut outstanding = 0usize;
        for step in pre {
            let tenant = match step.delta_instance {
                Some(i) => conn_tenant(conn, i).0,
                None => 0,
            };
            let corr = client.send_encoded(step.kind, tenant, &step.payload);
            if verify {
                let (reply, _) = recv_until(&mut client, corr);
                assert_eq!(
                    wire::reply_json(&reply),
                    step.expected,
                    "connection {conn} answer differs from the in-process replay"
                );
            } else if step.first_contact {
                loop {
                    let frame = client.recv_raw().expect("loopback stream answers");
                    assert_ne!(frame.kind, wire::kind::ERROR, "stream requests succeed");
                    if frame.corr == corr {
                        break;
                    }
                    outstanding -= 1;
                }
            } else {
                outstanding += 1;
                // Cap the pipeline the way a real client would: an
                // unbounded burst turns the accepted→answered histogram
                // into a queueing-delay measurement (hundreds of requests
                // deep) instead of a service-latency one, without buying
                // throughput — the window is deep enough to keep the
                // service saturated across the loopback round trip.
                // Draining to half (not one-in-one-out) keeps both
                // directions moving in window-half bursts, so the flush
                // coalescing the reactor is built around still engages.
                if outstanding >= PIPELINE_WINDOW {
                    while outstanding > PIPELINE_WINDOW / 2 {
                        let frame = client.recv_raw().expect("loopback stream answers");
                        assert_ne!(frame.kind, wire::kind::ERROR, "stream requests succeed");
                        outstanding -= 1;
                    }
                }
            }
        }
        while outstanding > 0 {
            let frame = client.recv_raw().expect("loopback stream answers");
            assert_ne!(frame.kind, wire::kind::ERROR, "stream requests succeed");
            outstanding -= 1;
        }
    };

    let mut elapsed = 0u64;
    std::thread::scope(|s| {
        let replay = &replay;
        let handles: Vec<_> = (0..conns)
            .map(|conn| s.spawn(move || replay(conn)))
            .collect();
        barrier.wait();
        let t0 = std::time::Instant::now();
        for h in handles {
            h.join().expect("stream connection panicked");
        }
        elapsed = t0.elapsed().as_nanos() as u64;
    });

    // Same exactness check as the in-process stream, per namespace: every
    // connection's every tenant drifted into exactly the generated final
    // cost model — FIFO held across the socket, the reactor shards, and
    // the service queue, with no cross-connection bleed.
    for conn in 0..conns {
        for (i, want) in stream.final_costs.iter().enumerate() {
            let got = service
                .tenant_costs(conn_tenant(conn, i))
                .expect("tenant still open");
            assert_eq!(
                &got, want,
                "tenant {i} of connection {conn} did not drift into the generated final costs"
            );
        }
    }
    let stats = service.stats();
    let net = server.net_stats();
    server.shutdown();
    (elapsed, stats, net)
}

pub(super) fn t13(ctx: &ExpCtx) {
    const SEED: u64 = 1300;
    // The service behind the TCP front door: the t12 Zipf stream driven
    // through the wire codec and loopback sockets, swept across
    // concurrent connection counts (1 / 8 / 64 / 256) over the
    // event-driven reactor. At each count an untimed pass first replays
    // every connection against a sequential in-process reference and
    // asserts every answer byte-identical (canonical wire JSON) — only
    // then are the reps timed. stream_c1 minus t12's BENCH_service.json
    // is the wire overhead per request; stream_c64 / stream_c1 is the
    // multiplexing win of the reactor + batched flushes.
    let stream_cfg = StreamConfig {
        requests: ctx.profile.pick(384, 48),
        extra_instances: ctx.profile.pick(5, 2),
        n_crus: ctx.profile.pick(26, 12),
        seed: SEED,
        ..StreamConfig::default()
    };
    let stream = request_stream(&stream_cfg);
    let arcs = stream.arc_instances();
    let reps = ctx.profile.pick(5, 3);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(2, 4);
    let pre = precompute_stream(&stream, &arcs);
    let conn_counts = [1usize, 8, 64, 256];

    let mut table = CsvTable::new(
        "t13_net_stream",
        &[
            "conns",
            "requests_total",
            "total_ns",
            "req_per_sec",
            "saturation_parks",
            "writes",
            "frames_out",
            "solves",
            "frontiers",
            "deltas",
            "solve_p50_us",
            "solve_p99_us",
            "frontier_p99_us",
            "delta_p99_us",
        ],
    );
    let mut report = BenchReport::new(
        "net",
        "t13",
        "loopback TCP service throughput vs concurrent connection count under a Zipf request stream",
        ctx.profile.name(),
        SEED,
    );
    report.instance_sizes = stream
        .instances
        .iter()
        .map(|sc| sc.tree.len() as u64)
        .collect();
    report.param("requests_per_conn", stream.requests.len() as f64);
    report.param("zipf_milli", stream_cfg.zipf_milli as f64);
    report.param("workers", workers as f64);

    for &conns in &conn_counts {
        let total = conns * stream.requests.len();

        // Byte-identity gate at this connection count before any timing.
        let (_, vstats, _) = run_net_stream(&stream, &pre, conns, workers, true);
        assert_eq!(vstats.failed, 0, "verified stream must answer everything");
        assert_eq!(vstats.completed, total as u64);

        let mut samples = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps {
            let (ns, sstats, nstats) = run_net_stream(&stream, &pre, conns, workers, false);
            samples.push(ns);
            last = Some((sstats, nstats));
        }
        samples.sort_unstable();
        let ns = samples[samples.len() / 2];
        let (sstats, nstats) = last.expect("reps >= 1");
        let per_sec = total as f64 * 1e9 / ns.max(1) as f64;
        let lat = sstats.latency;
        let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
        table.row(&[
            conns.to_string(),
            total.to_string(),
            ns.to_string(),
            format!("{per_sec:.1}"),
            nstats.saturation_parks.to_string(),
            nstats.writes.to_string(),
            nstats.frames_out.to_string(),
            sstats.solves.to_string(),
            sstats.frontiers.to_string(),
            sstats.deltas.to_string(),
            us(lat.solve.p50_ns),
            us(lat.solve.p99_ns),
            us(lat.frontier.p99_ns),
            us(lat.delta.p99_ns),
        ]);
        report.metric(format!("stream_c{conns}"), total as u64, ns);
        // Per-kind accepted→answered latency, server side — the socket
        // and codec are outside these histograms, so a tail regression
        // here is the service's, while stream_c* absorbs the wire cost.
        for (kind, l) in [
            ("solve", lat.solve),
            ("frontier", lat.frontier),
            ("delta", lat.delta),
        ] {
            if l.count > 0 {
                report.metric_with_percentiles(
                    format!("lat_{kind}_c{conns}"),
                    l.count,
                    l.sum_ns.max(1),
                    l.p50_ns,
                    l.p99_ns,
                );
            }
        }
        report.param(
            format!("saturation_parks_c{conns}"),
            nstats.saturation_parks as f64,
        );
        report.param(format!("writes_c{conns}"), nstats.writes as f64);
        report.param(format!("frames_out_c{conns}"), nstats.frames_out as f64);
    }
    report.threads = workers;
    println!("{}", table.render_text());
    println!("shape check: every connection pipelines the whole stream in its own tenant");
    println!("namespace, so req/s is aggregate across connections and includes framing,");
    println!("the loopback sockets, and the reactor shards; frames_out/writes is the");
    println!("flush-coalescing ratio (higher = fewer syscalls per reply). The lat_*_c*");
    println!("histograms are the same accepted→answered clock as t12's, so stream_c1");
    println!("minus t12 at equal workers reads as the wire overhead per request.");
    println!("Every answer of each count's verification pass was byte-identical to the");
    println!("in-process replay of the identical request sequence (DESIGN.md §13, §15).");
    table.write_csv(ctx.out_dir).unwrap();
    ctx.emit(&report);
}

pub(super) fn t14(ctx: &ExpCtx) {
    const SEED: u64 = 1400;
    // The anytime portfolio under scale: instances from the paper's
    // ~30-CRU operating point up to 100× it, every request on the same
    // fixed budget. The portfolio always answers — the question is who
    // wins, how fast the first feasible answer lands, and how tight the
    // certified gap is when the deadline (not the exact arm) ends the
    // race. The control column races *exact alone* against the identical
    // deadline via its cancellation token, so "exact exceeds its
    // deadline" is measured, not inferred from a full-solve timing.
    let sizes: &[usize] = ctx
        .profile
        .pick(&[30, 100, 300, 1000, 3000][..], &[30, 100, 300][..]);
    const BASE: usize = 30;
    let budget = std::time::Duration::from_millis(25);
    let reps = ctx.profile.pick(3, 2);

    let mut table = CsvTable::new(
        "t14_portfolio",
        &[
            "n_crus",
            "scale_x",
            "first_answer_us",
            "winner",
            "gap_ppm",
            "upgrades",
            "exact_finished",
            "exact_only_us",
            "exact_in_budget",
        ],
    );
    let mut report = BenchReport::new(
        "portfolio",
        "t14",
        "anytime racing portfolio: time-to-first-answer and certified gap vs instance scale",
        ctx.profile.name(),
        SEED,
    );
    report.threads = PortfolioConfig::default().threads;
    report.param("budget_ms", budget.as_millis() as f64);

    for &n in sizes {
        // Fresh engine per size: every rep below must race, not replay a
        // cached frontier set, so rep seeds also differ per size.
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let portfolio = Portfolio::new(Arc::clone(&engine), PortfolioConfig::default());
        let mut firsts = Vec::with_capacity(reps);
        let mut last = None;
        for rep in 0..reps {
            let (tree, costs) = random_instance(
                &RandomTreeParams {
                    n_crus: n,
                    placement: Placement::Random,
                    ..RandomTreeParams::default()
                },
                SEED + 1000 * n as u64 + rep as u64,
            );
            let outcome = portfolio
                .solve_anytime(&tree, &costs, Lambda::HALF, budget)
                .expect("the portfolio answers every instance");
            firsts.push(outcome.time_to_first_ns);
            last = Some((outcome, tree, costs));
        }
        firsts.sort_unstable();
        let first_ns = firsts[firsts.len() / 2];
        let (outcome, tree, costs) = last.expect("reps >= 1");
        let answer = &outcome.answer;

        // Exact-only control on the last rep's instance: the same budget,
        // enforced by the exact solver's own cancellation token.
        let t0 = std::time::Instant::now();
        let prep = Prepared::new(&tree, &costs).expect("generated instances prepare");
        let token = CancelToken::with_deadline(std::time::Instant::now() + budget);
        let exact_only =
            FrontierSet::prepare_cancellable(&prep, &ExpandedConfig::default(), &token)
                .and_then(|fs| solve_with_frontiers(&prep, &fs, Lambda::HALF));
        let exact_ns = t0.elapsed().as_nanos() as u64;
        let exact_in_budget = exact_only.is_ok() && t0.elapsed() <= budget;

        let gap_ppm = answer.certificate.relative_gap() * 1e6;
        table.row(&[
            n.to_string(),
            format!("{:.0}", n as f64 / BASE as f64),
            format!("{:.1}", first_ns as f64 / 1e3),
            answer.winner.to_string(),
            format!("{gap_ppm:.0}"),
            outcome.upgrades.to_string(),
            answer.exact_finished.to_string(),
            format!("{:.1}", exact_ns as f64 / 1e3),
            exact_in_budget.to_string(),
        ]);
        report.instance_sizes.push(tree.len() as u64);
        report.metric(format!("first_answer_n{n}"), 1, first_ns.max(1));
        report.metric(format!("exact_only_n{n}"), 1, exact_ns.max(1));
        // Racy facts (who won, whether exact finished, the gap) are
        // params: trend tooling sees them, the perf gate does not.
        report.param(format!("gap_ppm_n{n}"), gap_ppm);
        report.param(
            format!("exact_finished_n{n}"),
            answer.exact_finished as u64 as f64,
        );
        report.param(
            format!("exact_in_budget_n{n}"),
            exact_in_budget as u64 as f64,
        );
    }
    println!("{}", table.render_text());
    println!("shape check: the portfolio's first answer stays inside the budget at every");
    println!("scale — the heuristic arms answer with a certified gap long after exact-only");
    println!("has blown the same deadline (exact_in_budget flips to false as n grows;");
    println!("at paper scale exact still wins outright and the gap is exactly zero).");
    table.write_csv(ctx.out_dir).unwrap();
    ctx.emit(&report);
}

pub(super) fn a1(ctx: &ExpCtx) {
    const SEED: u64 = 42;
    // The DESIGN.md §2 ablations, as a table: elimination rule `β ≥ B(P)`
    // (Figure 4 semantics) vs strict `β > B(P)`, and iterate-and-eliminate
    // vs the parametric threshold sweep, for both objectives.
    let params = LayeredParams {
        layers: ctx.profile.pick(8, 4),
        width: 4,
        extra_edges: 12,
        max_sigma: 1000,
        max_beta: 1000,
    };
    let gen = layered_dag(&params, SEED);
    let reps = ctx.profile.pick(7, 3);
    let mut table = CsvTable::new("a1_ablations", &["variant", "median_ns", "work"]);
    let strict = SsbConfig {
        rule: EliminationRule::Strict,
        ..SsbConfig::default()
    };
    let mut time = |name: &str, work: String, f: &mut dyn FnMut()| {
        let ns = time_median_ns(reps, f);
        table.row(&[name.to_string(), ns.to_string(), work]);
    };
    let mut g = gen.graph.clone();
    let base = ssb_search(&mut g, gen.source, gen.target, &SsbConfig::default());
    time(
        "ssb_rule_greater_equal",
        format!("{} iterations", base.iterations),
        &mut || {
            let mut g = gen.graph.clone();
            let out = ssb_search(&mut g, gen.source, gen.target, &SsbConfig::default());
            std::hint::black_box(out.iterations);
        },
    );
    let mut g = gen.graph.clone();
    let strict_out = ssb_search(&mut g, gen.source, gen.target, &strict);
    time(
        "ssb_rule_strict",
        format!("{} iterations", strict_out.iterations),
        &mut || {
            let mut g = gen.graph.clone();
            let out = ssb_search(&mut g, gen.source, gen.target, &strict);
            std::hint::black_box(out.iterations);
        },
    );
    let mut g = gen.graph.clone();
    let sweep = ssb_search_sweep(&mut g, gen.source, gen.target, Lambda::HALF);
    time("ssb_sweep", format!("{} probes", sweep.probes), &mut || {
        let mut g = gen.graph.clone();
        let out = ssb_search_sweep(&mut g, gen.source, gen.target, Lambda::HALF);
        std::hint::black_box(out.probes);
    });
    let mut g = gen.graph.clone();
    let sb = sb_search(&mut g, gen.source, gen.target);
    time(
        "sb_iterative",
        format!("{} iterations", sb.iterations),
        &mut || {
            let mut g = gen.graph.clone();
            let out = sb_search(&mut g, gen.source, gen.target);
            std::hint::black_box(out.iterations);
        },
    );
    let mut g = gen.graph.clone();
    let sb_sw = sb_search_sweep(&mut g, gen.source, gen.target);
    time("sb_sweep", format!("{} probes", sb_sw.probes), &mut || {
        let mut g = gen.graph.clone();
        let out = sb_search_sweep(&mut g, gen.source, gen.target);
        std::hint::black_box(out.probes);
    });
    println!("{}", table.render_text());
    println!("shape check: both elimination rules find the same optimum (asserted in");
    println!("hsa-graph's property suite); the sweep variants trade iterations for probes.");
    table.write_csv(ctx.out_dir).unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_keys_are_sanitised() {
        assert_eq!(metric_key("paper (fig 2)"), "paper__fig_2_");
        assert_eq!(metric_key("random-3"), "random_3");
    }

    #[test]
    fn paper_scenario_is_in_the_catalog() {
        // t10's report keys derive from catalog names; pin the invariant
        // that the catalog is non-empty and starts with the paper scenario.
        let cat = catalog();
        assert!(!cat.is_empty());
        let _ = hsa_workloads::paper_scenario();
    }
}
