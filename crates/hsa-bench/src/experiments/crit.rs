//! Criterion measurement bodies for the `benches/*.rs` targets.
//!
//! Each function here is one bench target's body, registered on its
//! experiment in [`super::REGISTRY`] and dispatched through
//! [`super::criterion_bench`] — so `cargo bench` and the repro harness
//! measure exactly one implementation, and `repro --list` enumerates what
//! `cargo bench` runs.

use criterion::{BenchmarkId, Criterion};
use hsa_assign::{BruteForce, Expanded, PaperSsb, Prepared, SbObjective, Solver};
use hsa_graph::dijkstra::shortest_path;
use hsa_graph::generate::{layered_dag, LayeredParams};
use hsa_graph::{
    sb_search, sb_search_sweep, ssb_search, ssb_search_sweep, Cost, EliminationRule, Lambda,
    SsbConfig,
};
use hsa_heuristics::{
    branch_and_bound, genetic, simulated_annealing, BnbConfig, GaConfig, SaConfig, TaskDag,
};
use hsa_sim::{simulate, simulate_periodic, SimConfig};
use hsa_workloads::{
    catalog, epilepsy_scenario, host_speed_sweep, random_instance, EpilepsyParams, Placement,
    RandomTreeParams,
};
use std::hint::black_box;

/// Bench F4: the SSB algorithm on the paper's Figure 4 graph (the
/// smallest meaningful workload — measures per-iteration overhead).
pub(super) fn ssb_fig4(c: &mut Criterion) {
    let (g, s, t) = hsa_graph::figures::fig4_graph();
    c.bench_function("ssb_fig4/full_search", |b| {
        b.iter(|| {
            let mut g2 = g.clone();
            let out = ssb_search(&mut g2, s, t, &SsbConfig::default());
            black_box(out.best.map(|x| x.ssb))
        })
    });
    c.bench_function("ssb_fig4/with_trace", |b| {
        let cfg = SsbConfig {
            record_trace: true,
            ..SsbConfig::default()
        };
        b.iter(|| {
            let mut g2 = g.clone();
            let out = ssb_search(&mut g2, s, t, &cfg);
            black_box(out.trace.len())
        })
    });
}

/// Bench T1: generic SSB runtime scaling over random layered DWGs — the
/// empirical counterpart of the paper's O(|V|²·|E|) claim (§4.2). Also
/// benchmarks the Dijkstra core and Bokhari's SB baseline on the same
/// graphs, so the per-iteration cost and the objective overhead separate.
pub(super) fn ssb_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssb_scaling");
    for (layers, width) in [(2usize, 2usize), (4, 4), (8, 4), (8, 8), (16, 8)] {
        let params = LayeredParams {
            layers,
            width,
            extra_edges: 3 * width,
            max_sigma: 1000,
            max_beta: 1000,
        };
        let gen = layered_dag(&params, 42);
        let label = format!("v{}_e{}", gen.graph.num_nodes(), gen.graph.num_edges());
        group.bench_with_input(BenchmarkId::new("ssb", &label), &gen, |b, gen| {
            b.iter(|| {
                let mut g = gen.graph.clone();
                let out = ssb_search(&mut g, gen.source, gen.target, &SsbConfig::default());
                black_box(out.iterations)
            })
        });
        group.bench_with_input(BenchmarkId::new("sb", &label), &gen, |b, gen| {
            b.iter(|| {
                let mut g = gen.graph.clone();
                let out = sb_search(&mut g, gen.source, gen.target);
                black_box(out.iterations)
            })
        });
        group.bench_with_input(BenchmarkId::new("dijkstra", &label), &gen, |b, gen| {
            b.iter(|| {
                black_box(shortest_path(&gen.graph, gen.source, gen.target).map(|p| p.s_weight))
            })
        });
    }
    group.finish();
}

/// Bench T2: the cost of the expansion machinery as colour interleaving
/// grows — the |E′| axis of the paper's O(|E′|) claim for the adapted
/// algorithm (§5.4).
pub(super) fn expansion_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("expansion_cost");
    for placement in [
        Placement::Blocked,
        Placement::Interleaved,
        Placement::Random,
    ] {
        for n in [10usize, 20] {
            let (tree, costs) = random_instance(
                &RandomTreeParams {
                    n_crus: n,
                    n_satellites: 3,
                    placement,
                    ..RandomTreeParams::default()
                },
                11,
            );
            let prep = Prepared::new(&tree, &costs).unwrap();
            let label = format!("{placement:?}_{n}");
            group.bench_with_input(BenchmarkId::new("paper_ssb", &label), &prep, |b, prep| {
                b.iter(|| black_box(PaperSsb::default().solve(prep, Lambda::HALF).unwrap().stats))
            });
            group.bench_with_input(BenchmarkId::new("expanded", &label), &prep, |b, prep| {
                b.iter(|| black_box(Expanded::default().solve(prep, Lambda::HALF).unwrap().stats))
            });
        }
    }
    group.finish();
}

/// Bench T3: solving for the paper's SSB objective vs Bokhari's SB
/// objective on the same instances (both via the shared colour frontiers).
pub(super) fn objective_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective_gap");
    for sc in catalog() {
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        group.bench_with_input(BenchmarkId::new("ssb", &sc.name), &prep, |b, prep| {
            b.iter(|| {
                black_box(
                    Expanded::default()
                        .solve(prep, Lambda::HALF)
                        .unwrap()
                        .objective,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sb", &sc.name), &prep, |b, prep| {
            b.iter(|| {
                black_box(
                    SbObjective::default()
                        .solve(prep, Lambda::HALF)
                        .unwrap()
                        .objective,
                )
            })
        });
    }
    group.finish();
}

/// Bench T4: simulator throughput — single frames under both timing
/// models, and the periodic-pipeline engine.
pub(super) fn sim_validate(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_validate");
    for sc in catalog() {
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let optimal = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        group.bench_with_input(
            BenchmarkId::new("paper_model", &sc.name),
            &(&prep, &optimal.cut),
            |b, (prep, cut)| {
                b.iter(|| {
                    black_box(
                        simulate(prep, cut, &SimConfig::paper_model())
                            .unwrap()
                            .end_to_end,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("eager", &sc.name),
            &(&prep, &optimal.cut),
            |b, (prep, cut)| {
                b.iter(|| black_box(simulate(prep, cut, &SimConfig::eager()).unwrap().end_to_end))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pipeline_100_frames", &sc.name),
            &(&prep, &optimal.cut),
            |b, (prep, cut)| {
                b.iter(|| {
                    black_box(
                        simulate_periodic(prep, cut, Cost::new(1_000_000), 100)
                            .unwrap()
                            .makespan,
                    )
                })
            },
        );
    }
    group.finish();
}

/// Bench T5: the three exact solvers (paper-SSB, full expansion, brute
/// force) against growing instance sizes — who pays what for exactness.
pub(super) fn solver_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_comparison");
    for n in [10usize, 20, 40, 80] {
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: n,
                n_satellites: 3,
                // Blocked placement keeps the faithful algorithm in its
                // polynomial regime at every size; the interleaved regime
                // is measured separately in `expansion_cost`.
                placement: Placement::Blocked,
                ..RandomTreeParams::default()
            },
            7,
        );
        let prep = Prepared::new(&tree, &costs).unwrap();
        group.bench_with_input(BenchmarkId::new("paper_ssb", n), &prep, |b, prep| {
            b.iter(|| {
                black_box(
                    PaperSsb::default()
                        .solve(prep, Lambda::HALF)
                        .unwrap()
                        .objective,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("expanded", n), &prep, |b, prep| {
            b.iter(|| {
                black_box(
                    Expanded::default()
                        .solve(prep, Lambda::HALF)
                        .unwrap()
                        .objective,
                )
            })
        });
        if n <= 20 {
            group.bench_with_input(BenchmarkId::new("brute_force", n), &prep, |b, prep| {
                b.iter(|| {
                    black_box(
                        BruteForce::default()
                            .solve(prep, Lambda::HALF)
                            .unwrap()
                            .objective,
                    )
                })
            });
        }
        // Preparation cost itself (colouring + labelling + dual graph).
        group.bench_with_input(
            BenchmarkId::new("prepare", n),
            &(&tree, &costs),
            |b, (t, m)| b.iter(|| black_box(Prepared::new(t, m).unwrap().graph.n_edges())),
        );
    }
    group.finish();
}

/// Bench T6: full solve pipeline across the heterogeneity sweep (prepare +
/// solve per host-speed point) — the cost of re-planning when the platform
/// changes.
pub(super) fn heterogeneity(c: &mut Criterion) {
    let base = epilepsy_scenario(&EpilepsyParams::default());
    let mut group = c.benchmark_group("heterogeneity");
    for (label, sc) in host_speed_sweep(&base) {
        group.bench_with_input(BenchmarkId::new("replan", &label), &sc, |b, sc| {
            b.iter(|| {
                let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
                black_box(
                    Expanded::default()
                        .solve(&prep, Lambda::HALF)
                        .unwrap()
                        .objective,
                )
            })
        });
    }
    group.finish();
}

/// Bench T7: the future-work solvers (B&B, GA, SA) on tree-derived DAGs —
/// runtime versus the polynomial tree-exact solver.
pub(super) fn heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristics");
    for n in [6usize, 8, 10] {
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: n,
                n_satellites: 2,
                placement: Placement::Random,
                ..RandomTreeParams::default()
            },
            3,
        );
        let dag = TaskDag::from_tree(&tree, &costs);
        group.bench_with_input(BenchmarkId::new("bnb", n), &dag, |b, dag| {
            b.iter(|| {
                black_box(
                    branch_and_bound(dag, &BnbConfig::default())
                        .unwrap()
                        .makespan,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("ga", n), &dag, |b, dag| {
            let cfg = GaConfig {
                generations: 40,
                population: 30,
                ..GaConfig::default()
            };
            b.iter(|| black_box(genetic(dag, &cfg).unwrap().makespan))
        });
        group.bench_with_input(BenchmarkId::new("sa", n), &dag, |b, dag| {
            let cfg = SaConfig {
                iterations: 1_000,
                ..SaConfig::default()
            };
            b.iter(|| black_box(simulated_annealing(dag, &cfg).unwrap().makespan))
        });
        let prep_input = (tree.clone(), costs.clone());
        group.bench_with_input(
            BenchmarkId::new("tree_exact", n),
            &prep_input,
            |b, (t, m)| {
                b.iter(|| {
                    let prep = Prepared::new(t, m).unwrap();
                    black_box(
                        Expanded::default()
                            .solve(&prep, Lambda::HALF)
                            .unwrap()
                            .objective,
                    )
                })
            },
        );
    }
    group.finish();
}

/// Bench A1: ablations for the design choices DESIGN.md §2 records —
/// elimination rule `β ≥ B(P)` (Figure 4 semantics) vs the prose's strict
/// `β > B(P)`, and iterate-and-eliminate (the paper) vs the parametric
/// threshold sweep for both objectives.
pub(super) fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    for (layers, width) in [(4usize, 4usize), (8, 8)] {
        let params = LayeredParams {
            layers,
            width,
            extra_edges: 3 * width,
            max_sigma: 1000,
            max_beta: 1000,
        };
        let gen = layered_dag(&params, 42);
        let label = format!("v{}_e{}", gen.graph.num_nodes(), gen.graph.num_edges());

        group.bench_with_input(
            BenchmarkId::new("ssb_rule_greater_equal", &label),
            &gen,
            |b, gen| {
                b.iter(|| {
                    let mut g = gen.graph.clone();
                    black_box(
                        ssb_search(&mut g, gen.source, gen.target, &SsbConfig::default())
                            .iterations,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ssb_rule_strict", &label),
            &gen,
            |b, gen| {
                let cfg = SsbConfig {
                    rule: EliminationRule::Strict,
                    ..SsbConfig::default()
                };
                b.iter(|| {
                    let mut g = gen.graph.clone();
                    black_box(ssb_search(&mut g, gen.source, gen.target, &cfg).iterations)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("ssb_sweep", &label), &gen, |b, gen| {
            b.iter(|| {
                let mut g = gen.graph.clone();
                black_box(ssb_search_sweep(&mut g, gen.source, gen.target, Lambda::HALF).probes)
            })
        });
        group.bench_with_input(BenchmarkId::new("sb_iterative", &label), &gen, |b, gen| {
            b.iter(|| {
                let mut g = gen.graph.clone();
                black_box(sb_search(&mut g, gen.source, gen.target).iterations)
            })
        });
        group.bench_with_input(BenchmarkId::new("sb_sweep", &label), &gen, |b, gen| {
            b.iter(|| {
                let mut g = gen.graph.clone();
                black_box(sb_search_sweep(&mut g, gen.source, gen.target).probes)
            })
        });
    }
    group.finish();
}

/// Bench T12 hot client (DESIGN.md §12): the per-request floor a warm
/// service rides. `prepare_cold` is the full miss work (owned prepare +
/// per-colour frontiers), `prepare_hit` the hashed re-prepare with its
/// first-contact equality check, `instance_lookup` the raw sharded-cache
/// read, and `solve_by_id` the whole id-addressed answer (lookup +
/// λ-sweep + walk-free evaluation).
pub(super) fn prepare_hot(c: &mut Criterion) {
    use hsa_assign::{ExpandedConfig, FrontierSet};
    use hsa_engine::{Engine, EngineConfig};
    let mut group = c.benchmark_group("prepare_hot");
    for &n in &[16usize, 64] {
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: n,
                ..RandomTreeParams::default()
            },
            4242,
        );
        let engine = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let id = engine.prepare(&tree, &costs).expect("instance prepares");
        let label = format!("n{n}");
        group.bench_function(format!("prepare_cold/{label}"), |b| {
            b.iter(|| {
                let prep = Prepared::new_owned(tree.clone(), costs.clone()).unwrap();
                let fs = FrontierSet::prepare(&prep, &ExpandedConfig::default()).unwrap();
                black_box(&fs);
            })
        });
        group.bench_function(format!("prepare_hit/{label}"), |b| {
            b.iter(|| black_box(engine.prepare(&tree, &costs).unwrap()))
        });
        group.bench_function(format!("instance_lookup/{label}"), |b| {
            b.iter(|| black_box(engine.instance(id).is_some()))
        });
        group.bench_function(format!("solve_by_id/{label}"), |b| {
            b.iter(|| {
                let out = engine.solve_batch(&[(id, Lambda::HALF)]);
                black_box(out[0].as_ref().unwrap().objective)
            })
        });
    }
    group.finish();
}
