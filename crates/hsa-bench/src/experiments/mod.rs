//! The central experiment registry: every figure reproduction, every
//! quantitative study and every criterion bench target of this workspace,
//! as one named, enumerable, reproducible catalog.
//!
//! One [`Experiment`] entry carries everything the harness needs:
//!
//! * a stable **id** (`f4`, `t5`, …) — what `repro --exp` dispatches on;
//! * the **artefacts** it emits under the output directory (CSV tables
//!   and, for perf-tracked experiments, a schema-versioned
//!   `BENCH_<name>.json` — see [`crate::report`]);
//! * its **paper reference**, so EXPERIMENTS.md's id ↔ artefact ↔ section
//!   table is generated from this registry ([`markdown_table`]) instead of
//!   drifting by hand;
//! * an optional **criterion body** — the nine `benches/*.rs` targets are
//!   thin shims over [`criterion_bench`], so `cargo bench` and `repro`
//!   measure one and the same code.
//!
//! Experiments run under a [`Profile`]: `Full` is the paper-faithful
//! workload, `Quick` a shrunk one for CI and the perf gate (same code
//! path, smaller instances — the profile is recorded inside every emitted
//! report so the gate never compares across workload shapes).

use crate::report::BenchReport;
use criterion::Criterion;
use std::path::Path;

mod crit;
mod figures;
mod studies;

/// Workload size: the paper-faithful matrix or the shrunk CI variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Profile {
    /// The full experiment matrix (default for `repro`).
    Full,
    /// Shrunk instances and fewer repetitions — same code path, suitable
    /// for CI runners and the perf gate.
    Quick,
}

impl Profile {
    /// The name recorded in emitted reports (`"full"` / `"quick"`).
    pub fn name(self) -> &'static str {
        match self {
            Profile::Full => "full",
            Profile::Quick => "quick",
        }
    }

    /// Selects the profile-appropriate value.
    pub fn pick<T>(self, full: T, quick: T) -> T {
        match self {
            Profile::Full => full,
            Profile::Quick => quick,
        }
    }
}

/// Everything an experiment's run function needs.
#[derive(Clone, Copy, Debug)]
pub struct ExpCtx<'a> {
    /// Directory artefacts are written under (created if missing).
    pub out_dir: &'a Path,
    /// Active workload profile.
    pub profile: Profile,
}

impl<'a> ExpCtx<'a> {
    /// Builds a context.
    pub fn new(out_dir: &'a Path, profile: Profile) -> ExpCtx<'a> {
        ExpCtx { out_dir, profile }
    }

    /// Writes a finished report under the output directory and prints the
    /// artefact path — the one funnel every BENCH artefact goes through.
    pub fn emit(&self, report: &BenchReport) {
        let path = report.write_json(self.out_dir).expect("write BENCH json");
        println!("bench artefact: {}", path.display());
    }
}

/// One registered experiment.
pub struct Experiment {
    /// Stable id (`f2`…`f9`, `t1`…`t14`, `a1`).
    pub id: &'static str,
    /// Human-readable one-line title.
    pub title: &'static str,
    /// Paper section (or DESIGN.md section) the experiment reproduces.
    pub paper_ref: &'static str,
    /// Files emitted under the output directory.
    pub artefacts: &'static [&'static str],
    /// The `BENCH_*.json` artefact, when this experiment is perf-tracked.
    pub bench_artefact: Option<&'static str>,
    /// Runs the experiment, writing its artefacts.
    pub run: fn(&ExpCtx),
    /// The criterion measurement body, when a `benches/*.rs` target wraps
    /// this experiment.
    pub criterion: Option<fn(&mut Criterion)>,
}

/// The registry. Order is presentation order (`repro --list`, `--all`).
pub static REGISTRY: &[Experiment] = &[
    Experiment {
        id: "f2",
        title: "Figure 2 — the CRU tree with pinned sensors",
        paper_ref: "§1, Fig. 2",
        artefacts: &[],
        bench_artefact: None,
        run: figures::f2,
        criterion: None,
    },
    Experiment {
        id: "f4",
        title: "Figure 3/4 — the SSB algorithm's worked trace",
        paper_ref: "§4, Fig. 3–4",
        artefacts: &["f4_ssb_trace.csv"],
        bench_artefact: None,
        run: figures::f4,
        criterion: Some(crit::ssb_fig4),
    },
    Experiment {
        id: "f5",
        title: "Figure 5 — colouring and host-forced CRUs",
        paper_ref: "§5.1, Fig. 5",
        artefacts: &["f5_colouring.csv"],
        bench_artefact: None,
        run: figures::f5,
        criterion: None,
    },
    Experiment {
        id: "f6",
        title: "Figure 6 — the coloured assignment graph",
        paper_ref: "§5.2, Fig. 6",
        artefacts: &["f6_assignment_graph.csv"],
        bench_artefact: None,
        run: figures::f6,
        criterion: None,
    },
    Experiment {
        id: "f8",
        title: "Figure 8 — σ (host time) labelling",
        paper_ref: "§5.3, Fig. 8",
        artefacts: &["f8_sigma_labels.csv"],
        bench_artefact: None,
        run: figures::f8,
        criterion: None,
    },
    Experiment {
        id: "f9",
        title: "Figure 9/10 — expansion & branching events",
        paper_ref: "§5.4, Fig. 9–10",
        artefacts: &["f9_expansion_events.csv"],
        bench_artefact: None,
        run: figures::f9,
        criterion: None,
    },
    Experiment {
        id: "t1",
        title: "T1 — generic SSB runtime vs |V|,|E| (O(|V|²|E|) claim)",
        paper_ref: "§4.2",
        artefacts: &["t1_ssb_scaling.csv", "BENCH_ssb_scaling.json"],
        bench_artefact: Some("BENCH_ssb_scaling.json"),
        run: studies::t1,
        criterion: Some(crit::ssb_scaling),
    },
    Experiment {
        id: "t2",
        title: "T2 — expanded graph size |E′| and adapted-algorithm work",
        paper_ref: "§5.4",
        artefacts: &["t2_expansion_cost.csv", "BENCH_expansion.json"],
        bench_artefact: Some("BENCH_expansion.json"),
        run: studies::t2,
        criterion: Some(crit::expansion_cost),
    },
    Experiment {
        id: "t3",
        title: "T3 — SSB objective vs Bokhari's SB objective",
        paper_ref: "§2",
        artefacts: &["t3_objective_gap.csv"],
        bench_artefact: None,
        run: studies::t3,
        criterion: Some(crit::objective_gap),
    },
    Experiment {
        id: "t4",
        title: "T4 — simulator vs analytic model (and eager ablation)",
        paper_ref: "§3",
        artefacts: &["t4_sim_validation.csv"],
        bench_artefact: None,
        run: studies::t4,
        criterion: Some(crit::sim_validate),
    },
    Experiment {
        id: "t5",
        title: "T5 — exact solvers: agreement and runtime vs n",
        paper_ref: "§5.5",
        artefacts: &["t5_solver_comparison.csv", "BENCH_solver_comparison.json"],
        bench_artefact: Some("BENCH_solver_comparison.json"),
        run: studies::t5,
        criterion: Some(crit::solver_comparison),
    },
    Experiment {
        id: "t6",
        title: "T6 — heterogeneity sweep: when does offloading win?",
        paper_ref: "§1",
        artefacts: &["t6_heterogeneity.csv"],
        bench_artefact: None,
        run: studies::t6,
        criterion: Some(crit::heterogeneity),
    },
    Experiment {
        id: "t7",
        title: "T7 — future-work heuristics vs exact optimum",
        paper_ref: "§6",
        artefacts: &["t7_heuristics.csv"],
        bench_artefact: None,
        run: studies::t7,
        criterion: Some(crit::heuristics),
    },
    Experiment {
        id: "t8",
        title: "T8 — epilepsy tele-monitoring end-to-end",
        paper_ref: "§1 (motivating scenario)",
        artefacts: &["t8_epilepsy.csv"],
        bench_artefact: None,
        run: studies::t8,
        criterion: None,
    },
    Experiment {
        id: "t9",
        title: "T9 — engine batch throughput: batched+cached vs naive per-call",
        paper_ref: "DESIGN.md §7",
        artefacts: &["t9_engine_throughput.csv", "BENCH_engine.json"],
        bench_artefact: Some("BENCH_engine.json"),
        run: studies::t9,
        criterion: None,
    },
    Experiment {
        id: "t10",
        title: "T10 — λ-frontier envelope: one-pass frontier vs per-λ solve grid",
        paper_ref: "DESIGN.md §7",
        artefacts: &["t10_lambda_frontier.csv", "BENCH_frontier.json"],
        bench_artefact: Some("BENCH_frontier.json"),
        run: studies::t10,
        criterion: None,
    },
    Experiment {
        id: "t11",
        title: "T11 — incremental re-solve (Session) vs from-scratch on drifting instances",
        paper_ref: "DESIGN.md §9",
        artefacts: &["t11_incremental.csv", "BENCH_incremental.json"],
        bench_artefact: Some("BENCH_incremental.json"),
        run: studies::t11,
        criterion: None,
    },
    Experiment {
        id: "t12",
        title: "T12 — service throughput & hit-rate vs workers under a Zipf request stream",
        paper_ref: "DESIGN.md §10",
        artefacts: &["t12_service_stream.csv", "BENCH_service.json"],
        bench_artefact: Some("BENCH_service.json"),
        run: studies::t12,
        criterion: Some(crit::prepare_hot),
    },
    Experiment {
        id: "t13",
        title: "T13 — loopback TCP service: wire overhead & throughput vs concurrent connections",
        paper_ref: "DESIGN.md §13, §15",
        artefacts: &["t13_net_stream.csv", "BENCH_net.json"],
        bench_artefact: Some("BENCH_net.json"),
        run: studies::t13,
        criterion: None,
    },
    Experiment {
        id: "t14",
        title: "T14 — anytime portfolio: time-to-first-answer & certified gap vs instance scale",
        paper_ref: "DESIGN.md §14",
        artefacts: &["t14_portfolio.csv", "BENCH_portfolio.json"],
        bench_artefact: Some("BENCH_portfolio.json"),
        run: studies::t14,
        criterion: None,
    },
    Experiment {
        id: "a1",
        title: "A1 — ablations: elimination rule and iterate-vs-sweep",
        paper_ref: "DESIGN.md §2",
        artefacts: &["a1_ablations.csv"],
        bench_artefact: None,
        run: studies::a1,
        criterion: Some(crit::ablations),
    },
];

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<&'static Experiment> {
    REGISTRY.iter().find(|e| e.id == id)
}

/// All registered ids, in presentation order.
pub fn ids() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.id).collect()
}

/// Runs one experiment by id.
pub fn run(id: &str, ctx: &ExpCtx) -> Result<(), String> {
    let exp = find(id).ok_or_else(|| format!("unknown experiment id `{id}`"))?;
    std::fs::create_dir_all(ctx.out_dir).map_err(|e| e.to_string())?;
    (exp.run)(ctx);
    Ok(())
}

/// Dispatches a `benches/*.rs` target onto its registry entry's criterion
/// body.
///
/// # Panics
/// Panics when `id` is unknown or carries no criterion body — a bench
/// target pointing at nothing is a wiring bug, not a runtime condition.
pub fn criterion_bench(id: &str, c: &mut Criterion) {
    let exp = find(id).unwrap_or_else(|| panic!("unknown experiment id `{id}`"));
    let body = exp
        .criterion
        .unwrap_or_else(|| panic!("experiment `{id}` has no criterion body"));
    body(c);
}

/// The default criterion configuration every bench target runs under.
pub fn criterion_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

/// Generates EXPERIMENTS.md's experiment-id ↔ artefact ↔ paper-section
/// table from the registry (also printed by `repro --table`).
pub fn markdown_table() -> String {
    let mut out = String::new();
    out.push_str("| Id | Experiment | Paper ref | Artefacts | Perf-gated |\n");
    out.push_str("|---|---|---|---|---|\n");
    for e in REGISTRY {
        let artefacts = if e.artefacts.is_empty() {
            "*(stdout only)*".to_string()
        } else {
            e.artefacts
                .iter()
                .map(|a| format!("`{a}`"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            e.id,
            e.title.replace('|', "\\|"),
            e.paper_ref,
            artefacts,
            if e.bench_artefact.is_some() {
                "✅"
            } else {
                ""
            }
        ));
    }
    out
}

/// Renders the measured metrics of every perf-tracked artefact found
/// under `dir` as a markdown table, with per-op mean and — when the
/// artefact carries them — p50/p99 columns (dash when absent, so
/// pre-percentile artefacts still render). Returns `None` when `dir`
/// holds no readable bench artefact at all.
pub fn metrics_table(dir: &Path) -> Option<String> {
    let fmt = |v: Option<f64>| match v {
        Some(ns) => format!("{:.1}", ns / 1000.0),
        None => "-".to_string(),
    };
    let mut out = String::new();
    out.push_str("| Id | Metric | ns/op | p50 (µs) | p99 (µs) |\n");
    out.push_str("|---|---|---|---|---|\n");
    let mut any = false;
    for e in REGISTRY {
        let Some(bench) = e.bench_artefact else {
            continue;
        };
        let Ok(report) = BenchReport::load(&dir.join(bench)) else {
            continue;
        };
        any = true;
        for m in &report.metrics {
            out.push_str(&format!(
                "| {} | {} | {:.0} | {} | {} |\n",
                e.id,
                m.name,
                m.ns_per_op,
                fmt(m.p50_ns),
                fmt(m.p99_ns),
            ));
        }
    }
    any.then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let mut seen = std::collections::BTreeSet::new();
        for e in REGISTRY {
            assert!(seen.insert(e.id), "duplicate id {}", e.id);
            assert_eq!(find(e.id).unwrap().id, e.id);
        }
        assert!(find("zz").is_none());
    }

    #[test]
    fn bench_artefacts_are_listed_among_artefacts() {
        for e in REGISTRY {
            if let Some(bench) = e.bench_artefact {
                assert!(
                    e.artefacts.contains(&bench),
                    "{}: bench artefact {bench} missing from artefact list",
                    e.id
                );
                assert!(bench.starts_with("BENCH_") && bench.ends_with(".json"));
            }
        }
    }

    #[test]
    fn at_least_five_experiments_are_perf_tracked() {
        let tracked = REGISTRY
            .iter()
            .filter(|e| e.bench_artefact.is_some())
            .count();
        assert!(tracked >= 5, "only {tracked} perf-tracked experiments");
    }

    #[test]
    fn markdown_table_names_every_experiment() {
        let table = markdown_table();
        for e in REGISTRY {
            assert!(table.contains(e.id), "table misses {}", e.id);
        }
        assert!(table.contains("BENCH_engine.json"));
    }

    #[test]
    fn metrics_table_renders_percentiles_and_dashes() {
        let dir = std::env::temp_dir().join("hsa-bench-metrics-table-test");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(metrics_table(&dir).is_none(), "empty dir has no table");
        // A mixed artefact: one pre-percentile metric, one instrumented.
        let mut r = BenchReport::new("engine", "t9", "test", "quick", 1);
        r.metric("plain", 10, 20_000);
        r.metric_with_percentiles("tail", 10, 20_000, 1_500, 9_000);
        r.write_json(&dir).unwrap();
        let table = metrics_table(&dir).expect("one artefact renders");
        assert!(table.contains("| t9 | plain | 2000 | - | - |"), "{table}");
        assert!(
            table.contains("| t9 | tail | 2000 | 1.5 | 9.0 |"),
            "{table}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_id_is_an_error() {
        let dir = std::env::temp_dir().join("hsa-bench-registry-test");
        let ctx = ExpCtx::new(&dir, Profile::Quick);
        assert!(run("zz", &ctx).is_err());
    }
}
