//! Figure reproductions (`f2`–`f9`): the paper's worked examples, printed
//! and written as CSV. Profile-independent — these are exact artefacts,
//! not measurements.

use super::ExpCtx;
use crate::CsvTable;
use hsa_assign::{solve_with_trace, BruteForce, PaperSsbConfig, Prepared, Solver, SsbEvent};
use hsa_graph::{ssb_search, Lambda, SsbConfig};
use hsa_tree::figures::fig2_tree;
use hsa_tree::render::render_tree;
use hsa_tree::{Colour, TreeEdge};
use hsa_workloads::{paper_scenario, random_instance, Placement, RandomTreeParams};

pub(super) fn f2(_ctx: &ExpCtx) {
    let sc = paper_scenario();
    let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
    println!(
        "{}",
        render_tree(&sc.tree, Some(&sc.costs), Some(&prep.colouring))
    );
    let leaves: Vec<String> = sc
        .tree
        .leaves_in_order()
        .iter()
        .map(|&l| {
            format!(
                "{}→{}",
                sc.tree.node_unchecked(l).name,
                sc.costs.pinned_satellite(l).unwrap()
            )
        })
        .collect();
    println!("leaf order and pinning: {}", leaves.join(", "));
    println!("(satellite B = Sat2 serves sensors under both CRU2 and CRU3 —");
    println!(" the paper's 'some sensors are physically linked to the same satellite')");
}

pub(super) fn f4(ctx: &ExpCtx) {
    let (mut g, s, t) = hsa_graph::figures::fig4_graph();
    let cfg = SsbConfig {
        record_trace: true,
        ..SsbConfig::default()
    };
    let run = ssb_search(&mut g, s, t, &cfg);
    let mut table = CsvTable::new(
        "f4_ssb_trace",
        &[
            "iteration",
            "S",
            "B",
            "SSB",
            "candidate_updated",
            "edges_removed",
        ],
    );
    for (i, it) in run.trace.iter().enumerate() {
        table.row(&[
            (i + 1).to_string(),
            it.s.to_string(),
            it.b.to_string(),
            it.ssb.to_string(),
            it.improved.to_string(),
            it.removed.len().to_string(),
        ]);
    }
    println!("{}", table.render_text());
    let best = run.best.unwrap();
    println!(
        "optimal SSB path: S={} B={} SSB={}   [paper: <5,10>-<5,10>, SSB weight 20]",
        best.s, best.b, best.ssb
    );
    println!(
        "iterations: {}   [paper: three iterations, terminating at S weight 33]",
        run.iterations
    );
    assert_eq!(best.ssb, 20, "Figure 4 reproduction regressed");
    table.write_csv(ctx.out_dir).unwrap();
}

pub(super) fn f5(ctx: &ExpCtx) {
    let (tree, costs) = fig2_tree();
    let prep = Prepared::new(&tree, &costs).unwrap();
    let mut table = CsvTable::new("f5_colouring", &["edge", "colour"]);
    for c in tree.preorder() {
        if c == tree.root() {
            continue;
        }
        let col = match prep.colouring.edge_colour(TreeEdge::Parent(c)) {
            Colour::Conflict => "CONFLICT".to_string(),
            Colour::Satellite(s) => ["R", "Y", "B", "G"][s.index()].to_string(),
        };
        table.row(&[
            format!(
                "<{},{}>",
                tree.node_unchecked(tree.parent(c).unwrap()).name,
                tree.node_unchecked(c).name
            ),
            col,
        ]);
    }
    println!("{}", table.render_text());
    let forced: Vec<&str> = prep
        .colouring
        .host_forced
        .iter()
        .map(|&c| tree.node_unchecked(c).name.as_str())
        .collect();
    println!(
        "host-forced CRUs: {:?}   [paper: CRU1, CRU2 and CRU3 have to be deployed on the host]",
        forced
    );
    assert_eq!(forced, ["CRU1", "CRU2", "CRU3"]);
    table.write_csv(ctx.out_dir).unwrap();
}

pub(super) fn f6(ctx: &ExpCtx) {
    let (tree, costs) = fig2_tree();
    let prep = Prepared::new(&tree, &costs).unwrap();
    let g = &prep.graph;
    println!(
        "assignment graph: {} nodes (S, {} gaps, T), {} coloured edges",
        g.dwg.num_nodes(),
        g.n_leaves - 1,
        g.n_edges()
    );
    let mut table = CsvTable::new(
        "f6_assignment_graph",
        &[
            "dual_edge",
            "crosses",
            "colour",
            "from_gap",
            "to_gap",
            "sigma",
            "beta",
        ],
    );
    for (i, meta) in g.edges.iter().enumerate() {
        table.row(&[
            format!("e{i}"),
            meta.tree_edge.to_string(),
            ["R", "Y", "B", "G"][meta.colour.index()].to_string(),
            meta.from_gap.to_string(),
            meta.to_gap.to_string(),
            meta.sigma.to_string(),
            meta.beta.to_string(),
        ]);
    }
    println!("{}", table.render_text());
    println!("conflicted tree edges <CRU1,CRU2>, <CRU1,CRU3> are absent — they can never be cut.");
    table.write_csv(ctx.out_dir).unwrap();
}

pub(super) fn f8(ctx: &ExpCtx) {
    let (tree, costs) = fig2_tree();
    let prep = Prepared::new(&tree, &costs).unwrap();
    use hsa_tree::figures::cru;
    let named: Vec<(TreeEdge, &str)> = vec![
        (TreeEdge::Parent(cru(2)), "h1"),
        (TreeEdge::Parent(cru(4)), "h1+h2"),
        (TreeEdge::Sensor(cru(9)), "h1+h2+h4+h9"),
        (TreeEdge::Sensor(cru(10)), "h10"),
        (TreeEdge::Parent(cru(3)), "0"),
        (TreeEdge::Parent(cru(6)), "h3"),
        (TreeEdge::Sensor(cru(13)), "h3+h6+h13"),
        (TreeEdge::Sensor(cru(7)), "h7"),
        (TreeEdge::Sensor(cru(8)), "h8"),
    ];
    let mut table = CsvTable::new("f8_sigma_labels", &["edge", "paper_label", "sigma_ticks"]);
    for (e, label) in named {
        table.row(&[
            e.to_string(),
            label.to_string(),
            prep.sigma.sigma(e).to_string(),
        ]);
    }
    println!("{}", table.render_text());
    println!("(h_k = 10+k ticks in the canonical cost model; every label matches symbolically —");
    println!(" asserted by hsa-tree's figure8_labels test)");
    table.write_csv(ctx.out_dir).unwrap();
}

pub(super) fn f9(ctx: &ExpCtx) {
    // The interleaved instance forces both expansion and joint branching.
    let (tree, costs) = random_instance(
        &RandomTreeParams {
            n_crus: 14,
            n_satellites: 2,
            placement: Placement::Interleaved,
            ..RandomTreeParams::default()
        },
        5,
    );
    let prep = Prepared::new(&tree, &costs).unwrap();
    println!(
        "instance: 14 CRUs, 2 satellites, interleaved placement (colours in {} bands)",
        prep.colouring.bands.len()
    );
    let cfg = PaperSsbConfig {
        record_trace: true,
        ..PaperSsbConfig::default()
    };
    let (sol, trace) = solve_with_trace(&prep, Lambda::HALF, &cfg).unwrap();
    let mut table = CsvTable::new("f9_expansion_events", &["event", "detail"]);
    for ev in &trace {
        let (kind, detail) = match ev {
            SsbEvent::Iteration {
                s,
                b,
                ssb,
                improved,
                removed,
            } => (
                "iteration",
                format!("S={s} B={b} SSB={ssb} improved={improved} removed={removed}"),
            ),
            SsbEvent::Expansion {
                colour,
                bands,
                composites,
            } => (
                "expansion",
                format!("colour={colour} bands={bands} composites={composites}"),
            ),
            SsbEvent::Branch { colour, combos } => {
                ("branch", format!("colour={colour} joint_combos={combos}"))
            }
        };
        table.row(&[kind.to_string(), detail]);
    }
    println!("{}", table.render_text());
    let brute = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
    println!(
        "result: delay {} (brute force agrees: {}); expansions={} composites={} branches={}",
        sol.delay(),
        brute.delay(),
        sol.stats.expansions,
        sol.stats.composites,
        sol.stats.branches
    );
    assert_eq!(sol.objective, brute.objective);
    table.write_csv(ctx.out_dir).unwrap();
}
