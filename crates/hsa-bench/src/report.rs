//! Machine-readable benchmark artefacts: the schema behind every
//! `BENCH_<name>.json` file the experiment harness emits.
//!
//! One experiment run produces one [`BenchReport`]: a named, seeded,
//! schema-versioned record of what was measured (instance sizes, thread
//! count, per-metric wall times) and where (an [`EnvFingerprint`] of the
//! machine). Reports are diffable run to run and are the unit the perf
//! gate ([`crate::gate`]) compares against committed baselines.
//!
//! The schema is deliberately boring: flat fields, derived `ns_per_op` /
//! `per_sec` numbers materialised at construction so a human reading the
//! JSON never has to divide, and a `schema_version` bumped on any breaking
//! shape change so stale baselines fail loudly instead of comparing
//! apples to oranges.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Version of the `BENCH_*.json` shape. Bump on breaking changes; the gate
/// refuses to compare reports across versions.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Where a report was measured: enough environment to interpret (and
/// distrust) absolute numbers when two machines are compared.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvFingerprint {
    /// Workspace package version (`CARGO_PKG_VERSION` of hsa-bench).
    pub package_version: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Logical CPUs available to the process.
    pub cpus: usize,
    /// True when the binary was built with debug assertions (a debug-build
    /// report must never be gated against a release baseline).
    pub debug_assertions: bool,
}

impl EnvFingerprint {
    /// Captures the current process environment.
    pub fn capture() -> EnvFingerprint {
        EnvFingerprint {
            package_version: env!("CARGO_PKG_VERSION").to_string(),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            debug_assertions: cfg!(debug_assertions),
        }
    }
}

/// One measured quantity: `ops` operations took `total_ns` nanoseconds
/// (median over repetitions; see [`crate::time_median_ns`]).
///
/// Latency-instrumented metrics additionally carry per-op `p50_ns` /
/// `p99_ns` tail percentiles. The fields are optional and *omitted from
/// the JSON when absent* (serde is hand-written below for exactly that
/// reason), so schema v1 artefacts written before percentiles existed
/// still load — and the gate can tell "never measured" from "stopped
/// measuring".
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Metric name, unique within its report (e.g. `"expanded_n40"`).
    pub name: String,
    /// Operations covered by `total_ns` (1 for single-shot measurements).
    pub ops: u64,
    /// Median wall time for the whole `ops` batch, nanoseconds.
    pub total_ns: u64,
    /// Derived: `total_ns / ops`.
    pub ns_per_op: f64,
    /// Derived: operations per second.
    pub per_sec: f64,
    /// Optional per-op median latency, nanoseconds.
    pub p50_ns: Option<f64>,
    /// Optional per-op 99th-percentile latency, nanoseconds.
    pub p99_ns: Option<f64>,
}

impl Metric {
    /// Builds a metric, materialising the derived rates.
    pub fn new(name: impl Into<String>, ops: u64, total_ns: u64) -> Metric {
        let ops = ops.max(1);
        let ns = total_ns.max(1);
        Metric {
            name: name.into(),
            ops,
            total_ns,
            ns_per_op: ns as f64 / ops as f64,
            per_sec: ops as f64 * 1e9 / ns as f64,
            p50_ns: None,
            p99_ns: None,
        }
    }

    /// Attaches tail-latency percentiles (per-op nanoseconds, clamped to
    /// ≥ 1 so validation and gate ratios stay well-defined).
    pub fn with_percentiles(mut self, p50_ns: u64, p99_ns: u64) -> Metric {
        self.p50_ns = Some(p50_ns.max(1) as f64);
        self.p99_ns = Some(p99_ns.max(1) as f64);
        self
    }
}

// Hand-written (not derived): the vendored derive would emit `p50_ns`/
// `p99_ns` as JSON `null` and *require* the keys on load, breaking every
// pre-percentile artefact. Here absent and `null` both read back as
// `None`, and `None` writes no key at all.
impl Serialize for Metric {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("name".to_string(), self.name.to_value()),
            ("ops".to_string(), self.ops.to_value()),
            ("total_ns".to_string(), self.total_ns.to_value()),
            ("ns_per_op".to_string(), self.ns_per_op.to_value()),
            ("per_sec".to_string(), self.per_sec.to_value()),
        ];
        if let Some(p) = self.p50_ns {
            entries.push(("p50_ns".to_string(), p.to_value()));
        }
        if let Some(p) = self.p99_ns {
            entries.push(("p99_ns".to_string(), p.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for Metric {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::DeError::custom("expected a map for Metric"))?;
        let optional = |name: &str| -> Result<Option<f64>, serde::DeError> {
            match entries.iter().find(|(k, _)| k == name) {
                None => Ok(None),
                Some((_, value)) => Option::<f64>::from_value(value),
            }
        };
        Ok(Metric {
            name: String::from_value(serde::value::field(entries, "name")?)?,
            ops: u64::from_value(serde::value::field(entries, "ops")?)?,
            total_ns: u64::from_value(serde::value::field(entries, "total_ns")?)?,
            ns_per_op: f64::from_value(serde::value::field(entries, "ns_per_op")?)?,
            per_sec: f64::from_value(serde::value::field(entries, "per_sec")?)?,
            p50_ns: optional("p50_ns")?,
            p99_ns: optional("p99_ns")?,
        })
    }
}

/// A free-form scalar annotation (speedups, cache counters, segment
/// counts…). Params are carried for humans and trend tooling; the perf
/// gate ignores them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Annotation key.
    pub key: String,
    /// Annotation value.
    pub value: f64,
}

/// One experiment's machine-readable result: the payload of
/// `BENCH_<name>.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Artefact stem: the file is named `BENCH_<name>.json`.
    pub name: String,
    /// Registry id of the generating experiment (e.g. `"t5"`).
    pub experiment: String,
    /// Human-readable one-liner.
    pub title: String,
    /// Workload profile: `"full"` or `"quick"`. The gate only compares
    /// reports of equal profile (the workload shapes differ).
    pub profile: String,
    /// RNG seed the workload generation actually used.
    pub seed: u64,
    /// Worker threads the harness actually used (1 = sequential timing).
    pub threads: usize,
    /// Instance sizes (CRUs, graph nodes, …) in workload order.
    pub instance_sizes: Vec<u64>,
    /// The measurements. Metric names are the gate's comparison keys.
    pub metrics: Vec<Metric>,
    /// Experiment-specific annotations (ignored by the gate).
    pub params: Vec<Param>,
    /// Where this was measured.
    pub env: EnvFingerprint,
}

impl BenchReport {
    /// Starts a report for experiment `experiment` with artefact stem
    /// `name`, capturing the current environment.
    pub fn new(
        name: impl Into<String>,
        experiment: impl Into<String>,
        title: impl Into<String>,
        profile: impl Into<String>,
        seed: u64,
    ) -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            name: name.into(),
            experiment: experiment.into(),
            title: title.into(),
            profile: profile.into(),
            seed,
            threads: 1,
            instance_sizes: Vec::new(),
            metrics: Vec::new(),
            params: Vec::new(),
            env: EnvFingerprint::capture(),
        }
    }

    /// Appends a measurement.
    pub fn metric(&mut self, name: impl Into<String>, ops: u64, total_ns: u64) -> &mut Self {
        self.metrics.push(Metric::new(name, ops, total_ns));
        self
    }

    /// Appends a latency-instrumented measurement carrying per-op p50/p99
    /// tail percentiles (nanoseconds) next to the mean.
    pub fn metric_with_percentiles(
        &mut self,
        name: impl Into<String>,
        ops: u64,
        total_ns: u64,
        p50_ns: u64,
        p99_ns: u64,
    ) -> &mut Self {
        self.metrics
            .push(Metric::new(name, ops, total_ns).with_percentiles(p50_ns, p99_ns));
        self
    }

    /// Appends an annotation.
    pub fn param(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.params.push(Param {
            key: key.into(),
            value,
        });
        self
    }

    /// Looks up a metric by name.
    pub fn find_metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The artefact file name, `BENCH_<name>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Schema sanity: version match, non-empty identity and metrics,
    /// finite and positive numbers. Run on every load so a corrupt or
    /// stale artefact is rejected before anything compares against it.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema version {} (this build understands {})",
                self.schema_version, BENCH_SCHEMA_VERSION
            ));
        }
        if self.name.is_empty() || self.experiment.is_empty() {
            return Err("empty report name or experiment id".into());
        }
        if self.profile != "full" && self.profile != "quick" {
            return Err(format!("unknown profile `{}`", self.profile));
        }
        if self.metrics.is_empty() {
            return Err("report carries no metrics".into());
        }
        for m in &self.metrics {
            if m.name.is_empty() {
                return Err("unnamed metric".into());
            }
            if m.ops == 0 || m.total_ns == 0 {
                return Err(format!("metric `{}` has zero ops or time", m.name));
            }
            if !m.ns_per_op.is_finite() || !m.per_sec.is_finite() || m.ns_per_op <= 0.0 {
                return Err(format!("metric `{}` has non-finite rates", m.name));
            }
            for (pname, p) in [("p50_ns", m.p50_ns), ("p99_ns", m.p99_ns)] {
                if let Some(p) = p {
                    if !p.is_finite() || p <= 0.0 {
                        return Err(format!("metric `{}` has a bad {pname}", m.name));
                    }
                }
            }
            if let (Some(p50), Some(p99)) = (m.p50_ns, m.p99_ns) {
                if p50 > p99 {
                    return Err(format!("metric `{}` has p50_ns > p99_ns", m.name));
                }
            }
        }
        let mut names: Vec<&str> = self.metrics.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.metrics.len() {
            return Err("duplicate metric names".into());
        }
        Ok(())
    }

    /// Serialises as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("BenchReport serialises") + "\n"
    }

    /// Writes `BENCH_<name>.json` under `dir` (created if missing).
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Loads and validates a report from a `BENCH_*.json` file.
    pub fn load(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let report: BenchReport =
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        report
            .validate()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("demo", "t0", "a demo report", "quick", 42);
        r.threads = 2;
        r.instance_sizes = vec![10, 20];
        r.metric("fast_path", 100, 1_000_000);
        r.metric("slow_path", 1, 5_000_000);
        r.param("speedup", 2.5);
        r
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let r = sample();
        let json = r.to_json();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        back.validate().unwrap();
    }

    #[test]
    fn derived_rates_are_materialised() {
        let m = Metric::new("x", 100, 1_000_000);
        assert_eq!(m.ns_per_op, 10_000.0);
        assert_eq!(m.per_sec, 100_000.0);
    }

    #[test]
    fn write_creates_directory_and_load_validates() {
        let dir = std::env::temp_dir().join("hsa-bench-report-test/nested");
        let _ = std::fs::remove_dir_all(&dir);
        let r = sample();
        let path = r.write_json(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_demo.json");
        let back = BenchReport::load(&path).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn validate_rejects_wrong_schema_version() {
        let mut r = sample();
        r.schema_version = 999;
        assert!(r.validate().unwrap_err().contains("schema version"));
    }

    #[test]
    fn validate_rejects_empty_metrics_and_duplicates() {
        let mut r = sample();
        r.metrics.clear();
        assert!(r.validate().is_err());
        let mut r = sample();
        let dup = r.metrics[0].clone();
        r.metrics.push(dup);
        assert!(r.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn validate_rejects_unknown_profile() {
        let mut r = sample();
        r.profile = "warp".into();
        assert!(r.validate().unwrap_err().contains("profile"));
    }

    #[test]
    fn percentiles_round_trip_through_json() {
        let mut r = sample();
        r.metric_with_percentiles("tail_path", 1000, 2_000_000, 1_800, 9_500);
        let json = r.to_json();
        assert!(json.contains("\"p50_ns\"") && json.contains("\"p99_ns\""));
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let m = back.find_metric("tail_path").unwrap();
        assert_eq!((m.p50_ns, m.p99_ns), (Some(1_800.0), Some(9_500.0)));
        // Plain metrics keep their keys out of the JSON entirely.
        let plain = back.find_metric("fast_path").unwrap();
        assert_eq!((plain.p50_ns, plain.p99_ns), (None, None));
        back.validate().unwrap();
    }

    #[test]
    fn metrics_without_percentile_keys_still_load() {
        // A literal pre-percentile artefact shape: no p50_ns/p99_ns keys
        // anywhere. It must parse to `None`, not error.
        let legacy = r#"{
            "name": "old_path", "ops": 10, "total_ns": 1000,
            "ns_per_op": 100.0, "per_sec": 10000000.0
        }"#;
        let m: Metric = serde_json::from_str(legacy).unwrap();
        assert_eq!(m.name, "old_path");
        assert_eq!((m.p50_ns, m.p99_ns), (None, None));
        // And a serialised plain metric parses back without the keys.
        let re = serde_json::to_string(&m).unwrap();
        assert!(!re.contains("p50_ns") && !re.contains("null"));
    }

    #[test]
    fn validate_rejects_bad_percentiles() {
        let mut r = sample();
        r.metric_with_percentiles("t", 1, 1_000, 10, 20);
        r.metrics.last_mut().unwrap().p99_ns = Some(f64::NAN);
        assert!(r.validate().unwrap_err().contains("p99_ns"));
        let mut r = sample();
        r.metric_with_percentiles("t", 1, 1_000, 500, 100);
        assert!(r.validate().unwrap_err().contains("p50_ns > p99_ns"));
    }
}
