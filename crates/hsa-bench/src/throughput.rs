//! The engine throughput experiment: batched (prepared-cache + cached
//! frontiers + thread fan-out) versus **naive per-call** solving
//! (allocate-and-destroy: a fresh `Prepared` and a fresh solve for every
//! single query) on one and the same workload.
//!
//! This is the quantitative case for the `hsa-engine` service layer; the
//! result is written as the schema-versioned `BENCH_engine.json` (via
//! [`crate::report`]) to seed the bench trajectory, and is asserted to
//! stay exact (both arms must produce identical objectives before any
//! timing is believed). The emitted report is self-describing: it records
//! the RNG seed the workload generation actually used, the worker-thread
//! count the engine actually ran with, the instance sizes, and the
//! engine's cache counters.

use crate::report::BenchReport;
use crate::time_median_ns;
use hsa_assign::{Expanded, Prepared, Solver};
use hsa_engine::{Engine, EngineConfig, EngineStats, InstanceId, LatencyHistogram, LatencyStats};
use hsa_graph::Lambda;
use hsa_tree::{CostModel, CruTree};
use hsa_workloads::{catalog, random_instance, Placement, RandomTreeParams};

/// Base RNG seed for the random instances of the throughput workload
/// (instance `i` uses `WORKLOAD_SEED + i`). Recorded in the report.
pub const WORKLOAD_SEED: u64 = 100;

/// Workload shape for [`engine_throughput`].
#[derive(Clone, Copy, Debug)]
pub struct ThroughputConfig {
    /// Random instances added on top of the scenario catalog.
    pub random_instances: usize,
    /// CRUs per random instance.
    pub n_crus: usize,
    /// λ grid resolution (queries per instance = `lambda_steps` + 1).
    pub lambda_steps: u32,
    /// Timing repetitions (median is reported).
    pub reps: usize,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            random_instances: 6,
            n_crus: 26,
            lambda_steps: 15,
            reps: 5,
        }
    }
}

/// Measured throughput of batched-vs-naive solving. Times are medians in
/// nanoseconds for the *whole* query set.
#[derive(Clone, Debug)]
pub struct EngineThroughput {
    /// Distinct instances in the workload.
    pub instances: usize,
    /// CRU count of every workload instance, in workload order.
    pub instance_sizes: Vec<u64>,
    /// Total `(instance, λ)` queries.
    pub queries: usize,
    /// Worker threads the engine used.
    pub threads: usize,
    /// Naive arm: fresh `Prepared` + fresh solve per query.
    pub naive_ns: u64,
    /// Batched arm: `Engine::solve_batch` over the cached instances.
    pub batched_ns: u64,
    /// Per-query latency distribution of the naive arm (one histogram
    /// sample per fresh prepare+solve).
    pub naive_lat: LatencyStats,
    /// Per-query latency distribution of single-query solves against a
    /// warm engine — the cached request-latency tail a service caller
    /// sees, as opposed to the whole-batch throughput above.
    pub batched_lat: LatencyStats,
    /// Engine counters from the verification batch (cache fills, query
    /// counts, merged solver work).
    pub engine_stats: EngineStats,
}

impl EngineThroughput {
    /// Naive solves per second.
    pub fn naive_solves_per_sec(&self) -> f64 {
        self.queries as f64 * 1e9 / self.naive_ns.max(1) as f64
    }

    /// Batched solves per second.
    pub fn batched_solves_per_sec(&self) -> f64 {
        self.queries as f64 * 1e9 / self.batched_ns.max(1) as f64
    }

    /// Batched-over-naive speedup.
    pub fn speedup(&self) -> f64 {
        self.naive_ns as f64 / self.batched_ns.max(1) as f64
    }

    /// The schema-versioned `BENCH_engine.json` payload (see
    /// [`crate::report`]).
    pub fn to_report(&self, profile: &str) -> BenchReport {
        let mut report = BenchReport::new(
            "engine",
            "t9",
            "engine batch throughput: batched+cached vs naive per-call",
            profile,
            WORKLOAD_SEED,
        );
        report.threads = self.threads;
        report.instance_sizes = self.instance_sizes.clone();
        report.metric_with_percentiles(
            "naive",
            self.queries as u64,
            self.naive_ns,
            self.naive_lat.p50_ns,
            self.naive_lat.p99_ns,
        );
        report.metric_with_percentiles(
            "batched",
            self.queries as u64,
            self.batched_ns,
            self.batched_lat.p50_ns,
            self.batched_lat.p99_ns,
        );
        report.param("speedup", self.speedup());
        report.param("instances", self.instances as f64);
        report.param("cache_misses", self.engine_stats.cache_misses as f64);
        report.param("cache_hits", self.engine_stats.cache_hits as f64);
        report.param("cache_hit_rate", self.engine_stats.hit_rate());
        report
    }
}

fn throughput_workload(cfg: &ThroughputConfig) -> Vec<(CruTree, CostModel)> {
    let mut instances: Vec<(CruTree, CostModel)> = catalog()
        .into_iter()
        .map(|sc| (sc.tree, sc.costs))
        .collect();
    let placements = [
        Placement::Blocked,
        Placement::Interleaved,
        Placement::Random,
    ];
    for i in 0..cfg.random_instances {
        instances.push(random_instance(
            &RandomTreeParams {
                n_crus: cfg.n_crus,
                n_satellites: 3,
                placement: placements[i % placements.len()],
                ..RandomTreeParams::default()
            },
            WORKLOAD_SEED + i as u64,
        ));
    }
    instances
}

/// Runs the batched-vs-naive throughput measurement (see module docs).
///
/// # Panics
/// Panics if the two arms disagree on any query's objective — a timing
/// number for a wrong answer is worse than no number.
pub fn engine_throughput(cfg: &ThroughputConfig) -> EngineThroughput {
    let instances = throughput_workload(cfg);
    let lambdas: Vec<Lambda> = (0..=cfg.lambda_steps)
        .map(|n| Lambda::new(n, cfg.lambda_steps.max(1)).unwrap())
        .collect();

    // Batched arm setup outside the timed region mirrors a warm service;
    // prepare() itself is *inside* the timed region so the comparison
    // charges the engine for its cache fills too.
    let engine = Engine::new(EngineConfig::default());
    let ids: Vec<InstanceId> = instances
        .iter()
        .map(|(t, c)| engine.prepare(t, c).expect("workload prepares"))
        .collect();
    let queries: Vec<(InstanceId, Lambda)> = ids
        .iter()
        .flat_map(|&id| lambdas.iter().map(move |&l| (id, l)))
        .collect();

    // Exactness gate: batched answers ≡ naive answers, query for query.
    let batched = engine.solve_batch(&queries);
    let mut q = 0;
    for (tree, costs) in &instances {
        let prep = Prepared::new(tree, costs).expect("workload prepares");
        for &lambda in &lambdas {
            let want = Expanded::default().solve(&prep, lambda).unwrap();
            let got = batched[q].as_ref().expect("batched solve succeeds");
            assert_eq!(
                got.objective, want.objective,
                "batched and naive disagree — refusing to time a wrong answer"
            );
            assert_eq!(got.cut, want.cut);
            q += 1;
        }
    }

    // Per-query latency distributions, measured on the same workload: the
    // naive arm times every fresh prepare+solve; the cached arm times
    // single-query solves against a *separate* warm engine, so the cache
    // counters of the verification engine above stay untouched. This is
    // what a request-at-a-time caller experiences, and what the p50/p99
    // columns of BENCH_engine.json gate.
    let naive_hist = LatencyHistogram::new();
    for (tree, costs) in &instances {
        for &lambda in &lambdas {
            let t0 = std::time::Instant::now();
            let prep = Prepared::new(tree, costs).expect("workload prepares");
            let sol = Expanded::default().solve(&prep, lambda).unwrap();
            naive_hist.record_duration(t0.elapsed());
            std::hint::black_box(sol.objective);
        }
    }
    let batched_hist = LatencyHistogram::new();
    {
        let warm = Engine::new(EngineConfig::default());
        for (t, c) in &instances {
            warm.prepare(t, c).expect("workload prepares");
        }
        for &q in &queries {
            let t0 = std::time::Instant::now();
            let out = warm.solve_batch(&[q]);
            batched_hist.record_duration(t0.elapsed());
            std::hint::black_box(out.len());
        }
    }

    let naive_ns = time_median_ns(cfg.reps, || {
        for (tree, costs) in &instances {
            for &lambda in &lambdas {
                // Allocate-and-destroy per call: the pre-engine code path.
                let prep = Prepared::new(tree, costs).expect("workload prepares");
                let sol = Expanded::default().solve(&prep, lambda).unwrap();
                std::hint::black_box(sol.objective);
            }
        }
    });

    let batched_ns = time_median_ns(cfg.reps, || {
        let engine = Engine::new(EngineConfig::default());
        for (t, c) in &instances {
            engine.prepare(t, c).expect("workload prepares");
        }
        let out = engine.solve_batch(&queries);
        std::hint::black_box(out.len());
    });

    EngineThroughput {
        instances: instances.len(),
        instance_sizes: instances.iter().map(|(t, _)| t.len() as u64).collect(),
        queries: queries.len(),
        threads: engine.threads(),
        naive_ns,
        batched_ns,
        naive_lat: naive_hist.snapshot().stats(),
        batched_lat: batched_hist.snapshot().stats(),
        engine_stats: engine.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_measures_and_serialises() {
        let cfg = ThroughputConfig {
            random_instances: 1,
            n_crus: 10,
            lambda_steps: 3,
            reps: 1,
        };
        let t = engine_throughput(&cfg);
        assert!(t.queries >= 4 * t.instances.min(t.queries));
        assert!(t.naive_ns > 0 && t.batched_ns > 0);
        assert_eq!(t.instance_sizes.len(), t.instances);
        // The latency passes cover every query and land in the report as
        // gated percentile columns.
        assert_eq!(t.naive_lat.count, t.queries as u64);
        assert_eq!(t.batched_lat.count, t.queries as u64);
        let report = t.to_report("quick");
        report.validate().unwrap();
        for arm in ["naive", "batched"] {
            let m = report.find_metric(arm).unwrap();
            assert!(m.p50_ns.is_some() && m.p99_ns.is_some(), "{arm} has tails");
        }
        assert_eq!(report.name, "engine");
        assert_eq!(report.experiment, "t9");
        assert_eq!(report.seed, WORKLOAD_SEED);
        assert_eq!(report.threads, t.threads);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"t9\""));
        assert!(json.contains("speedup"));
        assert!(json.contains("\"seed\": 100"));
        let dir = std::env::temp_dir().join("hsa-bench-engine-test");
        let p = report.write_json(&dir).unwrap();
        assert!(p.ends_with("BENCH_engine.json"));
        let back = BenchReport::load(&p).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn verification_batch_counters_are_surfaced() {
        let cfg = ThroughputConfig {
            random_instances: 1,
            n_crus: 8,
            lambda_steps: 2,
            reps: 1,
        };
        let t = engine_throughput(&cfg);
        // One prepare per instance (all misses), one verified query per
        // (instance, λ) pair.
        assert_eq!(t.engine_stats.cache_misses, t.instances as u64);
        assert_eq!(t.engine_stats.queries, t.queries as u64);
    }
}
