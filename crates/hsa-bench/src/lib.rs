//! # hsa-bench — the experiment subsystem
//!
//! Everything empirical lives behind one registry
//! ([`experiments::REGISTRY`]): figure reproductions, quantitative
//! studies and criterion bench targets are all named [`experiments::Experiment`]s
//! with declared artefacts and paper references. Entry points:
//!
//! * the **`repro` binary** (`cargo run -p hsa-bench --bin repro --release`)
//!   — `--list` enumerates the registry, `--all` runs the full matrix,
//!   `--exp <id>` one experiment, `--gate <dir>` the CI perf gate;
//! * the **criterion benches** (`cargo bench -p hsa-bench`) — thin shims
//!   over [`experiments::criterion_bench`], so `cargo bench` measures the
//!   registry's own bodies.
//!
//! Perf-tracked experiments emit schema-versioned `BENCH_<name>.json`
//! artefacts ([`report::BenchReport`]: seed, instance sizes, threads,
//! ns/op, solves/sec, environment fingerprint); [`gate`] compares a fresh
//! run against committed baselines with a configurable relative tolerance
//! and renders a human-readable regression table.
//!
//! This library also hosts the shared pieces: deterministic instance
//! suites, wall-clock measurement helpers, a tiny CSV writer, the
//! engine-throughput measurement ([`engine_throughput`], behind the
//! `BENCH_engine.json` artefact), and a re-export of the parallel sweep
//! runner that lives in `hsa-engine` (sweeps are embarrassingly parallel).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use hsa_workloads::{random_instance, Placement, RandomTreeParams};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

pub use hsa_engine::parallel_map;

pub mod experiments;
pub mod gate;
pub mod report;
mod throughput;

pub use report::{BenchReport, EnvFingerprint, Metric, BENCH_SCHEMA_VERSION};
pub use throughput::{engine_throughput, EngineThroughput, ThroughputConfig, WORKLOAD_SEED};

/// A measured duration in nanoseconds (median of `reps` runs).
pub fn time_median_ns<F: FnMut()>(reps: usize, mut f: F) -> u64 {
    let reps = reps.max(1);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A simple CSV table accumulated in memory and flushed to `results/`.
#[derive(Debug, Clone)]
pub struct CsvTable {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new(name: &str, header: &[&str]) -> Self {
        CsvTable {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header length).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders an aligned text table for stdout.
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(r, &widths, &mut out);
        }
        out
    }

    /// Writes `results/<name>.csv` under `dir`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut s = self.header.join(",");
        s.push('\n');
        for r in &self.rows {
            s.push_str(&r.join(","));
            s.push('\n');
        }
        std::fs::write(&path, s)?;
        Ok(path)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// The standard random-instance suite for solver sweeps: sizes × placements,
/// `per_cell` seeds each. Deterministic.
pub fn sweep_instances(
    sizes: &[usize],
    placements: &[Placement],
    n_satellites: u32,
    per_cell: u64,
) -> Vec<(
    usize,
    Placement,
    u64,
    hsa_tree::CruTree,
    hsa_tree::CostModel,
)> {
    let mut out = Vec::new();
    for &n in sizes {
        for &pl in placements {
            for seed in 0..per_cell {
                let (tree, costs) = random_instance(
                    &RandomTreeParams {
                        n_crus: n,
                        n_satellites,
                        placement: pl,
                        ..RandomTreeParams::default()
                    },
                    seed + 1000 * n as u64,
                );
                out.push((n, pl, seed, tree, costs));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let mut t = CsvTable::new("demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["30".into(), "40".into()]);
        assert_eq!(t.len(), 2);
        let text = t.render_text();
        assert!(text.contains("a") && text.contains("40"));
        let dir = std::env::temp_dir().join("hsa-bench-test");
        let p = t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(p).unwrap();
        assert_eq!(content, "a,b\n1,2\n30,40\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = CsvTable::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, 4, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = sweep_instances(&[10, 20], &[Placement::Blocked], 3, 2);
        let b = sweep_instances(&[10, 20], &[Placement::Blocked], 3, 2);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.3, y.3);
        }
    }

    #[test]
    fn timing_returns_positive() {
        let ns = time_median_ns(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(ns > 0);
    }
}
