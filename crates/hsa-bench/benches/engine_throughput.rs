//! Bench: engine batch throughput — solves/sec, batched vs naive.
//!
//! Thin shim over the experiment registry (id `t9`): runs the full-profile
//! measurement and writes `results/t9_engine_throughput.csv` plus the
//! schema-versioned `results/BENCH_engine.json`.
//!
//! ```sh
//! cargo bench -p hsa-bench --bench engine_throughput
//! ```

use hsa_bench::experiments::{self, ExpCtx, Profile};
use std::path::Path;

fn main() {
    let ctx = ExpCtx::new(Path::new("results"), Profile::Full);
    experiments::run("t9", &ctx).expect("t9 is registered");
}
