//! Bench: engine batch throughput — solves/sec, batched vs naive.
//!
//! Batched = `hsa-engine` (prepared-instance cache + cached frontier sets +
//! thread fan-out); naive = a fresh `Prepared` and a fresh `Expanded` solve
//! per query, the pre-engine code path. Writes `results/BENCH_engine.json`.
//!
//! ```sh
//! cargo bench -p hsa-bench --bench engine_throughput
//! ```

use hsa_bench::{engine_throughput, ThroughputConfig};
use std::path::Path;

fn main() {
    let report = engine_throughput(&ThroughputConfig::default());
    println!(
        "engine_throughput: {} instances × λ-grid = {} queries on {} thread(s)",
        report.instances, report.queries, report.threads
    );
    println!(
        "  naive   : {:>12} ns total   {:>10.1} solves/sec",
        report.naive_ns,
        report.naive_solves_per_sec()
    );
    println!(
        "  batched : {:>12} ns total   {:>10.1} solves/sec",
        report.batched_ns,
        report.batched_solves_per_sec()
    );
    println!("  speedup : {:.2}x", report.speedup());
    let path = report
        .write_json(Path::new("results"))
        .expect("write BENCH_engine.json");
    println!("  written : {}", path.display());
}
