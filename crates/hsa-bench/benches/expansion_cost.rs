//! Bench T2: the cost of the expansion machinery as colour interleaving
//! grows — the |E′| axis of the paper's O(|E′|) claim for the adapted
//! algorithm (§5.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hsa_assign::{Expanded, PaperSsb, Prepared, Solver};
use hsa_graph::Lambda;
use hsa_workloads::{random_instance, Placement, RandomTreeParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("expansion_cost");
    for placement in [
        Placement::Blocked,
        Placement::Interleaved,
        Placement::Random,
    ] {
        for n in [10usize, 20] {
            let (tree, costs) = random_instance(
                &RandomTreeParams {
                    n_crus: n,
                    n_satellites: 3,
                    placement,
                    ..RandomTreeParams::default()
                },
                11,
            );
            let prep = Prepared::new(&tree, &costs).unwrap();
            let label = format!("{placement:?}_{n}");
            group.bench_with_input(BenchmarkId::new("paper_ssb", &label), &prep, |b, prep| {
                b.iter(|| black_box(PaperSsb::default().solve(prep, Lambda::HALF).unwrap().stats))
            });
            group.bench_with_input(BenchmarkId::new("expanded", &label), &prep, |b, prep| {
                b.iter(|| black_box(Expanded::default().solve(prep, Lambda::HALF).unwrap().stats))
            });
        }
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
