//! Ablation benches for the design choices DESIGN.md §2 records:
//!
//! * elimination rule `β ≥ B(P)` (Figure 4 semantics) vs the prose's
//!   strict `β > B(P)` with stall fallback;
//! * iterate-and-eliminate (the paper) vs the parametric threshold sweep
//!   (the §2 follow-up literature's approach) for both objectives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hsa_graph::generate::{layered_dag, LayeredParams};
use hsa_graph::{
    sb_search, sb_search_sweep, ssb_search, ssb_search_sweep, EliminationRule, Lambda, SsbConfig,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    for (layers, width) in [(4usize, 4usize), (8, 8)] {
        let params = LayeredParams {
            layers,
            width,
            extra_edges: 3 * width,
            max_sigma: 1000,
            max_beta: 1000,
        };
        let gen = layered_dag(&params, 42);
        let label = format!("v{}_e{}", gen.graph.num_nodes(), gen.graph.num_edges());

        group.bench_with_input(
            BenchmarkId::new("ssb_rule_greater_equal", &label),
            &gen,
            |b, gen| {
                b.iter(|| {
                    let mut g = gen.graph.clone();
                    black_box(
                        ssb_search(&mut g, gen.source, gen.target, &SsbConfig::default())
                            .iterations,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ssb_rule_strict", &label),
            &gen,
            |b, gen| {
                let cfg = SsbConfig {
                    rule: EliminationRule::Strict,
                    ..SsbConfig::default()
                };
                b.iter(|| {
                    let mut g = gen.graph.clone();
                    black_box(ssb_search(&mut g, gen.source, gen.target, &cfg).iterations)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("ssb_sweep", &label), &gen, |b, gen| {
            b.iter(|| {
                let mut g = gen.graph.clone();
                black_box(ssb_search_sweep(&mut g, gen.source, gen.target, Lambda::HALF).probes)
            })
        });
        group.bench_with_input(BenchmarkId::new("sb_iterative", &label), &gen, |b, gen| {
            b.iter(|| {
                let mut g = gen.graph.clone();
                black_box(sb_search(&mut g, gen.source, gen.target).iterations)
            })
        });
        group.bench_with_input(BenchmarkId::new("sb_sweep", &label), &gen, |b, gen| {
            b.iter(|| {
                let mut g = gen.graph.clone();
                black_box(sb_search_sweep(&mut g, gen.source, gen.target).probes)
            })
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
