//! Bench A1: elimination-rule and iterate-vs-sweep ablations (DESIGN.md §2).
//!
//! Thin shim: the measurement body lives in the experiment registry
//! (`hsa_bench::experiments`, id `a1`) so `cargo bench` and `repro`
//! share one implementation.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    hsa_bench::experiments::criterion_bench("a1", c);
}

criterion_group! {
    name = benches;
    config = hsa_bench::experiments::criterion_config();
    targets = bench
}
criterion_main!(benches);
