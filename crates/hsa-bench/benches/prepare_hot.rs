//! Bench T12: the cached-identity hot path — cold vs hot prepare, raw
//! cache lookup, and the id-addressed solve (DESIGN.md §12).
//!
//! Thin shim: the measurement body lives in the experiment registry
//! (`hsa_bench::experiments`, id `t12`) so `cargo bench` and `repro`
//! share one implementation.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    hsa_bench::experiments::criterion_bench("t12", c);
}

criterion_group! {
    name = benches;
    config = hsa_bench::experiments::criterion_config();
    targets = bench
}
criterion_main!(benches);
