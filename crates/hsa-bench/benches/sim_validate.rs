//! Bench T4: simulator throughput — single frames under both timing
//! models, and the periodic-pipeline engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hsa_assign::{Expanded, Prepared, Solver};
use hsa_graph::{Cost, Lambda};
use hsa_sim::{simulate, simulate_periodic, SimConfig};
use hsa_workloads::catalog;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_validate");
    for sc in catalog() {
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let optimal = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        group.bench_with_input(
            BenchmarkId::new("paper_model", &sc.name),
            &(&prep, &optimal.cut),
            |b, (prep, cut)| {
                b.iter(|| {
                    black_box(
                        simulate(prep, cut, &SimConfig::paper_model())
                            .unwrap()
                            .end_to_end,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("eager", &sc.name),
            &(&prep, &optimal.cut),
            |b, (prep, cut)| {
                b.iter(|| black_box(simulate(prep, cut, &SimConfig::eager()).unwrap().end_to_end))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pipeline_100_frames", &sc.name),
            &(&prep, &optimal.cut),
            |b, (prep, cut)| {
                b.iter(|| {
                    black_box(
                        simulate_periodic(prep, cut, Cost::new(1_000_000), 100)
                            .unwrap()
                            .makespan,
                    )
                })
            },
        );
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
