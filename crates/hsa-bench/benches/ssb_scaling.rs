//! Bench T1: generic SSB runtime scaling over random layered DWGs.
//!
//! Thin shim: the measurement body lives in the experiment registry
//! (`hsa_bench::experiments`, id `t1`) so `cargo bench` and `repro`
//! share one implementation.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    hsa_bench::experiments::criterion_bench("t1", c);
}

criterion_group! {
    name = benches;
    config = hsa_bench::experiments::criterion_config();
    targets = bench
}
criterion_main!(benches);
