//! Bench T1: generic SSB runtime scaling over random layered DWGs — the
//! empirical counterpart of the paper's O(|V|²·|E|) claim (§4.2). Also
//! benchmarks the Dijkstra core and Bokhari's SB baseline on the same
//! graphs, so the per-iteration cost and the objective overhead separate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hsa_graph::dijkstra::shortest_path;
use hsa_graph::generate::{layered_dag, LayeredParams};
use hsa_graph::{sb_search, ssb_search, SsbConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssb_scaling");
    for (layers, width) in [(2usize, 2usize), (4, 4), (8, 4), (8, 8), (16, 8)] {
        let params = LayeredParams {
            layers,
            width,
            extra_edges: 3 * width,
            max_sigma: 1000,
            max_beta: 1000,
        };
        let gen = layered_dag(&params, 42);
        let label = format!("v{}_e{}", gen.graph.num_nodes(), gen.graph.num_edges());
        group.bench_with_input(BenchmarkId::new("ssb", &label), &gen, |b, gen| {
            b.iter(|| {
                let mut g = gen.graph.clone();
                let out = ssb_search(&mut g, gen.source, gen.target, &SsbConfig::default());
                black_box(out.iterations)
            })
        });
        group.bench_with_input(BenchmarkId::new("sb", &label), &gen, |b, gen| {
            b.iter(|| {
                let mut g = gen.graph.clone();
                let out = sb_search(&mut g, gen.source, gen.target);
                black_box(out.iterations)
            })
        });
        group.bench_with_input(BenchmarkId::new("dijkstra", &label), &gen, |b, gen| {
            b.iter(|| {
                black_box(shortest_path(&gen.graph, gen.source, gen.target).map(|p| p.s_weight))
            })
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
