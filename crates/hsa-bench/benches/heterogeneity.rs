//! Bench T6: full solve pipeline across the heterogeneity sweep (prepare +
//! solve per host-speed point) — the cost of re-planning when the platform
//! changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hsa_assign::{Expanded, Prepared, Solver};
use hsa_graph::Lambda;
use hsa_workloads::{epilepsy_scenario, host_speed_sweep, EpilepsyParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let base = epilepsy_scenario(&EpilepsyParams::default());
    let mut group = c.benchmark_group("heterogeneity");
    for (label, sc) in host_speed_sweep(&base) {
        group.bench_with_input(BenchmarkId::new("replan", &label), &sc, |b, sc| {
            b.iter(|| {
                let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
                black_box(
                    Expanded::default()
                        .solve(&prep, Lambda::HALF)
                        .unwrap()
                        .objective,
                )
            })
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
