//! Bench T7: the future-work solvers (B&B, GA, SA) on tree-derived DAGs.
//!
//! Thin shim: the measurement body lives in the experiment registry
//! (`hsa_bench::experiments`, id `t7`) so `cargo bench` and `repro`
//! share one implementation.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    hsa_bench::experiments::criterion_bench("t7", c);
}

criterion_group! {
    name = benches;
    config = hsa_bench::experiments::criterion_config();
    targets = bench
}
criterion_main!(benches);
