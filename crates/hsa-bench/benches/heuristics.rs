//! Bench T7: the future-work solvers (B&B, GA, SA) on tree-derived DAGs —
//! runtime versus the polynomial tree-exact solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hsa_assign::{Expanded, Prepared, Solver};
use hsa_graph::Lambda;
use hsa_heuristics::{
    branch_and_bound, genetic, simulated_annealing, BnbConfig, GaConfig, SaConfig, TaskDag,
};
use hsa_workloads::{random_instance, Placement, RandomTreeParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristics");
    for n in [6usize, 8, 10] {
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: n,
                n_satellites: 2,
                placement: Placement::Random,
                ..RandomTreeParams::default()
            },
            3,
        );
        let dag = TaskDag::from_tree(&tree, &costs);
        group.bench_with_input(BenchmarkId::new("bnb", n), &dag, |b, dag| {
            b.iter(|| {
                black_box(
                    branch_and_bound(dag, &BnbConfig::default())
                        .unwrap()
                        .makespan,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("ga", n), &dag, |b, dag| {
            let cfg = GaConfig {
                generations: 40,
                population: 30,
                ..GaConfig::default()
            };
            b.iter(|| black_box(genetic(dag, &cfg).unwrap().makespan))
        });
        group.bench_with_input(BenchmarkId::new("sa", n), &dag, |b, dag| {
            let cfg = SaConfig {
                iterations: 1_000,
                ..SaConfig::default()
            };
            b.iter(|| black_box(simulated_annealing(dag, &cfg).unwrap().makespan))
        });
        let prep_input = (tree.clone(), costs.clone());
        group.bench_with_input(
            BenchmarkId::new("tree_exact", n),
            &prep_input,
            |b, (t, m)| {
                b.iter(|| {
                    let prep = Prepared::new(t, m).unwrap();
                    black_box(
                        Expanded::default()
                            .solve(&prep, Lambda::HALF)
                            .unwrap()
                            .objective,
                    )
                })
            },
        );
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
