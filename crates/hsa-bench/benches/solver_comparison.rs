//! Bench T5: the three exact solvers (paper-SSB, full expansion, brute
//! force) against growing instance sizes — who pays what for exactness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hsa_assign::{BruteForce, Expanded, PaperSsb, Prepared, Solver};
use hsa_graph::Lambda;
use hsa_workloads::{random_instance, Placement, RandomTreeParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_comparison");
    for n in [10usize, 20, 40, 80] {
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: n,
                n_satellites: 3,
                // Blocked placement keeps the faithful algorithm in its
                // polynomial regime at every size; the interleaved regime
                // is measured separately in `expansion_cost`.
                placement: Placement::Blocked,
                ..RandomTreeParams::default()
            },
            7,
        );
        let prep = Prepared::new(&tree, &costs).unwrap();
        group.bench_with_input(BenchmarkId::new("paper_ssb", n), &prep, |b, prep| {
            b.iter(|| {
                black_box(
                    PaperSsb::default()
                        .solve(prep, Lambda::HALF)
                        .unwrap()
                        .objective,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("expanded", n), &prep, |b, prep| {
            b.iter(|| {
                black_box(
                    Expanded::default()
                        .solve(prep, Lambda::HALF)
                        .unwrap()
                        .objective,
                )
            })
        });
        if n <= 20 {
            group.bench_with_input(BenchmarkId::new("brute_force", n), &prep, |b, prep| {
                b.iter(|| {
                    black_box(
                        BruteForce::default()
                            .solve(prep, Lambda::HALF)
                            .unwrap()
                            .objective,
                    )
                })
            });
        }
        // Preparation cost itself (colouring + labelling + dual graph).
        group.bench_with_input(
            BenchmarkId::new("prepare", n),
            &(&tree, &costs),
            |b, (t, m)| b.iter(|| black_box(Prepared::new(t, m).unwrap().graph.n_edges())),
        );
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
