//! Bench F4: the SSB algorithm on the paper's Figure 4 graph (the smallest
//! meaningful workload — measures per-iteration overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use hsa_graph::figures::fig4_graph;
use hsa_graph::{ssb_search, SsbConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (g, s, t) = fig4_graph();
    c.bench_function("ssb_fig4/full_search", |b| {
        b.iter(|| {
            let mut g2 = g.clone();
            let out = ssb_search(&mut g2, s, t, &SsbConfig::default());
            black_box(out.best.map(|x| x.ssb))
        })
    });
    c.bench_function("ssb_fig4/with_trace", |b| {
        let cfg = SsbConfig {
            record_trace: true,
            ..SsbConfig::default()
        };
        b.iter(|| {
            let mut g2 = g.clone();
            let out = ssb_search(&mut g2, s, t, &cfg);
            black_box(out.trace.len())
        })
    });
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
