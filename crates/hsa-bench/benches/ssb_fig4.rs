//! Bench F4: the SSB algorithm on the paper's Figure 4 graph.
//!
//! Thin shim: the measurement body lives in the experiment registry
//! (`hsa_bench::experiments`, id `f4`) so `cargo bench` and `repro`
//! share one implementation.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    hsa_bench::experiments::criterion_bench("f4", c);
}

criterion_group! {
    name = benches;
    config = hsa_bench::experiments::criterion_config();
    targets = bench
}
criterion_main!(benches);
