//! Bench T3: solving for the paper's SSB objective vs Bokhari's SB
//! objective on the same instances (both via the shared colour frontiers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hsa_assign::{Expanded, Prepared, SbObjective, Solver};
use hsa_graph::Lambda;
use hsa_workloads::catalog;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective_gap");
    for sc in catalog() {
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        group.bench_with_input(BenchmarkId::new("ssb", &sc.name), &prep, |b, prep| {
            b.iter(|| {
                black_box(
                    Expanded::default()
                        .solve(prep, Lambda::HALF)
                        .unwrap()
                        .objective,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sb", &sc.name), &prep, |b, prep| {
            b.iter(|| {
                black_box(
                    SbObjective::default()
                        .solve(prep, Lambda::HALF)
                        .unwrap()
                        .objective,
                )
            })
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
