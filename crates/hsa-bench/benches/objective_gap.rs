//! Bench T3: the paper's SSB objective vs Bokhari's SB objective.
//!
//! Thin shim: the measurement body lives in the experiment registry
//! (`hsa_bench::experiments`, id `t3`) so `cargo bench` and `repro`
//! share one implementation.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    hsa_bench::experiments::criterion_bench("t3", c);
}

criterion_group! {
    name = benches;
    config = hsa_bench::experiments::criterion_config();
    targets = bench
}
criterion_main!(benches);
