//! End-to-end tests for the `repro` CLI: registry enumeration, error
//! paths, the full `--all` artefact matrix, and the round trip of every
//! emitted `BENCH_*.json` through the report schema.

use hsa_bench::experiments::REGISTRY;
use hsa_bench::gate::{bench_artefacts, gate_directories, GateConfig};
use hsa_bench::report::BenchReport;
use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hsa-repro-cli-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn list_enumerates_every_registered_experiment() {
    let out = repro(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for e in REGISTRY {
        let line = stdout
            .lines()
            .find(|l| l.starts_with(&format!("{} ", e.id)))
            .unwrap_or_else(|| panic!("--list misses {}", e.id));
        assert!(line.contains(e.title), "{}: title missing", e.id);
        for artefact in e.artefacts {
            assert!(
                line.contains(artefact),
                "{}: artefact {artefact} missing",
                e.id
            );
        }
    }
}

#[test]
fn table_emits_the_registry_markdown() {
    let out = repro(&["--table"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("| Id | Experiment |"));
    for e in REGISTRY {
        assert!(stdout.contains(&format!("| {} |", e.id)));
    }
}

#[test]
fn unknown_exp_id_exits_nonzero_and_names_the_known_ids() {
    let out = repro(&["--exp", "zz"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown experiment id `zz`"));
    assert!(stderr.contains("t9"), "error should list the known ids");
}

#[test]
fn unknown_flag_exits_nonzero() {
    let out = repro(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn invalid_flag_combinations_are_usage_errors() {
    // --exp under a gate mode would fabricate missing-artefact failures.
    let out = repro(&["--gate", "baselines", "--exp", "t9"]);
    assert_eq!(out.status.code(), Some(2));
    let out = repro(&["--compare", "baselines", "--exp", "t9"]);
    assert_eq!(out.status.code(), Some(2));
    // --bench-only with an untracked id would silently run nothing.
    let out = repro(&["--exp", "t3", "--bench-only"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("not perf-tracked"));
    // NaN / non-positive tolerances would silently disable the gate.
    for bad in ["nan", "0", "-3", "inf"] {
        let out = repro(&["--compare", "baselines", "--tolerance", bad]);
        assert_eq!(out.status.code(), Some(2), "tolerance `{bad}` accepted");
    }
}

#[test]
fn single_experiment_creates_the_output_directory() {
    // `--exp t9 --quick` into a directory that does not exist: the harness
    // must create it and the emitted JSON must be self-describing.
    let dir = temp_out("t9").join("nested");
    let out = repro(&["--exp", "t9", "--quick", "--out", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = BenchReport::load(&dir.join("BENCH_engine.json")).unwrap();
    assert_eq!(report.experiment, "t9");
    assert_eq!(report.seed, hsa_bench::WORKLOAD_SEED);
    assert!(report.threads >= 1);
    assert_eq!(report.profile, "quick");
}

#[test]
fn all_quick_emits_every_artefact_and_reports_round_trip() {
    let dir = temp_out("all");
    let out = repro(&["--all", "--quick", "--out", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Every artefact the registry declares must exist…
    for e in REGISTRY {
        for artefact in e.artefacts {
            assert!(
                dir.join(artefact).exists(),
                "{}: artefact {artefact} not written",
                e.id
            );
        }
    }

    // …and every BENCH_*.json parses against the schema, tagged with its
    // generating experiment and profile.
    let benches = bench_artefacts(&dir).unwrap();
    let tracked: Vec<_> = REGISTRY
        .iter()
        .filter(|e| e.bench_artefact.is_some())
        .collect();
    assert_eq!(benches.len(), tracked.len());
    assert!(benches.len() >= 5, "fewer than 5 BENCH artefacts");
    for path in &benches {
        let report = BenchReport::load(path).unwrap();
        assert_eq!(report.profile, "quick");
        let exp = tracked
            .iter()
            .find(|e| e.id == report.experiment)
            .unwrap_or_else(|| panic!("{}: unknown generating experiment", path.display()));
        assert_eq!(
            exp.bench_artefact.unwrap(),
            report.file_name(),
            "artefact name drifted from the registry"
        );
        assert!(!report.metrics.is_empty());
    }

    // The emitted set gates cleanly against itself…
    let cfg = GateConfig::default();
    let outcome = gate_directories(&dir, &dir, &cfg);
    assert!(outcome.passed(), "{}", outcome.render_text(&cfg));

    // …including through the CLI's --compare mode.
    let out = repro(&[
        "--compare",
        dir.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("PASS"));
}

#[test]
fn compare_against_a_doctored_slow_baseline_fails() {
    // Emit one quick artefact, then hand the gate a baseline claiming the
    // same metrics used to be 64× faster: the CLI must exit 1 and render
    // the regression table.
    let dir = temp_out("gate-fail");
    let out = repro(&["--exp", "t9", "--quick", "--out", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let mut baseline = BenchReport::load(&dir.join("BENCH_engine.json")).unwrap();
    for m in &mut baseline.metrics {
        *m = hsa_bench::Metric::new(m.name.clone(), m.ops, (m.total_ns / 64).max(1));
    }
    let base_dir = dir.join("baseline");
    baseline.write_json(&base_dir).unwrap();
    let out = repro(&[
        "--compare",
        base_dir.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
        "--tolerance",
        "4",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("REGRESSED") && stdout.contains("FAIL"));
}
