//! The paper's motivating scenario (§1, Figure 1): context-aware epilepsy
//! tele-monitoring.
//!
//! A patient's PDA (the **host**) is connected to sensor boxes (the
//! **satellites**). Box 1 samples ECG and one accelerometer; box 2 samples
//! a second accelerometer and GPS. The reasoning tree turns raw signals
//! into a seizure-probability context at the root:
//!
//! ```text
//!                       seizure-alarm            (root, host)
//!                      /             \
//!              seizure-fusion     location-context
//!               /     |     \            |
//!         hrv-feat  activity  motion   gps-parse
//!            |        |         |         |
//!        qrs-detect accel1-feat accel2-feat  [gps]      (leaves)
//!            |        |         |
//!          [ecg]   [accel1]  [accel2]
//! ```
//!
//! Cost magnitudes follow the MobiHealth descriptions (DESIGN.md §5): DSP
//! kernels (filtering, QRS detection, feature extraction) are sized from
//! the sampling rates; raw frames are much larger than extracted features,
//! so offloading the leaf DSP stages slashes communication; the PDA is
//! `pda_slowdown`× slower than a sensor-box DSP on those kernels, while the
//! fusion stages are lightweight. Link costs come from the Bluetooth
//! profile in `hsa-sim`.

use crate::Scenario;
use hsa_graph::Cost;
use hsa_sim::{sensor_frame, LinkProfile};
use hsa_tree::{CostModel, SatelliteId, TreeBuilder};

/// Tunable parameters of the tele-monitoring instance.
#[derive(Clone, Copy, Debug)]
pub struct EpilepsyParams {
    /// ECG sampling rate (Hz); window is one second.
    pub ecg_hz: usize,
    /// Accelerometer sampling rate (Hz), 3 channels.
    pub accel_hz: usize,
    /// How many times slower the PDA is on DSP kernels than a sensor box.
    pub pda_slowdown: u64,
    /// Uplink profile from the sensor boxes to the PDA.
    pub link: LinkProfile,
}

impl Default for EpilepsyParams {
    fn default() -> Self {
        EpilepsyParams {
            ecg_hz: 256,
            accel_hz: 100,
            pda_slowdown: 8,
            link: LinkProfile::BLUETOOTH,
        }
    }
}

/// Builds the tele-monitoring scenario.
pub fn epilepsy_scenario(p: &EpilepsyParams) -> Scenario {
    let box1 = SatelliteId(0); // ECG + accelerometer 1
    let box2 = SatelliteId(1); // accelerometer 2 + GPS

    let mut b = TreeBuilder::new("seizure-alarm");
    let root = b.root();
    let fusion = b.add_child(root, "seizure-fusion");
    let hrv = b.add_child(fusion, "hrv-features");
    let qrs = b.add_child(hrv, "qrs-detect");
    let activity = b.add_child(fusion, "activity-class");
    let accel1 = b.add_child(activity, "accel1-features");
    let motion = b.add_child(fusion, "motion-intensity");
    let accel2 = b.add_child(motion, "accel2-features");
    let location = b.add_child(root, "location-context");
    let gps = b.add_child(location, "gps-parse");
    let tree = b.build();

    let mut m = CostModel::zeroed(&tree, 2);

    // --- Data volumes (bytes per one-second frame) ----------------------
    let ecg_raw = sensor_frame(1, p.ecg_hz, 0).len();
    let accel_raw = sensor_frame(3, p.accel_hz, 0).len();
    let gps_raw = sensor_frame(2, 1, 0).len(); // one fix per frame
    let features = 64; // extracted feature vectors are tiny

    // --- Processing times (µs per frame) --------------------------------
    // DSP kernels: ~40 µs per sample on a sensor-box DSP.
    let dsp = |samples: usize| Cost::new(40 * samples as u64);
    let on_pda = |c: Cost| c.saturating_mul(p.pda_slowdown);
    // Fusion/classification stages: fixed light-weight costs, faster on
    // the PDA (they are control logic, not DSP): sensor boxes are 4× slower.
    let logic = |us: u64| Cost::new(us);

    let set = |m: &mut CostModel, c, sat_cost: Cost, host_cost: Cost| {
        m.set_satellite_time(c, sat_cost);
        m.set_host_time(c, host_cost);
    };

    // Leaves: signal conditioning per sample.
    set(&mut m, qrs, dsp(p.ecg_hz), on_pda(dsp(p.ecg_hz)));
    set(
        &mut m,
        accel1,
        dsp(3 * p.accel_hz),
        on_pda(dsp(3 * p.accel_hz)),
    );
    set(
        &mut m,
        accel2,
        dsp(3 * p.accel_hz),
        on_pda(dsp(3 * p.accel_hz)),
    );
    set(&mut m, gps, logic(300), logic(100));
    // Mid-tier feature stages.
    set(&mut m, hrv, dsp(p.ecg_hz / 4), on_pda(dsp(p.ecg_hz / 4)));
    set(&mut m, activity, logic(4_000), logic(1_000));
    set(&mut m, motion, logic(2_000), logic(500));
    set(&mut m, location, logic(800), logic(200));
    // Host-only stages (the application consumes these on the PDA).
    set(&mut m, fusion, logic(12_000), logic(3_000));
    set(&mut m, root, logic(4_000), logic(1_000));

    // --- Communication ---------------------------------------------------
    // c_raw: shipping the raw signal to the PDA.
    m.pin_leaf(qrs, box1, p.link.transfer_time(ecg_raw));
    m.pin_leaf(accel1, box1, p.link.transfer_time(accel_raw));
    m.pin_leaf(accel2, box2, p.link.transfer_time(accel_raw));
    m.pin_leaf(gps, box2, p.link.transfer_time(gps_raw));
    // c_up: shipping a stage's (much smaller) output.
    for c in [
        qrs, accel1, accel2, gps, hrv, activity, motion, location, fusion,
    ] {
        m.set_comm_up(c, p.link.transfer_time(features));
    }

    let sc = Scenario {
        name: "epilepsy-telemonitoring".into(),
        description: format!(
            "Context-aware epilepsy tele-monitoring (paper §1/Figure 1): PDA host, \
             2 sensor boxes, ECG {} Hz + 2×3-axis accelerometers {} Hz + GPS over a \
             Bluetooth-class link; PDA {}× slower on DSP kernels.",
            p.ecg_hz, p.accel_hz, p.pda_slowdown
        ),
        tree,
        costs: m,
    };
    debug_assert!(sc.validate().is_ok());
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_assign::{AllOnHost, Expanded, MaxOffload, Prepared, Solver};
    use hsa_graph::Lambda;

    #[test]
    fn scenario_validates() {
        let sc = epilepsy_scenario(&EpilepsyParams::default());
        sc.validate().unwrap();
        assert_eq!(sc.tree.len(), 10);
        assert_eq!(sc.tree.leaves_in_order().len(), 4);
    }

    #[test]
    fn offloading_beats_all_on_host_by_default() {
        // The scenario's raison d'être: shipping raw ECG over Bluetooth and
        // running DSP on the PDA must lose against near-sensor processing.
        let sc = epilepsy_scenario(&EpilepsyParams::default());
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let optimal = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let naive = AllOnHost.solve(&prep, Lambda::HALF).unwrap();
        assert!(
            optimal.delay() < naive.delay(),
            "optimal {} !< all-on-host {}",
            optimal.delay(),
            naive.delay()
        );
    }

    #[test]
    fn optimal_is_a_genuine_split() {
        // Neither extreme should be optimal with the default numbers: the
        // fusion stages belong on the PDA, the DSP leaves on the boxes.
        let sc = epilepsy_scenario(&EpilepsyParams::default());
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let optimal = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let offload = MaxOffload.solve(&prep, Lambda::HALF).unwrap();
        let naive = AllOnHost.solve(&prep, Lambda::HALF).unwrap();
        assert!(optimal.objective <= offload.objective);
        assert!(optimal.objective < naive.objective);
        assert!(!optimal.assignment.host.is_empty());
    }

    #[test]
    fn slower_pda_pushes_work_to_the_boxes() {
        let fast = epilepsy_scenario(&EpilepsyParams {
            pda_slowdown: 1,
            ..EpilepsyParams::default()
        });
        let slow = epilepsy_scenario(&EpilepsyParams {
            pda_slowdown: 50,
            ..EpilepsyParams::default()
        });
        let count_offloaded = |sc: &Scenario| {
            let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
            let sol = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
            sc.tree.len() - sol.assignment.host.len()
        };
        assert!(count_offloaded(&slow) >= count_offloaded(&fast));
    }
}
