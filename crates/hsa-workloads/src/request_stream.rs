//! **Request-stream workloads**: deterministic, open-loop, multi-tenant
//! traffic over an instance catalog — the workload behind the `t12`
//! service-throughput experiment and the `hsa-engine::Service` property
//! suite.
//!
//! A deployed service does not see batches; it sees a *stream*: solve,
//! frontier and delta requests interleaved across many instances, a few
//! of which are far hotter than the rest. [`request_stream`] turns that
//! into data:
//!
//! * **Instance catalog** — the built-in scenario [`catalog`](crate::catalog)
//!   plus `extra_instances` seeded random trees, ordered hottest-first;
//! * **Zipf-skewed hot keys** — each request picks its instance from a
//!   Zipf(`zipf_milli`/1000) distribution over catalog rank, the classic
//!   cache-workload shape (rank 1 dominates, a long cold tail follows);
//! * **Configurable mix** — `solve_permille` solves (each with its own λ
//!   off a grid), `frontier_permille` frontier queries, the remainder
//!   delta applications that drift the chosen instance's costs the way
//!   [`drift_trace`](crate::drift_trace) does;
//! * **Open-loop arrivals** — each request carries an absolute arrival
//!   time (`at_ns`, uniform gaps with mean `mean_gap_ns`): the schedule
//!   is fixed up front and never waits for completions, which is what
//!   makes saturation and backpressure observable at all.
//!
//! Identical configs produce identical streams. Per-instance delta order
//! is stream order; [`RequestStream::final_costs`] records where each
//! instance's cost model ends up after its whole delta stream, so a
//! replay can assert it drifted exactly as generated.

use crate::{catalog, random_scenario, Placement, RandomTreeParams, Scenario};
use hsa_graph::{Cost, Lambda};
use hsa_tree::{CostModel, CruId, CruTree, Delta, SatelliteId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Shape of a request stream.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Total requests in the stream.
    pub requests: usize,
    /// Seeded random instances appended to the built-in catalog.
    pub extra_instances: usize,
    /// CRUs per random instance.
    pub n_crus: usize,
    /// Zipf exponent, milli: request `instance` ranks are drawn with
    /// probability ∝ 1/rank^(zipf_milli/1000). 0 is uniform; 1000 the
    /// classic harmonic skew; larger values concentrate on rank 1.
    pub zipf_milli: u32,
    /// Per-mille of requests that are solves (each with a per-request λ).
    pub solve_permille: u32,
    /// Per-mille that are λ-frontier queries. The remainder (1000 −
    /// solve − frontier) are delta applications.
    pub frontier_permille: u32,
    /// λ grid resolution for solve/delta requests (λ = k/`lambda_steps`).
    pub lambda_steps: u32,
    /// Drift magnitude of delta requests, permille (see
    /// [`DriftConfig`](crate::DriftConfig)).
    pub drift_magnitude_permille: u32,
    /// Probability (permille) that a delta request additionally re-pins a
    /// random leaf (sensor churn).
    pub churn_permille: u32,
    /// Mean open-loop inter-arrival gap, nanoseconds (gaps are uniform on
    /// `[0, 2·mean]`, so the schedule is bursty but bounded).
    pub mean_gap_ns: u64,
    /// RNG seed; identical seeds reproduce the stream exactly.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            requests: 256,
            extra_instances: 4,
            n_crus: 24,
            zipf_milli: 1000,
            solve_permille: 700,
            frontier_permille: 100,
            lambda_steps: 8,
            drift_magnitude_permille: 100,
            churn_permille: 50,
            mean_gap_ns: 50_000,
            seed: 0x57EA,
        }
    }
}

/// What one request asks for.
#[derive(Clone, Debug)]
pub enum StreamOp {
    /// Solve the instance at this request's λ.
    Solve {
        /// The per-request objective weighting.
        lambda: Lambda,
    },
    /// The instance's full λ-frontier.
    Frontier,
    /// Drift the instance's costs, then solve at λ. Deltas of one
    /// instance apply in stream order.
    Delta {
        /// The perturbation (valid against the instance's tree, given
        /// every earlier delta of the same instance was applied first).
        delta: Delta,
        /// λ for the post-apply solve.
        lambda: Lambda,
    },
}

/// One request of the stream.
#[derive(Clone, Debug)]
pub struct StreamRequest {
    /// Absolute open-loop arrival time, nanoseconds from stream start.
    pub at_ns: u64,
    /// Index into [`RequestStream::instances`].
    pub instance: usize,
    /// The operation.
    pub op: StreamOp,
}

/// A generated stream: the catalog it runs over, the requests in arrival
/// order, and each instance's final drifted cost model.
#[derive(Clone, Debug)]
pub struct RequestStream {
    /// The instance catalog, hottest rank first.
    pub instances: Vec<Scenario>,
    /// The requests, sorted by `at_ns` (generation order).
    pub requests: Vec<StreamRequest>,
    /// Per-instance cost model after all of its deltas applied in stream
    /// order (equal to the base costs for instances that drew none).
    pub final_costs: Vec<CostModel>,
}

impl RequestStream {
    /// The catalog as shared `(tree, costs)` pairs, ready for the
    /// by-value service constructors (`Request::solve_arc` and friends)
    /// — one allocation per instance, shared across every request and
    /// worker that targets it.
    pub fn arc_instances(&self) -> Vec<(Arc<CruTree>, Arc<CostModel>)> {
        self.instances
            .iter()
            .map(|sc| (Arc::new(sc.tree.clone()), Arc::new(sc.costs.clone())))
            .collect()
    }

    /// How many requests target each instance (a Zipf shape check).
    pub fn per_instance_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.instances.len()];
        for r in &self.requests {
            counts[r.instance] += 1;
        }
        counts
    }
}

/// Cumulative fixed-point Zipf weights over `n` ranks: `cum[k]` is
/// `Σ_{j≤k} round(SCALE / (j+1)^s)`, so a uniform draw below `cum[n-1]`
/// binary-searches to its rank.
fn zipf_cumulative(n: usize, zipf_milli: u32) -> Vec<u64> {
    const SCALE: f64 = 1e9;
    let s = zipf_milli as f64 / 1000.0;
    let mut cum = Vec::with_capacity(n);
    let mut total = 0u64;
    for rank in 1..=n {
        let w = (SCALE / (rank as f64).powf(s)).round().max(1.0) as u64;
        total += w;
        cum.push(total);
    }
    cum
}

fn scaled(v: Cost, permille: u64) -> Cost {
    Cost::new(((v.ticks() as u128 * permille as u128) / 1000).min(u64::MAX as u128) as u64)
}

/// One node-level drift delta against `costs` (the same multiplicative
/// walk as [`drift_trace`](crate::drift_trace), recorded as absolute sets
/// so replays are order-robust per instance).
fn drift_delta(
    rng: &mut StdRng,
    sc: &Scenario,
    costs: &CostModel,
    magnitude_permille: u32,
    churn_permille: u32,
) -> Delta {
    let tree = &sc.tree;
    let m = magnitude_permille.min(999) as u64;
    let permille = rng.random_range((1000 - m)..=(1000 + m));
    let node = CruId(rng.random_range(0..tree.len() as u32));
    let mut delta = Delta::new()
        .set_host_time(node, scaled(costs.h(node), permille))
        .set_satellite_time(node, scaled(costs.s(node), permille));
    if node != tree.root() {
        delta = delta.set_comm_up(node, scaled(costs.c_up(node), permille));
    }
    if tree.is_leaf(node) {
        delta = delta.set_comm_raw(node, scaled(costs.c_raw(node), permille));
    }
    if costs.n_satellites() > 1 && rng.random_range(0..1000u32) < churn_permille {
        let leaves = tree.leaves_in_order();
        let leaf = leaves[rng.random_range(0..leaves.len())];
        let sat = SatelliteId(rng.random_range(0..costs.n_satellites()));
        delta = delta.repin(leaf, sat);
    }
    delta
}

/// Generates a deterministic multi-tenant request stream (see the module
/// docs).
pub fn request_stream(cfg: &StreamConfig) -> RequestStream {
    assert!(
        cfg.solve_permille + cfg.frontier_permille <= 1000,
        "solve + frontier permille must leave a non-negative delta share"
    );
    let mut instances = catalog();
    let placements = [
        Placement::Blocked,
        Placement::Interleaved,
        Placement::Random,
    ];
    for i in 0..cfg.extra_instances {
        instances.push(random_scenario(
            &RandomTreeParams {
                n_crus: cfg.n_crus.max(2),
                n_satellites: 3,
                placement: placements[i % placements.len()],
                ..RandomTreeParams::default()
            },
            cfg.seed.wrapping_add(1 + i as u64),
        ));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = zipf_cumulative(instances.len(), cfg.zipf_milli);
    let total_weight = *zipf.last().expect("catalog is never empty");
    let mut mirrors: Vec<CostModel> = instances.iter().map(|sc| sc.costs.clone()).collect();
    let steps = cfg.lambda_steps.max(1);
    let mut requests = Vec::with_capacity(cfg.requests);
    let mut at_ns = 0u64;
    for _ in 0..cfg.requests {
        at_ns += rng.random_range(0..=cfg.mean_gap_ns.saturating_mul(2));
        let draw = rng.random_range(0..total_weight);
        let instance = zipf.partition_point(|&cum| cum <= draw);
        let lambda = Lambda::new(rng.random_range(0..=steps), steps).expect("grid λ is valid");
        let kind = rng.random_range(0..1000u32);
        let op = if kind < cfg.solve_permille {
            StreamOp::Solve { lambda }
        } else if kind < cfg.solve_permille + cfg.frontier_permille {
            StreamOp::Frontier
        } else {
            let delta = drift_delta(
                &mut rng,
                &instances[instance],
                &mirrors[instance],
                cfg.drift_magnitude_permille,
                cfg.churn_permille,
            );
            delta
                .apply(&instances[instance].tree, &mut mirrors[instance])
                .expect("generated stream deltas are valid by construction");
            debug_assert!(mirrors[instance]
                .validate(&instances[instance].tree)
                .is_ok());
            StreamOp::Delta { delta, lambda }
        };
        requests.push(StreamRequest {
            at_ns,
            instance,
            op,
        });
    }
    RequestStream {
        instances,
        requests,
        final_costs: mirrors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let cfg = StreamConfig::default();
        let a = request_stream(&cfg);
        let b = request_stream(&cfg);
        assert_eq!(a.requests.len(), b.requests.len());
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.at_ns, y.at_ns);
            assert_eq!(x.instance, y.instance);
            match (&x.op, &y.op) {
                (StreamOp::Solve { lambda: l }, StreamOp::Solve { lambda: r }) => {
                    assert_eq!(l, r)
                }
                (StreamOp::Frontier, StreamOp::Frontier) => {}
                (StreamOp::Delta { delta: l, .. }, StreamOp::Delta { delta: r, .. }) => {
                    assert_eq!(l, r)
                }
                _ => panic!("op kinds diverged between identical configs"),
            }
        }
        assert_eq!(a.final_costs, b.final_costs);
        let other = request_stream(&StreamConfig {
            seed: 1,
            ..StreamConfig::default()
        });
        assert!(
            a.requests.len() == other.requests.len()
                && a.requests
                    .iter()
                    .zip(&other.requests)
                    .any(|(x, y)| x.instance != y.instance || x.at_ns != y.at_ns),
            "different seeds must produce different streams"
        );
    }

    #[test]
    fn zipf_skew_makes_rank_one_hot() {
        let stream = request_stream(&StreamConfig {
            requests: 600,
            ..StreamConfig::default()
        });
        let counts = stream.per_instance_counts();
        let hottest = counts[0];
        let coldest = *counts.last().unwrap();
        assert!(
            hottest >= 3 * coldest.max(1),
            "rank 1 must dominate the tail: {counts:?}"
        );
        assert_eq!(counts.iter().sum::<usize>(), 600);
    }

    #[test]
    fn mix_honours_the_permilles() {
        let stream = request_stream(&StreamConfig {
            requests: 1000,
            ..StreamConfig::default()
        });
        let (mut solves, mut frontiers, mut deltas) = (0, 0, 0);
        for r in &stream.requests {
            match r.op {
                StreamOp::Solve { .. } => solves += 1,
                StreamOp::Frontier => frontiers += 1,
                StreamOp::Delta { .. } => deltas += 1,
            }
        }
        // 700/100/200 expected; allow generous sampling slack.
        assert!((550..=850).contains(&solves), "solves {solves}");
        assert!((40..=200).contains(&frontiers), "frontiers {frontiers}");
        assert!((100..=320).contains(&deltas), "deltas {deltas}");
    }

    #[test]
    fn arrivals_are_monotone_and_open_loop() {
        let stream = request_stream(&StreamConfig::default());
        for w in stream.requests.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns, "arrival schedule must be sorted");
        }
    }

    #[test]
    fn replaying_deltas_per_instance_reaches_final_costs() {
        let stream = request_stream(&StreamConfig {
            requests: 300,
            solve_permille: 300,
            frontier_permille: 100,
            ..StreamConfig::default()
        });
        let mut mirrors: Vec<CostModel> =
            stream.instances.iter().map(|sc| sc.costs.clone()).collect();
        let mut applied = 0;
        for r in &stream.requests {
            if let StreamOp::Delta { delta, .. } = &r.op {
                delta
                    .apply(&stream.instances[r.instance].tree, &mut mirrors[r.instance])
                    .unwrap();
                mirrors[r.instance]
                    .validate(&stream.instances[r.instance].tree)
                    .unwrap();
                applied += 1;
            }
        }
        assert!(applied > 0, "the mix must contain deltas");
        assert_eq!(mirrors, stream.final_costs);
    }

    #[test]
    fn uniform_zipf_spreads_the_load() {
        let stream = request_stream(&StreamConfig {
            requests: 800,
            zipf_milli: 0,
            ..StreamConfig::default()
        });
        let counts = stream.per_instance_counts();
        let min = *counts.iter().min().unwrap();
        assert!(
            min * counts.len() >= 800 / 4,
            "s=0 must be roughly uniform: {counts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "permille")]
    fn overfull_mix_is_rejected() {
        request_stream(&StreamConfig {
            solve_permille: 900,
            frontier_permille: 200,
            ..StreamConfig::default()
        });
    }
}
