//! Heterogeneity sweeps: re-derive a scenario's cost model under different
//! host/satellite speed ratios and link qualities.
//!
//! Experiment T6 asks *when* distributing wins: as the host gets faster (or
//! the satellites/links slower), the optimal cut climbs towards all-on-host
//! and the advantage of the optimal assignment shrinks. These helpers apply
//! such transformations to any scenario without regenerating its shape, so
//! a sweep varies exactly one factor.

use crate::Scenario;
use hsa_graph::Cost;
use hsa_tree::CruId;

fn scaled(v: Cost, num: u64, den: u64) -> Cost {
    Cost::new(v.ticks().saturating_mul(num) / den)
}

/// Multiplies every *host* processing time by `num/den` (exact, rounding
/// down, minimum preserved at zero).
pub fn scale_host_times(sc: &Scenario, num: u64, den: u64) -> Scenario {
    assert!(den > 0, "zero denominator");
    let mut out = sc.clone();
    for i in 0..out.tree.len() {
        let c = CruId(i as u32);
        out.costs.set_host_time(c, scaled(out.costs.h(c), num, den));
    }
    out.name = format!("{}-host×{num}/{den}", sc.name);
    out
}

/// Multiplies every *satellite* processing time by `num/den`.
pub fn scale_satellite_times(sc: &Scenario, num: u64, den: u64) -> Scenario {
    assert!(den > 0, "zero denominator");
    let mut out = sc.clone();
    for i in 0..out.tree.len() {
        let c = CruId(i as u32);
        out.costs
            .set_satellite_time(c, scaled(out.costs.s(c), num, den));
    }
    out.name = format!("{}-sat×{num}/{den}", sc.name);
    out
}

/// Multiplies every communication time (`c_up` and `c_raw`) by `num/den` —
/// a link-quality sweep.
pub fn scale_comm_times(sc: &Scenario, num: u64, den: u64) -> Scenario {
    assert!(den > 0, "zero denominator");
    let mut out = sc.clone();
    for i in 0..out.tree.len() {
        let c = CruId(i as u32);
        out.costs
            .set_comm_up(c, scaled(out.costs.c_up(c), num, den));
        out.costs
            .set_comm_raw(c, scaled(out.costs.c_raw(c), num, den));
    }
    out.name = format!("{}-comm×{num}/{den}", sc.name);
    out
}

/// The standard heterogeneity sweep used by T6: host speed factors from
/// `4×` slower to `4×` faster in powers of two, as `(label, scenario)`.
pub fn host_speed_sweep(sc: &Scenario) -> Vec<(String, Scenario)> {
    [(4, 1), (2, 1), (1, 1), (1, 2), (1, 4)]
        .into_iter()
        .map(|(num, den)| (format!("host×{num}/{den}"), scale_host_times(sc, num, den)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{epilepsy_scenario, EpilepsyParams};
    use hsa_assign::{AllOnHost, Expanded, Prepared, Solver};
    use hsa_graph::Lambda;

    #[test]
    fn scaling_is_exact_and_validates() {
        let sc = epilepsy_scenario(&EpilepsyParams::default());
        let half = scale_host_times(&sc, 1, 2);
        half.validate().unwrap();
        for (a, b) in sc.costs.host_times().iter().zip(half.costs.host_times()) {
            assert_eq!(b.ticks(), a.ticks() / 2);
        }
        let double = scale_comm_times(&sc, 2, 1);
        for (a, b) in sc.costs.comm_raws().iter().zip(double.costs.comm_raws()) {
            assert_eq!(b.ticks(), a.ticks() * 2);
        }
    }

    #[test]
    fn fast_host_shrinks_the_offloading_advantage() {
        // The crossover claim behind T6: advantage(slow host) ≥
        // advantage(fast host), where advantage = all-on-host / optimal.
        let sc = epilepsy_scenario(&EpilepsyParams::default());
        let advantage = |s: &Scenario| {
            let prep = Prepared::new(&s.tree, &s.costs).unwrap();
            let opt = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
            let naive = AllOnHost.solve(&prep, Lambda::HALF).unwrap();
            naive.delay().ticks() as f64 / opt.delay().ticks().max(1) as f64
        };
        let slow = advantage(&scale_host_times(&sc, 4, 1));
        let fast = advantage(&scale_host_times(&sc, 1, 4));
        assert!(
            slow >= fast,
            "slow-host advantage {slow} < fast-host advantage {fast}"
        );
    }

    #[test]
    fn sweep_produces_distinct_scenarios() {
        let sc = epilepsy_scenario(&EpilepsyParams::default());
        let sweep = host_speed_sweep(&sc);
        assert_eq!(sweep.len(), 5);
        let names: std::collections::BTreeSet<_> =
            sweep.iter().map(|(_, s)| s.name.clone()).collect();
        assert_eq!(names.len(), 5);
        for (_, s) in &sweep {
            s.validate().unwrap();
        }
    }
}
