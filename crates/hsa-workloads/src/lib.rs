//! # hsa-workloads — scenarios and instance families
//!
//! The paper motivates its algorithm with concrete systems; this crate
//! builds them as costed, pinned CRU trees ([`Scenario`]):
//!
//! * [`epilepsy_scenario`] — the §1/Figure 1 epilepsy tele-monitoring
//!   application (PDA + sensor boxes over Bluetooth-class links);
//! * [`snmp_scenario`] — the §3 SNMP network-monitoring observation;
//! * [`industrial_scenario`] — Bokhari-style production-line chains (deep
//!   chains ⇒ parallel-edge bundles in the assignment graph);
//! * [`paper_scenario`] — the Figure 2 worked example itself;
//! * [`random_scenario`] — seeded random families with independently
//!   controlled shape and sensor placement ([`Placement`]), the axes the
//!   benchmark sweeps (T1/T2/T5/T6) walk;
//! * cost-generation helpers ([`host_speed_sweep`], [`scale_host_times`]
//!   and friends) — heterogeneity/link sweeps over any scenario;
//! * [`drift_trace`] — deterministic random-walk drift + satellite churn
//!   over any scenario, as replayable [`hsa_tree::Delta`] traces (the T11
//!   incremental re-solve workload);
//! * [`request_stream`] — deterministic open-loop multi-tenant request
//!   streams (Zipf-skewed hot instances, configurable
//!   solve/frontier/delta mix) for the service layer (the T12 workload).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cost_gen;
mod drift;
mod epilepsy;
mod industrial;
mod random_tree;
mod request_stream;
mod scenario;
mod snmp;

pub use cost_gen::{host_speed_sweep, scale_comm_times, scale_host_times, scale_satellite_times};
pub use drift::{drift_trace, DriftConfig, DriftTrace};
pub use epilepsy::{epilepsy_scenario, EpilepsyParams};
pub use industrial::{industrial_scenario, IndustrialParams};
pub use random_tree::{random_instance, random_scenario, Placement, RandomTreeParams};
pub use request_stream::{request_stream, RequestStream, StreamConfig, StreamOp, StreamRequest};
pub use scenario::{catalog, paper_scenario, Scenario};
pub use snmp::{snmp_scenario, SnmpParams};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        catalog, drift_trace, epilepsy_scenario, industrial_scenario, paper_scenario,
        random_scenario, request_stream, snmp_scenario, DriftConfig, DriftTrace, EpilepsyParams,
        IndustrialParams, Placement, RandomTreeParams, RequestStream, Scenario, SnmpParams,
        StreamConfig, StreamOp, StreamRequest,
    };
}
