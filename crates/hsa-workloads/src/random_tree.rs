//! Seeded random instance families for benchmarks and property tests.
//!
//! Shapes (depth/fan-out) and the *placement* of sensors onto satellites
//! are controlled independently: `Blocked` placement gives each satellite a
//! contiguous run of leaves (the regime where the paper's contiguous
//! expansion suffices), `Interleaved` deals leaves round-robin (maximally
//! scattered colours — the regime requiring the joint branch completion),
//! and `Random` sits in between. Experiment T2 sweeps exactly this axis.

use crate::Scenario;
use hsa_graph::Cost;
use hsa_tree::{CostModel, CruId, CruTree, SatelliteId, TreeBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How leaves are pinned to satellites.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Contiguous blocks of leaves per satellite (single band each).
    Blocked,
    /// Round-robin: leaf `i` → satellite `i mod n` (maximal interleaving).
    Interleaved,
    /// Uniformly random pinning.
    Random,
}

/// Parameters of the random-tree family.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RandomTreeParams {
    /// Total number of CRUs (≥ 2).
    pub n_crus: usize,
    /// Maximum children per node (≥ 1); 1 degenerates to a chain.
    pub max_children: usize,
    /// Number of satellites (≥ 1).
    pub n_satellites: u32,
    /// Sensor placement policy.
    pub placement: Placement,
    /// Work-unit range for processing times (µs).
    pub work_range: (u64, u64),
    /// How many times slower the host is than a satellite on leaf-side
    /// work, ×10 (so 25 means 2.5×). Values < 10 make the host faster.
    pub host_slowdown_tenths: u64,
    /// Communication cost range (µs).
    pub comm_range: (u64, u64),
    /// Raw sensor transfers are this many times the processed comm cost.
    pub raw_factor: u64,
}

impl Default for RandomTreeParams {
    fn default() -> Self {
        RandomTreeParams {
            n_crus: 30,
            max_children: 3,
            n_satellites: 4,
            placement: Placement::Blocked,
            work_range: (500, 5_000),
            host_slowdown_tenths: 20,
            comm_range: (200, 2_000),
            raw_factor: 6,
        }
    }
}

/// Generates one random instance; identical `(params, seed)` pairs produce
/// identical scenarios.
pub fn random_scenario(p: &RandomTreeParams, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = p.n_crus.max(2);
    let maxc = p.max_children.max(1);

    // Random ordered tree: attach node i under a uniformly random node with
    // remaining child capacity, preferring recent nodes for depth variety.
    let mut b = TreeBuilder::new("cru0");
    let mut open: Vec<CruId> = vec![b.root()];
    let mut child_count = vec![0usize; n];
    for i in 1..n {
        let pick = if open.len() > 1 && rng.random_bool(0.5) {
            // Bias towards the most recent open node → deeper trees.
            open.len() - 1
        } else {
            rng.random_range(0..open.len())
        };
        let parent = open[pick];
        let id = b.add_child(parent, format!("cru{i}"));
        child_count[parent.index()] += 1;
        if child_count[parent.index()] >= maxc {
            open.remove(pick);
        }
        open.push(id);
    }
    let tree = b.build();

    let mut m = CostModel::zeroed(&tree, p.n_satellites.max(1));
    let (wlo, whi) = (
        p.work_range.0.max(1),
        p.work_range.1.max(p.work_range.0 + 1),
    );
    let (clo, chi) = (
        p.comm_range.0.max(1),
        p.comm_range.1.max(p.comm_range.0 + 1),
    );
    for c in tree.preorder() {
        let work = rng.random_range(wlo..whi);
        m.set_satellite_time(c, Cost::new(work));
        m.set_host_time(c, Cost::new(work * p.host_slowdown_tenths / 10));
        if c != tree.root() {
            m.set_comm_up(c, Cost::new(rng.random_range(clo..chi)));
        }
    }
    let leaves = tree.leaves_in_order();
    let k = p.n_satellites.max(1);
    for (i, &l) in leaves.iter().enumerate() {
        let sat = match p.placement {
            Placement::Blocked => SatelliteId(((i as u64 * k as u64) / leaves.len() as u64) as u32),
            Placement::Interleaved => SatelliteId(i as u32 % k),
            Placement::Random => SatelliteId(rng.random_range(0..k)),
        };
        let raw = rng.random_range(clo..chi) * p.raw_factor.max(1);
        m.pin_leaf(l, sat, Cost::new(raw));
    }

    let sc = Scenario {
        name: format!("random-{seed}"),
        description: format!(
            "Random instance: {} CRUs, ≤{} children, {} satellites, {:?} placement, seed {}.",
            n, maxc, k, p.placement, seed
        ),
        tree,
        costs: m,
    };
    debug_assert!(sc.validate().is_ok(), "{:?}", sc.validate());
    sc
}

/// Convenience: the underlying tree/cost pair.
pub fn random_instance(p: &RandomTreeParams, seed: u64) -> (CruTree, CostModel) {
    let sc = random_scenario(p, seed);
    (sc.tree, sc.costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_tree::Colouring;

    #[test]
    fn deterministic_per_seed() {
        let p = RandomTreeParams::default();
        assert_eq!(random_scenario(&p, 11), random_scenario(&p, 11));
        assert_ne!(random_scenario(&p, 11), random_scenario(&p, 12));
    }

    #[test]
    fn respects_size_and_fanout() {
        let p = RandomTreeParams {
            n_crus: 40,
            max_children: 2,
            ..RandomTreeParams::default()
        };
        for seed in 0..10 {
            let sc = random_scenario(&p, seed);
            sc.validate().unwrap();
            assert_eq!(sc.tree.len(), 40);
            for c in sc.tree.preorder() {
                assert!(sc.tree.children(c).len() <= 2);
            }
        }
    }

    #[test]
    fn blocked_placement_is_contiguous() {
        let p = RandomTreeParams {
            placement: Placement::Blocked,
            ..RandomTreeParams::default()
        };
        for seed in 0..10 {
            let sc = random_scenario(&p, seed);
            let col = Colouring::compute(&sc.tree, &sc.costs).unwrap();
            assert!(col.is_contiguous(), "seed {seed}");
        }
    }

    #[test]
    fn interleaved_placement_interleaves() {
        let p = RandomTreeParams {
            n_crus: 30,
            n_satellites: 3,
            placement: Placement::Interleaved,
            ..RandomTreeParams::default()
        };
        // With ≥ 2·k leaves, round-robin must produce multi-band colours.
        for seed in 0..10 {
            let sc = random_scenario(&p, seed);
            let col = Colouring::compute(&sc.tree, &sc.costs).unwrap();
            if col.leaf_colours.len() >= 6 {
                assert!(!col.is_contiguous(), "seed {seed}");
            }
        }
    }

    #[test]
    fn chain_degenerate_case() {
        let p = RandomTreeParams {
            n_crus: 10,
            max_children: 1,
            n_satellites: 1,
            ..RandomTreeParams::default()
        };
        let sc = random_scenario(&p, 0);
        assert_eq!(sc.tree.leaves_in_order().len(), 1);
        assert_eq!(sc.tree.depths().iter().max(), Some(&9));
    }
}
