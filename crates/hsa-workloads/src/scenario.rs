//! Named, serialisable problem instances.

use hsa_tree::{CostModel, CruTree, TreeError};
use serde::{Deserialize, Serialize};

/// A complete, self-describing problem instance: a costed, pinned CRU tree
/// with provenance.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct Scenario {
    /// Stable identifier (used by the repro harness and benches).
    pub name: String,
    /// Human-readable provenance: what the instance models and where its
    /// numbers come from.
    pub description: String,
    /// The CRU tree.
    pub tree: CruTree,
    /// Its cost model.
    pub costs: CostModel,
}

impl Scenario {
    /// Validates the instance (tree shape + cost coverage).
    pub fn validate(&self) -> Result<(), TreeError> {
        self.tree.validate()?;
        self.costs.validate(&self.tree)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialisation cannot fail")
    }

    /// Deserialises and validates.
    pub fn from_json(s: &str) -> Result<Scenario, String> {
        let sc: Scenario = serde_json::from_str(s).map_err(|e| e.to_string())?;
        sc.validate().map_err(|e| e.to_string())?;
        Ok(sc)
    }
}

/// The built-in catalog: one instance per scenario family, with defaults.
pub fn catalog() -> Vec<Scenario> {
    vec![
        crate::epilepsy_scenario(&crate::EpilepsyParams::default()),
        crate::snmp_scenario(&crate::SnmpParams::default()),
        crate::industrial_scenario(&crate::IndustrialParams::default()),
        crate::paper_scenario(),
    ]
}

/// The paper's own Figure 2 worked example, as a scenario.
pub fn paper_scenario() -> Scenario {
    let (tree, costs) = hsa_tree::figures::fig2_tree();
    Scenario {
        name: "paper-fig2".into(),
        description: "Canonical reconstruction of the paper's Figure 2/5/8 worked example \
                      (13 CRUs, 4 satellites R/Y/B/G, satellite B pinned under two subtrees)."
            .into(),
        tree,
        costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_entries_validate_and_round_trip() {
        let cat = catalog();
        assert!(cat.len() >= 4);
        let mut names = std::collections::BTreeSet::new();
        for sc in &cat {
            sc.validate().unwrap();
            assert!(names.insert(sc.name.clone()), "duplicate name {}", sc.name);
            let back = Scenario::from_json(&sc.to_json()).unwrap();
            assert_eq!(&back, sc);
        }
    }

    #[test]
    fn from_json_rejects_invalid() {
        assert!(Scenario::from_json("{}").is_err());
        // Valid JSON, broken instance: unpinned leaf.
        let mut sc = paper_scenario();
        sc.costs.set_pinning(hsa_tree::CruId(8), None); // CRU9 (a leaf)
        let s = sc.to_json();
        assert!(Scenario::from_json(&s).is_err());
    }
}
