//! SNMP-style network monitoring (the paper's §3 names SNMP monitoring as
//! a second source of tree-structured reasoning procedures).
//!
//! A management station (**host**) supervises `n_agents` managed devices
//! (**satellites**). Per device, a chain of CRUs refines raw MIB counters:
//! poll → delta/rate computation → threshold detection. The root correlates
//! device healths into a network-health context.
//!
//! ```text
//!                network-health            (root)
//!               /      |       \
//!        dev0-health  dev1-health  …      (one per device)
//!             |            |
//!        dev0-rates    dev1-rates
//!             |            |
//!        [dev0-poll]  [dev1-poll]         (leaves, pinned per device)
//! ```

use crate::Scenario;
use hsa_graph::Cost;
use hsa_sim::LinkProfile;
use hsa_tree::{CostModel, SatelliteId, TreeBuilder};

/// Parameters of the SNMP monitoring instance.
#[derive(Clone, Copy, Debug)]
pub struct SnmpParams {
    /// Number of managed devices (satellites).
    pub n_agents: usize,
    /// MIB table size per poll (variables).
    pub mib_vars: usize,
    /// Link between devices and the manager.
    pub link: LinkProfile,
}

impl Default for SnmpParams {
    fn default() -> Self {
        SnmpParams {
            n_agents: 4,
            mib_vars: 200,
            link: LinkProfile::WIFI,
        }
    }
}

/// Builds the SNMP monitoring scenario.
pub fn snmp_scenario(p: &SnmpParams) -> Scenario {
    let n = p.n_agents.max(1);
    let mut b = TreeBuilder::new("network-health");
    let root = b.root();
    let mut leaves = Vec::new();
    for d in 0..n {
        let health = b.add_child(root, format!("dev{d}-health"));
        let rates = b.add_child(health, format!("dev{d}-rates"));
        let poll = b.add_child(rates, format!("dev{d}-poll"));
        leaves.push(poll);
    }
    let tree = b.build();

    let mut m = CostModel::zeroed(&tree, n as u32);
    // Raw MIB dump ≈ 32 bytes/var; rates output ≈ 8 bytes/var; health ≈ 64 B.
    let raw_bytes = 32 * p.mib_vars;
    let rate_bytes = 8 * p.mib_vars;
    let health_bytes = 64;

    // Device CPUs are slow embedded cores: 3× slower than the manager on
    // the same work, but polling locally avoids shipping the MIB dump.
    let per_var = |us_each: u64| Cost::new(us_each * p.mib_vars as u64);
    m.set_host_time(root, Cost::new(2_000 * n as u64));
    m.set_satellite_time(root, Cost::new(6_000 * n as u64));
    for (d, &poll) in leaves.iter().enumerate() {
        let rates = tree.parent(poll).unwrap();
        let health = tree.parent(rates).unwrap();
        // poll: reading the MIB is cheap on-device, expensive remotely
        // (modelled as host time incl. request round-trips).
        m.set_satellite_time(poll, per_var(5));
        m.set_host_time(poll, per_var(15));
        m.set_satellite_time(rates, per_var(12));
        m.set_host_time(rates, per_var(4));
        m.set_satellite_time(health, Cost::new(9_000));
        m.set_host_time(health, Cost::new(3_000));
        m.pin_leaf(poll, SatelliteId(d as u32), p.link.transfer_time(raw_bytes));
        m.set_comm_up(poll, p.link.transfer_time(raw_bytes));
        m.set_comm_up(rates, p.link.transfer_time(rate_bytes));
        m.set_comm_up(health, p.link.transfer_time(health_bytes));
    }

    let sc = Scenario {
        name: "snmp-monitoring".into(),
        description: format!(
            "SNMP network monitoring (paper §3): manager host, {} managed devices, \
             {}-variable MIB polls refined on-device into rates and health flags.",
            n, p.mib_vars
        ),
        tree,
        costs: m,
    };
    debug_assert!(sc.validate().is_ok());
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_assign::{AllOnHost, Expanded, Prepared, Solver};
    use hsa_graph::Lambda;

    #[test]
    fn scenario_shape_scales_with_agents() {
        for n in [1usize, 3, 8] {
            let sc = snmp_scenario(&SnmpParams {
                n_agents: n,
                ..SnmpParams::default()
            });
            sc.validate().unwrap();
            assert_eq!(sc.tree.len(), 1 + 3 * n);
            assert_eq!(sc.tree.leaves_in_order().len(), n);
        }
    }

    #[test]
    fn every_agent_chain_is_single_coloured() {
        let sc = snmp_scenario(&SnmpParams::default());
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        // Only the root should conflict.
        assert_eq!(prep.colouring.host_forced.len(), 1);
        assert!(prep.colouring.is_contiguous());
    }

    #[test]
    fn distributed_polling_beats_central_polling() {
        let sc = snmp_scenario(&SnmpParams::default());
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let optimal = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let central = AllOnHost.solve(&prep, Lambda::HALF).unwrap();
        assert!(optimal.delay() < central.delay());
    }

    #[test]
    fn more_agents_do_not_reduce_host_share() {
        // With more devices the host aggregation grows linearly while each
        // satellite's share is constant — sanity of the cost model.
        let small = snmp_scenario(&SnmpParams {
            n_agents: 2,
            ..SnmpParams::default()
        });
        let large = snmp_scenario(&SnmpParams {
            n_agents: 6,
            ..SnmpParams::default()
        });
        let host_time = |sc: &Scenario| {
            let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
            Expanded::default()
                .solve(&prep, Lambda::HALF)
                .unwrap()
                .report
                .host_time
        };
        assert!(host_time(&large) >= host_time(&small));
    }
}
