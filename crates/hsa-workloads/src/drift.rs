//! **Drift workloads**: deterministic random-walk perturbation traces for
//! a fixed reasoning tree — the workload behind the incremental re-solve
//! experiment (T11) and the `hsa-engine::Session` property suite.
//!
//! A real deployment's instance drifts between solves: per-CRU costs
//! follow the sensor rates up and down, whole branches get busier,
//! satellites slow down, and sensors churn between boxes. [`drift_trace`]
//! turns that into data: `steps` consecutive [`Delta`]s over a base
//! [`Scenario`], each step scaling a few randomly chosen cost entries by a
//! factor drawn from `[1 − m, 1 + m]` (a multiplicative random walk with
//! magnitude `m`), occasionally scaling a whole subtree, and occasionally
//! re-pinning a leaf to a different satellite. Identical
//! `(scenario, config)` pairs produce identical traces.

use crate::Scenario;
use hsa_graph::Cost;
use hsa_tree::{CostModel, CruId, Delta, SatelliteId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape of a drift trace.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Number of perturbation steps.
    pub steps: usize,
    /// Drift magnitude, permille: each touched entry scales by a factor
    /// drawn uniformly from `[1000 − m, 1000 + m] / 1000`. 100 ≈ ±10%.
    /// Capped at 999 (a multiplicative walk's factor cannot go negative).
    pub magnitude_permille: u32,
    /// Cost entries perturbed per step (locality axis: 1 is a gentle
    /// sensor-rate wobble, larger values approach global re-costing).
    pub touched_per_step: usize,
    /// Probability (permille) that a touch scales a whole random subtree
    /// instead of one node's entries.
    pub subtree_permille: u32,
    /// Probability (permille) that a step additionally re-pins a random
    /// leaf to a random satellite (**churn**).
    pub churn_permille: u32,
    /// RNG seed; identical seeds reproduce the trace exactly.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            steps: 32,
            magnitude_permille: 100,
            touched_per_step: 1,
            subtree_permille: 100,
            churn_permille: 50,
            seed: 0xD81F,
        }
    }
}

/// A generated drift trajectory: the per-step deltas plus the cost model
/// the base drifts into after all of them (for cross-checking replays).
#[derive(Clone, Debug)]
pub struct DriftTrace {
    /// One delta per step, in order.
    pub deltas: Vec<Delta>,
    /// The cost model after applying every delta to the base scenario.
    pub final_costs: CostModel,
}

fn scaled(v: Cost, permille: u64) -> Cost {
    Cost::new(((v.ticks() as u128 * permille as u128) / 1000).min(u64::MAX as u128) as u64)
}

/// Generates a deterministic drift trace over `base` (whose tree topology
/// is never changed — only costs and pinnings drift).
///
/// Deltas use *absolute* `Set…` ops for single-entry touches (so a trace
/// replays identically from the base no matter who applies it) and
/// `ScaleSubtree` / `Repin` ops for the branch-level and churn events.
/// Every intermediate cost model validates against the tree.
pub fn drift_trace(base: &Scenario, cfg: &DriftConfig) -> DriftTrace {
    let tree = &base.tree;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut costs = base.costs.clone();
    let leaves = tree.leaves_in_order();
    let n = tree.len();
    let m = cfg.magnitude_permille.min(999) as u64;
    let mut deltas = Vec::with_capacity(cfg.steps);
    for _ in 0..cfg.steps {
        let mut delta = Delta::new();
        for _ in 0..cfg.touched_per_step.max(1) {
            let permille = rng.random_range((1000 - m)..=(1000 + m));
            if rng.random_range(0..1000u32) < cfg.subtree_permille && n > 1 {
                // Branch-level drift: scale a random non-root subtree.
                let root = CruId(rng.random_range(1..n as u32));
                delta = delta.scale_subtree(root, permille as u32, 1000);
            } else {
                // Node-level drift: walk one node's entries multiplicatively,
                // recorded as absolute sets.
                let node = CruId(rng.random_range(0..n as u32));
                delta = delta
                    .set_host_time(node, scaled(costs.h(node), permille))
                    .set_satellite_time(node, scaled(costs.s(node), permille));
                if node != tree.root() {
                    delta = delta.set_comm_up(node, scaled(costs.c_up(node), permille));
                }
                if tree.is_leaf(node) {
                    delta = delta.set_comm_raw(node, scaled(costs.c_raw(node), permille));
                }
            }
        }
        if costs.n_satellites() > 1 && rng.random_range(0..1000u32) < cfg.churn_permille {
            let leaf = leaves[rng.random_range(0..leaves.len())];
            let sat = SatelliteId(rng.random_range(0..costs.n_satellites()));
            delta = delta.repin(leaf, sat);
        }
        delta
            .apply(tree, &mut costs)
            .expect("generated drift deltas are valid by construction");
        debug_assert!(costs.validate(tree).is_ok());
        deltas.push(delta);
    }
    DriftTrace {
        deltas,
        final_costs: costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_scenario;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let sc = paper_scenario();
        let cfg = DriftConfig::default();
        let a = drift_trace(&sc, &cfg);
        let b = drift_trace(&sc, &cfg);
        assert_eq!(a.deltas, b.deltas);
        assert_eq!(a.final_costs, b.final_costs);
        let other = drift_trace(&sc, &DriftConfig { seed: 1, ..cfg });
        assert_ne!(a.deltas, other.deltas);
    }

    #[test]
    fn replaying_the_trace_reaches_final_costs() {
        let sc = paper_scenario();
        let trace = drift_trace(
            &sc,
            &DriftConfig {
                steps: 20,
                churn_permille: 300,
                ..DriftConfig::default()
            },
        );
        assert_eq!(trace.deltas.len(), 20);
        let mut costs = sc.costs.clone();
        for d in &trace.deltas {
            assert!(!d.is_empty());
            d.apply(&sc.tree, &mut costs).unwrap();
            costs.validate(&sc.tree).unwrap();
        }
        assert_eq!(costs, trace.final_costs);
    }

    #[test]
    fn zero_magnitude_traces_only_churn_or_noop() {
        let sc = paper_scenario();
        let trace = drift_trace(
            &sc,
            &DriftConfig {
                steps: 10,
                magnitude_permille: 0,
                subtree_permille: 0,
                churn_permille: 0,
                ..DriftConfig::default()
            },
        );
        // Scale factor is pinned to 1000/1000: the walk never moves.
        assert_eq!(trace.final_costs, sc.costs);
    }

    #[test]
    fn churn_actually_repins_over_a_long_trace() {
        let sc = paper_scenario();
        let trace = drift_trace(
            &sc,
            &DriftConfig {
                steps: 64,
                churn_permille: 500,
                ..DriftConfig::default()
            },
        );
        let repins = trace
            .deltas
            .iter()
            .flat_map(|d| d.ops())
            .filter(|op| matches!(op, hsa_tree::DeltaOp::Repin { .. }))
            .count();
        assert!(
            repins > 0,
            "500‰ churn over 64 steps must repin at least once"
        );
    }
}
