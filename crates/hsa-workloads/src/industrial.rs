//! Bokhari-style "industrial" chains (the paper's §2 credits Bokhari's
//! industrial cases as a structural ancestor; deep chains are the regime
//! where the assignment graph degenerates into long parallel-edge bundles,
//! stressing the multigraph machinery and the expansion step).
//!
//! `n_lines` production lines hang off the root; each line is a chain of
//! `stages` refinement CRUs ending in one sensor leaf pinned to that line's
//! controller (satellite). Every chain edge shares one leaf interval, so
//! each line contributes `stages + 1` **parallel dual edges** — the paper's
//! |E| grows while |V| stays tiny.

use crate::Scenario;
use hsa_graph::Cost;
use hsa_tree::{CostModel, SatelliteId, TreeBuilder};

/// Parameters of the industrial-chains instance.
#[derive(Clone, Copy, Debug)]
pub struct IndustrialParams {
    /// Number of production lines (satellites).
    pub n_lines: usize,
    /// Chain length per line (CRUs above the sensor leaf).
    pub stages: usize,
    /// Work units per stage; later stages shrink data and cost.
    pub base_work_us: u64,
}

impl Default for IndustrialParams {
    fn default() -> Self {
        IndustrialParams {
            n_lines: 3,
            stages: 5,
            base_work_us: 2_000,
        }
    }
}

/// Builds the industrial-chains scenario.
pub fn industrial_scenario(p: &IndustrialParams) -> Scenario {
    let lines = p.n_lines.max(1);
    let stages = p.stages.max(1);
    let mut b = TreeBuilder::new("plant-overview");
    let root = b.root();
    let mut all = Vec::new();
    for l in 0..lines {
        let mut at = root;
        let mut chain = Vec::new();
        for s in 0..stages {
            at = b.add_child(at, format!("line{l}-stage{s}"));
            chain.push(at);
        }
        all.push(chain);
    }
    let tree = b.build();

    let mut m = CostModel::zeroed(&tree, lines as u32);
    m.set_host_time(root, Cost::new(p.base_work_us * lines as u64));
    m.set_satellite_time(root, Cost::new(3 * p.base_work_us * lines as u64));
    for (l, chain) in all.iter().enumerate() {
        // Lines are asymmetric: line l carries (l+1)× the work. The heavy
        // line dominates the bottleneck, so the optimum offloads light
        // lines whole and splits the heavy one — a genuine mid-chain cut.
        let line_weight = l as u64 + 1;
        for (s, &c) in chain.iter().enumerate() {
            // Deeper stages (closer to the sensor) are heavier: raw signal
            // processing shrinks data volume stage by stage.
            let depth_factor = s as u64 + 1;
            let work = Cost::new(p.base_work_us * depth_factor * line_weight);
            // Line controllers are slow embedded DSPs: 2× slower than the
            // plant server (host) on stage work — offloading buys
            // parallelism and smaller messages, not faster cores.
            m.set_satellite_time(c, work.saturating_mul(2));
            m.set_host_time(c, work);
            // Output volume shrinks with height: comm cost ∝ depth factor.
            m.set_comm_up(c, Cost::new(500 * depth_factor));
        }
        let leaf = *chain.last().expect("stages >= 1");
        m.pin_leaf(
            leaf,
            SatelliteId(l as u32),
            Cost::new(500 * (stages as u64 + 2) * line_weight),
        );
    }

    let sc = Scenario {
        name: "industrial-chains".into(),
        description: format!(
            "Bokhari-style industrial monitoring: {} production lines, {}-stage \
             refinement chains; chains yield bundles of parallel assignment-graph \
             edges.",
            lines, stages
        ),
        tree,
        costs: m,
    };
    debug_assert!(sc.validate().is_ok());
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_assign::{BruteForce, Expanded, PaperSsb, Prepared, Solver};
    use hsa_graph::Lambda;

    #[test]
    fn chains_create_parallel_dual_edges() {
        let p = IndustrialParams {
            n_lines: 2,
            stages: 4,
            ..IndustrialParams::default()
        };
        let sc = industrial_scenario(&p);
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        // Each line: 4 chain edges + 1 sensor edge between the same gaps.
        assert_eq!(prep.graph.n_leaves, 2);
        assert_eq!(prep.graph.n_edges(), 2 * 5);
        // All 5 edges of line 0 connect gap 0 to gap 1.
        let between_0_1 = prep
            .graph
            .edges
            .iter()
            .filter(|e| e.from_gap == 0 && e.to_gap == 1)
            .count();
        assert_eq!(between_0_1, 5);
    }

    #[test]
    fn solvers_agree_on_chain_instances() {
        for (lines, stages) in [(1, 6), (2, 4), (3, 3)] {
            let sc = industrial_scenario(&IndustrialParams {
                n_lines: lines,
                stages,
                ..IndustrialParams::default()
            });
            let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
            let brute = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
            let exp = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
            let paper = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
            assert_eq!(brute.objective, exp.objective);
            assert_eq!(brute.objective, paper.objective);
        }
    }

    #[test]
    fn optimal_cut_is_mid_chain() {
        // Heavier deep stages on fast controllers, light shallow stages on
        // the host: the optimum should cut somewhere strictly inside the
        // chains with the default numbers.
        let sc = industrial_scenario(&IndustrialParams::default());
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let sol = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let n_host = sol.assignment.host.len();
        assert!(n_host > 1, "nothing offloaded");
        assert!(n_host < sc.tree.len(), "nothing on host");
    }
}
