//! Measures what cache-line padding buys the engine's counter banks.
//!
//! `N` threads each hammer *their own* `AtomicU64` — no logical sharing at
//! all — first with the counters packed adjacently (eight per cache line,
//! the layout `EngineCounters` had before [`CachePadded`]), then with each
//! counter on its own 64-byte line. Any slowdown in the packed run is pure
//! false sharing: cores stealing a line from each other to write values
//! the other core never reads.
//!
//! Run with `cargo run --release -p hsa-engine --example contended_counters`.
//! On a single-core host the two layouts tie (there is no second core to
//! ping-pong with); the gap opens with physical parallelism.

use hsa_engine::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const ITERS: u64 = 2_000_000;

/// Spawns one thread per counter, each incrementing only its own slot,
/// and returns mean wall nanoseconds per increment across all threads.
fn hammer<B: Send + Sync + 'static>(bank: Arc<B>, pick: fn(&B, usize) -> &AtomicU64) -> f64 {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get().min(4))
        .unwrap_or(1);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let bank = Arc::clone(&bank);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..ITERS {
                    pick(&bank, i).fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("hammer thread panicked");
    }
    start.elapsed().as_nanos() as f64 / (ITERS * threads as u64) as f64
}

fn main() {
    let packed: Arc<[AtomicU64; 8]> = Arc::new(Default::default());
    let padded: Arc<[CachePadded<AtomicU64>; 8]> = Arc::new(Default::default());

    // Warm-up pass to settle frequency scaling, then the measured passes.
    hammer(Arc::clone(&packed), |b, i| &b[i]);
    let packed_ns = hammer(packed, |b, i| &b[i]);
    let padded_ns = hammer(padded, |b, i| &b[i]);

    println!("threads hammering disjoint counters, {ITERS} increments each");
    println!("  packed  (8 per line):  {packed_ns:7.2} ns/op");
    println!("  padded  (1 per line):  {padded_ns:7.2} ns/op");
    println!("  packed/padded ratio:   {:7.2}x", packed_ns / padded_ns);
}
