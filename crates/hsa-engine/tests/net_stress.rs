//! Multi-connection stress of the reactor front door (DESIGN.md §15):
//! many concurrent clients with interleaved pipelined bursts, slow
//! readers, half-closing peers, a saturated service gate — every answer
//! byte-identical to the in-process service, no reply ever leaking
//! across connections, and a clean shutdown that leaks neither fds nor
//! threads.

use hsa_engine::net::wire::{self, NetReply, ReadFrame};
use hsa_engine::net::{Client, ClientError, NetConfig, NetServer};
use hsa_engine::{Engine, EngineConfig, Request, Service, ServiceConfig};
use hsa_graph::Lambda;
use hsa_tree::{CostModel, CruTree};
use hsa_workloads::{random_instance, Placement, RandomTreeParams};
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 64;
const BURSTS: usize = 3;
const BURST_LEN: usize = 4;

fn instance_for(client: usize) -> (CruTree, CostModel) {
    random_instance(
        &RandomTreeParams {
            n_crus: 10,
            n_satellites: 3,
            placement: Placement::Random,
            ..RandomTreeParams::default()
        },
        9000 + client as u64,
    )
}

fn lambda_for(client: usize, i: usize) -> Lambda {
    Lambda::new(u32::try_from((client + i) % 9).unwrap(), 8).unwrap()
}

/// The canonical wire JSON the in-process service answers for one
/// request — computed on a reference service so the loopback answers
/// can be compared byte-for-byte.
fn expected_json(reference: &Service, requests: &[Request]) -> Vec<String> {
    requests
        .iter()
        .map(|req| {
            let reply = reference
                .submit(req.clone())
                .wait()
                .expect("reference replay cannot fail");
            wire::reply_json(&reply)
        })
        .collect()
}

fn service(cfg: ServiceConfig) -> Arc<Service> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    Arc::new(Service::new(engine, cfg))
}

#[cfg(target_os = "linux")]
fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count())
        .unwrap_or(0)
}

#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

/// 64 concurrent clients, each with its own instance, pipelining bursts
/// against a deliberately shallow service gate (so saturation parks are
/// exercised). A quarter of the clients read slowly; another quarter
/// half-close after their last burst and still drain every answer.
#[test]
fn stress_many_connections_byte_identical_no_leaks() {
    #[cfg(target_os = "linux")]
    let (fds_before, threads_before) = (fd_count(), thread_count());

    {
        let svc = service(ServiceConfig {
            workers: 2,
            queue_capacity: 4,
            ..ServiceConfig::default()
        });
        let server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&svc),
            NetConfig {
                reactor_threads: 2,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // One reference service replays every client's stream in process:
        // same structural ids, same canonical bytes.
        let reference = service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });

        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let reference = Arc::clone(&reference);
                std::thread::spawn(move || {
                    let (tree, costs) = instance_for(c);
                    let requests: Vec<Request> = (0..BURSTS * BURST_LEN)
                        .map(|i| {
                            if i % 2 == 0 {
                                Request::solve(&tree, &costs, lambda_for(c, i))
                            } else {
                                Request::frontier(&tree, &costs)
                            }
                        })
                        .collect();
                    let expected = expected_json(&reference, &requests);

                    if c % 4 == 3 {
                        half_close_client(addr, &requests, &expected, c);
                    } else {
                        pipelined_client(addr, &requests, &expected, c % 4 == 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread panicked");
        }

        let stats = server.net_stats();
        assert_eq!(stats.accepted, CLIENTS as u64);
        assert_eq!(stats.refused, 0);
        assert!(
            stats.frames_out >= (CLIENTS * (BURSTS * BURST_LEN + 1)) as u64,
            "every request (plus each handshake) must answer a frame"
        );
        // A 4-deep gate under 64 pipelining clients must have parked.
        assert!(
            stats.saturation_parks > 0,
            "the stress must exercise backpressure parking"
        );
        // Batched flushes: strictly fewer syscalls than frames written.
        assert!(
            stats.writes < stats.frames_out,
            "pipelined replies must coalesce ({} writes for {} frames)",
            stats.writes,
            stats.frames_out,
        );

        server.shutdown();
    }

    // Everything joined and closed: no fd and no thread outlives the
    // server + service + clients (linux: exact counts via procfs).
    #[cfg(target_os = "linux")]
    {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let (fds, threads) = (fd_count(), thread_count());
            if (fds, threads) == (fds_before, threads_before) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "leak: {fds_before}→{fds} fds, {threads_before}→{threads} threads"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// A well-behaved pipelining client: send a burst as one flush, then
/// drain it, matching answers by correlation id against the expected
/// canonical bytes. Slow readers nap between receives so the server's
/// write queues stay nonempty across readiness events.
fn pipelined_client(
    addr: std::net::SocketAddr,
    requests: &[Request],
    expected: &[String],
    slow: bool,
) {
    let mut client = Client::connect(addr).unwrap();
    let mut answers: HashMap<u64, &String> = HashMap::new();
    for (burst_idx, burst) in requests.chunks(BURST_LEN).enumerate() {
        let mut corrs = Vec::new();
        for (i, req) in burst.iter().enumerate() {
            let corr = client.send(req).unwrap();
            answers.insert(corr, &expected[burst_idx * BURST_LEN + i]);
            corrs.push(corr);
        }
        client.flush().unwrap();
        for _ in &corrs {
            if slow {
                std::thread::sleep(Duration::from_millis(2));
            }
            let (corr, outcome) = client.recv_any().unwrap();
            let reply = outcome.expect("stress answers are real answers");
            let want = answers
                .remove(&corr)
                .expect("answer for a correlation id this client never sent");
            assert_eq!(
                &wire::reply_json(&reply),
                want,
                "reply bytes diverged from in-process (cross-connection leak?)"
            );
        }
    }
    assert!(answers.is_empty(), "every pipelined answer must arrive");
}

/// A half-closing peer speaking raw wire bytes: handshake, write every
/// request, FIN the write half, then drain all answers until EOF. The
/// server must keep serving a read-closed connection until its queue is
/// empty.
fn half_close_client(
    addr: std::net::SocketAddr,
    requests: &[Request],
    expected: &[String],
    client_id: usize,
) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.write_all(&wire::hello_frame(0).encode()).unwrap();
    match wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME_LEN).unwrap() {
        ReadFrame::Frame(f) => {
            assert!(matches!(
                wire::decode_server_frame(&f),
                Ok(NetReply::HelloAck(_))
            ));
        }
        other => panic!("handshake answered {other:?}"),
    }

    // The whole stream in one write, then FIN.
    let mut bytes = Vec::new();
    let base = (client_id as u64) << 32;
    for (i, req) in requests.iter().enumerate() {
        bytes.extend_from_slice(&wire::request_frame(base + i as u64, req).encode());
    }
    stream.write_all(&bytes).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();

    let mut got = vec![false; requests.len()];
    for _ in 0..requests.len() {
        let frame = match wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME_LEN).unwrap() {
            ReadFrame::Frame(frame) => frame,
            other => panic!("expected an answer frame, got {other:?}"),
        };
        let idx = usize::try_from(frame.corr - base).expect("answer for someone else's corr");
        assert!(idx < requests.len(), "answer for someone else's corr");
        assert!(!got[idx], "duplicate answer for one correlation id");
        got[idx] = true;
        assert_eq!(
            std::str::from_utf8(&frame.payload).unwrap(),
            expected[idx],
            "reply bytes diverged from in-process (cross-connection leak?)"
        );
    }
    // All answered, then a clean EOF.
    match wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME_LEN).unwrap() {
        ReadFrame::Eof => {}
        other => panic!("expected EOF after the drain, got {other:?}"),
    }
    assert!(got.into_iter().all(|g| g), "every answer must arrive");
}

/// The accept-time connection cap answers a typed refusal instead of
/// letting fd tables grow toward EMFILE, and a freed slot readmits.
#[test]
fn connection_cap_refuses_with_typed_frame_then_readmits() {
    let svc = service(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let server = NetServer::bind(
        "127.0.0.1:0",
        svc,
        NetConfig {
            max_connections: 2,
            reactor_threads: 1,
            ..NetConfig::default()
        },
    )
    .unwrap();

    let held1 = Client::connect(server.local_addr()).unwrap();
    let held2 = Client::connect(server.local_addr()).unwrap();
    match Client::connect(server.local_addr()) {
        Err(ClientError::Remote(wire::WireError::ConnLimit(cap))) => assert_eq!(cap, 2),
        Err(other) => panic!("expected a ConnLimit refusal, got {other:?}"),
        Ok(_) => panic!("expected a ConnLimit refusal, got an admitted connection"),
    }
    assert_eq!(server.net_stats().refused, 1);

    // Freeing one slot readmits (the release happens when the reactor
    // reaps the closed connection, so poll briefly).
    drop(held1);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut readmitted = loop {
        match Client::connect(server.local_addr()) {
            Ok(client) => break client,
            Err(ClientError::Remote(wire::WireError::ConnLimit(_))) => {
                assert!(Instant::now() < deadline, "slot never freed");
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(other) => panic!("unexpected connect failure: {other}"),
        }
    };
    let sc = hsa_workloads::paper_scenario();
    assert!(readmitted.solve(&sc.tree, &sc.costs, Lambda::HALF).is_ok());
    drop(held2);
    server.shutdown();
}

/// A peer that dies mid-frame (write half a header, then vanish) must
/// not wedge the reactor or leak its connection slot.
#[test]
fn truncated_writer_does_not_wedge_the_shard() {
    let svc = service(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let server = NetServer::bind(
        "127.0.0.1:0",
        svc,
        NetConfig {
            max_connections: 1,
            reactor_threads: 1,
            ..NetConfig::default()
        },
    )
    .unwrap();

    {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Announce a 100-byte frame, deliver 3 bytes, disappear.
        stream.write_all(&100u32.to_be_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
    }

    // The shard reaped the dead connection: the single slot frees and a
    // real client gets served on the same shard.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut client = loop {
        match Client::connect(server.local_addr()) {
            Ok(client) => break client,
            Err(ClientError::Remote(wire::WireError::ConnLimit(_))) => {
                assert!(Instant::now() < deadline, "dead conn never reaped");
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(other) => panic!("unexpected connect failure: {other}"),
        }
    };
    let sc = hsa_workloads::paper_scenario();
    let reply = client.solve(&sc.tree, &sc.costs, Lambda::HALF).unwrap();
    assert!(reply.instance_id().is_some());
    server.shutdown();
}

/// Interleaved reads from a second thread are out of scope (the client
/// is `&mut`), but interleaved *bursts across many clients hammering one
/// shard* must still answer strictly per-connection: exercised above; a
/// static assertion that the stress parameters really do interleave.
#[test]
fn stress_parameters_interleave() {
    assert!(CLIENTS >= 64);
    assert!(BURSTS * BURST_LEN >= 8);
}
