//! Property: the [`Service`] under **interleaved multi-threaded
//! submission** answers cut-for-cut identical to a sequential
//! single-threaded engine.
//!
//! Strategy: generate a random request script — solve/frontier/delta
//! requests with per-request λ over a small instance catalog — and
//! compute every expected answer *sequentially* (fresh
//! [`Expanded`]`::solve` per solve, mirror-drifted costs per tenant
//! delta). Then replay the script through a multi-worker `Service`, with
//! the requests split across several concurrently running submitter
//! threads (each submitter owns a disjoint set of tenants, so per-tenant
//! submission order — the only order the service promises — is exactly
//! the script order). Every reply must match its precomputed expectation:
//! same objective, same cut, same frontier breakpoints.
//!
//! Green under `PROPTEST_SEED` 1–3 (and the default stream). This is the
//! end-to-end contract of DESIGN.md §10: sharded cache, worker pool,
//! backpressure and per-tenant FIFO may reorder *work*, never *answers*.

use hsa_assign::{Expanded, ExpandedConfig, FrontierSet, Prepared, Solver};
use hsa_engine::{Engine, EngineConfig, Reply, Request, Service, ServiceConfig, TenantId, Ticket};
use hsa_graph::{Cost, Lambda};
use hsa_tree::{CostModel, CruId, CruTree, Delta, SatelliteId};
use hsa_workloads::{random_instance, Placement, RandomTreeParams};
use proptest::prelude::*;
use proptest::TestCaseError;
use std::sync::Arc;

/// One raw scripted request; concretised against the instance set.
#[derive(Clone, Debug)]
struct RawReq {
    kind: u8,
    instance: u8,
    lam: u8,
    node: u16,
    value: u16,
    sat: u8,
}

fn raw_req() -> impl Strategy<Value = RawReq> {
    (
        0u8..10,
        0u8..255,
        0u8..=8,
        0u16..u16::MAX,
        1u16..5_000,
        0u8..255,
    )
        .prop_map(|(kind, instance, lam, node, value, sat)| RawReq {
            kind,
            instance,
            lam,
            node,
            value,
            sat,
        })
}

/// A delta against the tenant's *current* (mirror) cost state — absolute
/// sets plus occasional churn, always valid by construction.
fn materialise_delta(raw: &RawReq, tree: &CruTree, costs: &CostModel) -> Delta {
    let n = tree.len();
    let node = CruId((raw.node as usize % n) as u32);
    let value = Cost::new(raw.value as u64);
    match raw.kind % 4 {
        0 => Delta::new().set_host_time(node, value),
        1 => Delta::new().set_satellite_time(node, value),
        2 if node != tree.root() => Delta::new().set_comm_up(node, value),
        2 => Delta::new().set_satellite_time(node, value),
        _ => {
            let leaves = tree.leaves_in_order();
            let leaf = leaves[raw.node as usize % leaves.len()];
            let sat = SatelliteId(raw.sat as u32 % costs.n_satellites().max(1));
            Delta::new().repin(leaf, sat)
        }
    }
}

/// A concrete request plus its sequentially computed expected answer.
enum Expected {
    Solution {
        objective: hsa_graph::ScaledSsb,
        cut: hsa_tree::Cut,
    },
    Frontier {
        breakpoints: Vec<hsa_graph::LambdaQ>,
        objective_at_half: hsa_graph::ScaledSsb,
    },
}

struct Scripted {
    request: Request,
    tenant: usize,
    expected: Expected,
}

/// Concretises the raw script: materialises deltas against per-tenant
/// mirrors and computes every expected answer with the plain sequential
/// solver stack (no engine, no service, no threads).
fn script(
    raws: &[RawReq],
    instances: &[(CruTree, CostModel)],
) -> Result<Vec<Scripted>, TestCaseError> {
    let arcs: Vec<(Arc<CruTree>, Arc<CostModel>)> = instances
        .iter()
        .map(|(t, c)| (Arc::new(t.clone()), Arc::new(c.clone())))
        .collect();
    let mut mirrors: Vec<CostModel> = instances.iter().map(|(_, c)| c.clone()).collect();
    let mut out = Vec::with_capacity(raws.len());
    for raw in raws {
        let tenant = raw.instance as usize % instances.len();
        let (tree, base) = &instances[tenant];
        let (tree_arc, costs_arc) = &arcs[tenant];
        let lambda = Lambda::new(raw.lam as u32, 8).unwrap();
        let scripted = match raw.kind {
            // 0–5: a stateless solve against the *base* instance.
            0..=5 => {
                let prep = Prepared::new(tree, base).unwrap();
                let want = Expanded::default().solve(&prep, lambda).unwrap();
                Scripted {
                    request: Request::solve_arc(
                        Arc::clone(tree_arc),
                        Arc::clone(costs_arc),
                        lambda,
                    ),
                    tenant,
                    expected: Expected::Solution {
                        objective: want.objective,
                        cut: want.cut,
                    },
                }
            }
            // 6–7: the base instance's λ-frontier.
            6 | 7 => {
                let prep = Prepared::new(tree, base).unwrap();
                let frontiers = FrontierSet::prepare(&prep, &ExpandedConfig::default()).unwrap();
                let want = hsa_assign::lambda_frontier_with(&prep, &frontiers).unwrap();
                Scripted {
                    request: Request::frontier_arc(Arc::clone(tree_arc), Arc::clone(costs_arc)),
                    tenant,
                    expected: Expected::Frontier {
                        breakpoints: want.breakpoints().to_vec(),
                        objective_at_half: want.objective_at(Lambda::HALF),
                    },
                }
            }
            // 8–9: drift the tenant's session, solve the drifted state.
            _ => {
                let delta = materialise_delta(raw, tree, &mirrors[tenant]);
                delta.apply(tree, &mut mirrors[tenant]).unwrap();
                let prep = Prepared::new(tree, &mirrors[tenant]).unwrap();
                let want = Expanded::default().solve(&prep, lambda).unwrap();
                Scripted {
                    request: Request::delta(TenantId(tenant as u64), delta, lambda),
                    tenant,
                    expected: Expected::Solution {
                        objective: want.objective,
                        cut: want.cut,
                    },
                }
            }
        };
        out.push(scripted);
    }
    Ok(out)
}

fn check_reply(i: usize, reply: &Reply, expected: &Expected) -> Result<(), TestCaseError> {
    match (reply, expected) {
        (Reply::Solution { solution: sol, .. }, Expected::Solution { objective, cut })
        | (Reply::Applied { solution: sol, .. }, Expected::Solution { objective, cut }) => {
            prop_assert_eq!(
                &sol.objective,
                objective,
                "request {}: objective diverged",
                i
            );
            prop_assert_eq!(&sol.cut, cut, "request {}: cut diverged", i);
        }
        (
            Reply::Frontier { frontier: fr, .. },
            Expected::Frontier {
                breakpoints,
                objective_at_half,
            },
        ) => {
            prop_assert_eq!(
                fr.breakpoints(),
                &breakpoints[..],
                "request {}: frontier breakpoints diverged",
                i
            );
            prop_assert_eq!(
                &fr.objective_at(Lambda::HALF),
                objective_at_half,
                "request {}: frontier objective diverged",
                i
            );
        }
        _ => prop_assert!(false, "request {}: reply kind diverged", i),
    }
    Ok(())
}

/// Replays the script through a service: `submitters` threads submit
/// concurrently (disjoint tenants each), `workers` workers answer.
fn check_concurrent_replay(
    instances: &[(CruTree, CostModel)],
    scripted: &[Scripted],
    submitters: usize,
    workers: usize,
    queue_capacity: usize,
) -> Result<(), TestCaseError> {
    let engine = Arc::new(Engine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    }));
    let service = Service::new(
        Arc::clone(&engine),
        ServiceConfig {
            workers,
            queue_capacity,
            ..ServiceConfig::default()
        },
    );
    for (i, (tree, costs)) in instances.iter().enumerate() {
        service
            .open_tenant(TenantId(i as u64), tree, costs)
            .unwrap();
    }
    // Each submitter owns the tenants with `tenant % submitters == s` and
    // submits *its* requests in script order; the threads themselves run
    // fully interleaved. Tickets come back to the main thread tagged with
    // their script position.
    let replies: Vec<(usize, Result<Reply, hsa_engine::ServiceError>)> = std::thread::scope(|s| {
        let service = &service;
        let handles: Vec<_> = (0..submitters)
            .map(|sub| {
                s.spawn(move || {
                    let tickets: Vec<(usize, Ticket)> = scripted
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.tenant % submitters == sub)
                        .map(|(i, r)| (i, service.submit(r.request.clone())))
                        .collect();
                    tickets
                        .into_iter()
                        .map(|(i, t)| (i, t.wait()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("submitter thread panicked"))
            .collect()
    });
    prop_assert_eq!(replies.len(), scripted.len(), "every request is answered");
    for (i, reply) in &replies {
        let reply = reply
            .as_ref()
            .map_err(|e| TestCaseError::fail(format!("request {i} failed: {e}")))?;
        check_reply(*i, reply, &scripted[*i].expected)?;
    }
    // And the sessions drifted deterministically despite the interleaving.
    let stats = service.stats();
    prop_assert_eq!(stats.completed, scripted.len() as u64);
    prop_assert_eq!(stats.failed, 0);
    Ok(())
}

fn instance_set(seed: u64, n: usize) -> Vec<(CruTree, CostModel)> {
    let placements = [
        Placement::Random,
        Placement::Interleaved,
        Placement::Blocked,
    ];
    (0..n)
        .map(|i| {
            random_instance(
                &RandomTreeParams {
                    n_crus: 12 + 2 * i,
                    n_satellites: 3,
                    placement: placements[i % placements.len()],
                    ..RandomTreeParams::default()
                },
                seed + i as u64,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Two submitter threads, several workers, a mixed script: the
    /// interleaved service must answer exactly what the sequential stack
    /// precomputed.
    #[test]
    fn interleaved_submission_matches_sequential_engine(
        seed in 0u64..300,
        raws in proptest::collection::vec(raw_req(), 24),
        workers in 2usize..=4,
    ) {
        let instances = instance_set(seed, 3);
        let scripted = script(&raws, &instances)?;
        check_concurrent_replay(&instances, &scripted, 2, workers, 8)?;
    }

    /// A tight queue (capacity 2) forces the submitters through constant
    /// backpressure without changing a single answer.
    #[test]
    fn backpressure_never_changes_answers(
        seed in 0u64..300,
        raws in proptest::collection::vec(raw_req(), 16),
    ) {
        let instances = instance_set(seed, 2);
        let scripted = script(&raws, &instances)?;
        check_concurrent_replay(&instances, &scripted, 2, 3, 2)?;
    }

    /// Three submitters on three tenants — every tenant's delta stream is
    /// owned by exactly one submitter, all three drain concurrently.
    #[test]
    fn per_tenant_streams_drain_concurrently(
        seed in 0u64..200,
        raws in proptest::collection::vec(raw_req(), 18),
    ) {
        let instances = instance_set(seed, 3);
        let scripted = script(&raws, &instances)?;
        check_concurrent_replay(&instances, &scripted, 3, 3, 6)?;
    }
}
