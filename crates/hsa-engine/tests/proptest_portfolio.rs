//! Properties of the anytime racing portfolio (DESIGN.md §14):
//!
//! * **Differential**: on every exact-finishable instance (small enough
//!   that the exact arm completes within a generous budget), the
//!   portfolio's answer is cut-for-cut identical to a fresh
//!   [`Expanded`]`::solve` of the same instance, its certificate is
//!   tight, and re-asking answers from the engine cache byte-identically.
//! * **Dominance**: no heuristic arm ever beats the exact optimum — every
//!   cut-space arm's objective is an upper bound on it.
//! * **Certificate soundness**: `structural_lower_bound ≤ optimum ≤ arm
//!   objective` for every arm (the brute-force oracle supplies the
//!   optimum; [`hsa_heuristics::exhaustive_optimum`] is *not* usable here
//!   — it optimises DAG list-scheduling makespan, a different objective
//!   space), and a race's certificate history only ever shrinks the gap.
//!
//! Run under `PROPTEST_SEED=1..3` in CI; every property is seed-stable.

use hsa_assign::{structural_lower_bound, BruteForce, CancelToken, Expanded, Prepared, Solver};
use hsa_engine::{ArmKind, Engine, EngineConfig, Portfolio, PortfolioConfig};
use hsa_graph::Lambda;
use hsa_heuristics::{CutAnnealing, CutBranchBound, CutGenetic};
use hsa_workloads::{random_instance, Placement, RandomTreeParams};
use proptest::prelude::*;
use proptest::TestCaseError;
use std::sync::Arc;
use std::time::Duration;

/// A budget no small instance can exhaust: the differential property is
/// about *finishable* instances, so the race must always end by
/// `exact_done`, never by deadline.
const GENEROUS: Duration = Duration::from_secs(120);

fn small_instance(seed: u64, n: usize) -> (hsa_tree::CruTree, hsa_tree::CostModel) {
    random_instance(
        &RandomTreeParams {
            n_crus: n,
            n_satellites: 3,
            placement: Placement::Random,
            ..RandomTreeParams::default()
        },
        seed,
    )
}

fn check_differential(
    tree: &hsa_tree::CruTree,
    costs: &hsa_tree::CostModel,
    lambda: Lambda,
) -> Result<(), TestCaseError> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let portfolio = Portfolio::new(Arc::clone(&engine), PortfolioConfig::default());
    let outcome = portfolio
        .solve_anytime(tree, costs, lambda, GENEROUS)
        .unwrap();
    let answer = &outcome.answer;

    prop_assert!(answer.exact_finished, "a finishable instance must finish");
    prop_assert_eq!(answer.winner, ArmKind::Exact);
    prop_assert!(answer.certificate.is_tight());

    // Cut-for-cut identical to a fresh from-scratch exact solve.
    let prep = Prepared::new(tree, costs).unwrap();
    let want = Expanded::default().solve(&prep, lambda).unwrap();
    prop_assert_eq!(&answer.solution.cut, &want.cut);
    prop_assert_eq!(answer.solution.objective, want.objective);
    prop_assert_eq!(answer.certificate.upper, want.objective);
    prop_assert_eq!(answer.certificate.lower, want.objective);

    // The exact arm donated its frontiers: the instance is now cached and
    // a re-ask answers from the cache, still byte-identical and tight.
    prop_assert_eq!(engine.len(), 1, "exact finish must populate the cache");
    let again = portfolio
        .solve_anytime(tree, costs, lambda, GENEROUS)
        .unwrap();
    prop_assert!(again.answer.exact_finished);
    prop_assert_eq!(&again.answer.solution.cut, &want.cut);
    prop_assert_eq!(again.answer.solution.objective, want.objective);
    Ok(())
}

fn check_certificates(
    tree: &hsa_tree::CruTree,
    costs: &hsa_tree::CostModel,
    lambda: Lambda,
) -> Result<(), TestCaseError> {
    let prep = Prepared::new(tree, costs).unwrap();
    let optimum = BruteForce::default()
        .solve(&prep, lambda)
        .unwrap()
        .objective;
    let exact = Expanded::default().solve(&prep, lambda).unwrap().objective;
    prop_assert_eq!(exact, optimum, "expanded solver is the oracle's equal");
    let lower = structural_lower_bound(&prep, lambda);
    prop_assert!(lower <= optimum, "structural bound must be admissible");

    let arms: [(&str, Box<dyn Solver>); 3] = [
        ("cut-ga", Box::new(CutGenetic::default())),
        ("cut-sa", Box::new(CutAnnealing::default())),
        ("cut-bnb", Box::new(CutBranchBound::default())),
    ];
    for (name, arm) in arms {
        let sol = arm.solve(&prep, lambda).unwrap();
        prop_assert!(
            sol.objective >= optimum,
            "{} beat the optimum: {} < {}",
            name,
            sol.objective,
            optimum
        );
        // The certificate this arm's answer would carry is sound.
        prop_assert!(lower <= optimum && optimum <= sol.objective);
    }

    // A cancelled-immediately arm still answers feasibly and soundly (the
    // incumbent it was seeded with), so a tiny budget can never produce an
    // uncertified or infeasible answer.
    let token = CancelToken::new();
    token.cancel();
    let sol = CutGenetic::default()
        .solve_cancellable(&prep, lambda, &mut hsa_assign::SolveScratch::new(), &token)
        .unwrap();
    prop_assert!(sol.objective >= optimum);
    Ok(())
}

fn check_monotone_history(
    tree: &hsa_tree::CruTree,
    costs: &hsa_tree::CostModel,
    lambda: Lambda,
) -> Result<(), TestCaseError> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let portfolio = Portfolio::new(engine, PortfolioConfig::default());
    let outcome = portfolio
        .solve_anytime(tree, costs, lambda, GENEROUS)
        .unwrap();
    let certs = &outcome.certificates;
    prop_assert!(!certs.is_empty(), "an answered race records a certificate");
    for w in certs.windows(2) {
        prop_assert!(w[1].lower >= w[0].lower, "lower bound must not decrease");
        prop_assert!(w[1].upper <= w[0].upper, "upper bound must not increase");
    }
    prop_assert_eq!(*certs.last().unwrap(), outcome.answer.certificate);
    prop_assert_eq!(
        outcome.answer.certificate.upper,
        outcome.answer.solution.objective,
        "the certified upper bound is the answer's own objective"
    );
    prop_assert_eq!(outcome.upgrades as usize + 1, certs.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential: portfolio ≡ Expanded on every finishable instance.
    #[test]
    fn portfolio_matches_expanded_when_exact_finishes(
        seed in 0u64..500,
        n in 6usize..16,
        num in 0u32..=4,
    ) {
        let (tree, costs) = small_instance(seed, n);
        let lambda = Lambda::new(num, 4).unwrap();
        check_differential(&tree, &costs, lambda)?;
    }

    /// Soundness: structural lower ≤ brute-force optimum ≤ every arm.
    #[test]
    fn certificates_bracket_the_true_optimum(
        seed in 0u64..500,
        n in 6usize..13,
        num in 0u32..=4,
    ) {
        let (tree, costs) = small_instance(seed, n);
        let lambda = Lambda::new(num, 4).unwrap();
        check_certificates(&tree, &costs, lambda)?;
    }

    /// Monotonicity: a race's certificate history only shrinks the gap.
    #[test]
    fn certificate_history_is_monotone(seed in 0u64..500, n in 6usize..20) {
        let (tree, costs) = small_instance(seed, n);
        check_monotone_history(&tree, &costs, Lambda::HALF)?;
    }
}
