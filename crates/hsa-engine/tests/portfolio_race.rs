//! Cancellation discipline of the anytime portfolio: losing arms drain,
//! nothing leaks, budgets actually bound the caller's wait.
//!
//! The timing assertions here are deliberately loose (seconds of slack on
//! a millisecond budget) — they catch a *hang* (an arm that never observes
//! cancellation, a race that waits on a dead arm), not scheduler jitter.

use hsa_engine::{
    AnswerExt, Engine, EngineConfig, Portfolio, PortfolioConfig, Request, Service, ServiceConfig,
};
use hsa_graph::Lambda;
use hsa_workloads::{random_instance, Placement, RandomTreeParams};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An instance big enough that the exact arm cannot finish within a
/// millisecond-scale budget (the frontier DP alone is well past it), while
/// the heuristic arms' deadline polling still answers promptly.
fn big_instance(seed: u64) -> (hsa_tree::CruTree, hsa_tree::CostModel) {
    random_instance(
        &RandomTreeParams {
            n_crus: 3_000,
            n_satellites: 6,
            placement: Placement::Random,
            ..RandomTreeParams::default()
        },
        seed,
    )
}

/// Polls until every arm has drained (or a generous deadline passes).
fn wait_drained(portfolio: &Portfolio) -> usize {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let pending = portfolio.pending_arms();
        if pending == 0 || Instant::now() >= deadline {
            return pending;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn losing_exact_arm_is_cancelled_promptly_and_drains() {
    let (tree, costs) = big_instance(7);
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let portfolio = Portfolio::new(Arc::clone(&engine), PortfolioConfig::default());

    let budget = Duration::from_millis(150);
    let started = Instant::now();
    let outcome = portfolio
        .solve_anytime(&tree, &costs, Lambda::HALF, budget)
        .expect("the heuristic arms answer within any budget");
    let waited = started.elapsed();

    // The caller's wait is bounded by the budget plus drain slack, never
    // by the exact arm's (much longer) full solve.
    assert!(
        waited < budget + Duration::from_secs(20),
        "race took {waited:?} on a {budget:?} budget — an arm failed to cancel"
    );
    // A feasible, certified answer despite the deadline.
    let answer = &outcome.answer;
    assert!(answer.certificate.lower <= answer.certificate.upper);
    assert_eq!(answer.certificate.upper, answer.solution.objective);
    assert!(!outcome.certificates.is_empty());

    // Losers observe the shared flag and drain: the pending gauge falls
    // back to zero and stays there.
    assert_eq!(wait_drained(&portfolio), 0, "arms leaked past cancellation");
}

#[test]
fn repeated_races_reuse_the_pool_and_never_accumulate_arms() {
    let (tree, costs) = big_instance(11);
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let portfolio = Portfolio::new(engine, PortfolioConfig::default());

    for round in 0..5 {
        let outcome = portfolio
            .solve_anytime(&tree, &costs, Lambda::HALF, Duration::from_millis(100))
            .expect("every round answers");
        assert!(
            outcome.answer.certificate.lower <= outcome.answer.solution.objective,
            "round {round} produced an unsound certificate"
        );
        // Each round's losers drain before the gauge can pile up; the
        // portfolio's pool is persistent, so "drained" means idle workers,
        // not dead threads.
        assert_eq!(
            wait_drained(&portfolio),
            0,
            "round {round} leaked arms — repeated races are accumulating work"
        );
    }
}

#[test]
fn service_tickets_balance_across_anytime_races() {
    let (tree, costs) = big_instance(3);
    let small = hsa_workloads::paper_scenario();
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let service = Service::new(
        engine,
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );

    // Interleave deadline-bound races (big instance, tiny budget) with
    // exact-finishing ones (the paper scenario, generous budget).
    let tickets: Vec<_> = (0..3)
        .flat_map(|_| {
            [
                service.submit(Request::solve_anytime(&tree, &costs, Lambda::HALF, 100)),
                service.submit(Request::solve_anytime(
                    &small.tree,
                    &small.costs,
                    Lambda::HALF,
                    60_000,
                )),
            ]
        })
        .collect();
    for t in tickets {
        let answer = t.wait();
        let anytime = answer
            .anytime()
            .expect("anytime requests answer anytime replies");
        assert!(anytime.certificate.lower <= anytime.certificate.upper);
    }

    let stats = service.stats();
    assert_eq!(stats.anytimes, 6);
    assert_eq!(stats.submitted, 6);
    assert_eq!(
        stats.completed + stats.failed,
        stats.submitted,
        "every accepted ticket must resolve exactly once"
    );
    assert_eq!(stats.latency.anytime.count, 6);
    assert_eq!(wait_drained(service.portfolio()), 0);
}
