//! Property: `Engine::frontier` agrees with independent per-λ solves by
//! the full-expansion solver *and* brute force — at λ = 0, ½, 1 and at the
//! midpoint of every frontier segment — on random and on interleaved
//! instances (the DESIGN §2 hard regime, where a colour occupies several
//! disjoint leaf bands).

use hsa_assign::{BruteForce, Expanded, Prepared, Solver};
use hsa_engine::{Engine, EngineConfig};
use hsa_graph::Lambda;
use hsa_workloads::{random_instance, Placement, RandomTreeParams};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Every λ the property probes: the three anchors plus each segment's
/// exact midpoint (skipping midpoints whose reduced rational leaves u32 —
/// impossible at these cost scales, but the API is total).
fn probe_lambdas(frontier: &hsa_assign::LambdaFrontier) -> Vec<Lambda> {
    let mut lambdas = vec![Lambda::ZERO, Lambda::HALF, Lambda::ONE];
    for seg in frontier.segments() {
        if let Some(lambda) = seg.midpoint().as_lambda() {
            lambdas.push(lambda);
        }
    }
    lambdas
}

fn check_instance(
    tree: &hsa_tree::CruTree,
    costs: &hsa_tree::CostModel,
) -> Result<(), TestCaseError> {
    let engine = Engine::new(EngineConfig::default());
    let id = engine.prepare(tree, costs).unwrap();
    let frontier = engine.frontier(id).unwrap();
    let prep = Prepared::new(tree, costs).unwrap();
    for lambda in probe_lambdas(&frontier) {
        let expanded = Expanded::default().solve(&prep, lambda).unwrap();
        prop_assert_eq!(
            frontier.objective_at(lambda),
            expanded.objective,
            "frontier vs expanded at λ={}",
            lambda
        );
        let brute = BruteForce::default().solve(&prep, lambda).unwrap();
        prop_assert_eq!(
            frontier.objective_at(lambda),
            brute.objective,
            "frontier vs brute force at λ={}",
            lambda
        );
        // The frontier's own cut must *achieve* the claimed objective.
        let materialised = frontier.solution_at(&prep, lambda).unwrap();
        prop_assert_eq!(materialised.objective, brute.objective);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random placement: general trees, arbitrary sensor pinning.
    #[test]
    fn frontier_is_exact_on_random_instances(seed in 0u64..1000, n in 6usize..16) {
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: n,
                n_satellites: 3,
                placement: Placement::Random,
                ..RandomTreeParams::default()
            },
            seed,
        );
        check_instance(&tree, &costs)?;
    }

    /// Interleaved placement: colours split across disjoint bands — the
    /// regime where the paper's contiguous expansion alone is insufficient.
    #[test]
    fn frontier_is_exact_on_interleaved_instances(seed in 0u64..1000, n in 6usize..16) {
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: n,
                n_satellites: 2,
                placement: Placement::Interleaved,
                ..RandomTreeParams::default()
            },
            seed,
        );
        check_instance(&tree, &costs)?;
    }
}
