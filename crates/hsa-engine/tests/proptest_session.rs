//! Property: a random sequence of [`Delta`]s applied through the
//! incremental [`Session`] agrees with **from-scratch**
//! [`Expanded`]`::solve`s of the independently drifted cost model — at
//! λ = 0, ½, 1 and at the midpoint of every frontier segment — after
//! *every* step, on random and on interleaved instances. Green under
//! `PROPTEST_SEED` 1–3 (and the default stream).
//!
//! This is the end-to-end correctness contract of DESIGN.md §9: the
//! partial frontier rebuild may only ever reuse state that is provably
//! unchanged, so no drift trajectory — cost walks, subtree scalings,
//! satellite capacity changes, sensor churn — may produce an answer that
//! differs from solving the drifted instance from nothing.

use hsa_engine::{Session, SessionConfig};
use hsa_graph::{Cost, Lambda};
use hsa_tree::{CostModel, CruTree, Delta, SatelliteId};
use hsa_workloads::{random_instance, Placement, RandomTreeParams};
use proptest::prelude::*;
use proptest::TestCaseError;

use hsa_assign::{Expanded, Prepared, Solver};

/// One raw perturbation draw; mapped onto a valid [`Delta`] against the
/// concrete tree (indices taken modulo the instance's shape).
#[derive(Clone, Debug)]
struct RawOp {
    kind: u8,
    node: u16,
    value: u16,
    sat: u8,
    num: u8,
    den: u8,
}

fn raw_op() -> impl Strategy<Value = RawOp> {
    (
        0u8..7,
        0u16..u16::MAX,
        1u16..5_000,
        0u8..255,
        1u8..8,
        1u8..8,
    )
        .prop_map(|(kind, node, value, sat, num, den)| RawOp {
            kind,
            node,
            value,
            sat,
            num,
            den,
        })
}

fn materialise(op: &RawOp, tree: &CruTree, costs: &CostModel) -> Delta {
    let n = tree.len();
    let node = hsa_tree::CruId((op.node as usize % n) as u32);
    let leaves = tree.leaves_in_order();
    let leaf = leaves[op.node as usize % leaves.len()];
    let sat = SatelliteId(op.sat as u32 % costs.n_satellites().max(1));
    let value = Cost::new(op.value as u64);
    match op.kind {
        0 => Delta::new().set_host_time(node, value),
        1 => Delta::new().set_satellite_time(node, value),
        2 if node != tree.root() => Delta::new().set_comm_up(node, value),
        2 => Delta::new().set_host_time(node, value),
        3 => Delta::new().set_comm_raw(leaf, value),
        4 => Delta::new().scale_subtree(node, op.num as u32, op.den as u32),
        5 => Delta::new().scale_satellite(sat, op.num as u32, op.den as u32),
        _ => Delta::new().repin(leaf, sat),
    }
}

/// λ probes: the three anchors plus every frontier-segment midpoint.
fn probe_lambdas(frontier: &hsa_assign::LambdaFrontier) -> Vec<Lambda> {
    let mut lambdas = vec![Lambda::ZERO, Lambda::HALF, Lambda::ONE];
    for seg in frontier.segments() {
        if let Some(lambda) = seg.midpoint().as_lambda() {
            lambdas.push(lambda);
        }
    }
    lambdas
}

fn check_drift(
    tree: &CruTree,
    costs: &CostModel,
    ops: &[RawOp],
    fallback_fraction: f64,
) -> Result<(), TestCaseError> {
    let cfg = SessionConfig {
        fallback_fraction,
        ..SessionConfig::default()
    };
    let mut session = Session::new(tree, costs, cfg).unwrap();
    // The independent mirror: the same drift applied to a bare cost model,
    // solved from scratch at every probe.
    let mut mirror = costs.clone();
    for (step, op) in ops.iter().enumerate() {
        let delta = materialise(op, tree, &mirror);
        delta.apply(tree, &mut mirror).unwrap();
        session.apply(&delta).unwrap();
        prop_assert_eq!(
            session.costs(),
            &mirror,
            "step {}: session cost model diverged from the mirror",
            step
        );
        let scratch = Prepared::new(tree, &mirror).unwrap();
        let frontier = session.frontier().unwrap();
        for lambda in probe_lambdas(&frontier) {
            let want = Expanded::default().solve(&scratch, lambda).unwrap();
            let got = session.solve(lambda).unwrap();
            prop_assert_eq!(
                got.objective,
                want.objective,
                "step {}: objective diverged at λ={}",
                step,
                lambda
            );
            prop_assert_eq!(
                &got.cut,
                &want.cut,
                "step {}: cut diverged at λ={}",
                step,
                lambda
            );
            prop_assert_eq!(
                frontier.objective_at(lambda),
                want.objective,
                "step {}: frontier diverged at λ={}",
                step,
                lambda
            );
        }
    }
    // The session's bookkeeping adds up.
    let stats = session.stats();
    prop_assert_eq!(stats.applies, ops.len() as u64);
    prop_assert_eq!(stats.incremental + stats.full_rebuilds, stats.applies);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random placement, default fallback threshold.
    #[test]
    fn random_drift_matches_scratch(
        seed in 0u64..400,
        ops in proptest::collection::vec(raw_op(), 7),
        take in 1usize..=7,
    ) {
        let ops = &ops[..take];
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: 18,
                n_satellites: 3,
                placement: Placement::Random,
                ..RandomTreeParams::default()
            },
            seed,
        );
        check_drift(&tree, &costs, ops, SessionConfig::default().fallback_fraction)?;
    }

    /// Interleaved placement (multi-band colours, the DESIGN §2 hard
    /// regime) with the fallback disabled, so *every* step exercises the
    /// partial-rebuild path.
    #[test]
    fn interleaved_drift_matches_scratch_without_fallback(
        seed in 0u64..400,
        ops in proptest::collection::vec(raw_op(), 5),
        take in 1usize..=5,
    ) {
        let ops = &ops[..take];
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: 16,
                n_satellites: 3,
                placement: Placement::Interleaved,
                ..RandomTreeParams::default()
            },
            seed,
        );
        check_drift(&tree, &costs, ops, 1.0)?;
    }

    /// Forced full rebuilds must agree too (the fallback path is not a
    /// different algorithm, just a different reuse policy).
    #[test]
    fn forced_full_rebuilds_match_scratch(
        seed in 0u64..200,
        ops in proptest::collection::vec(raw_op(), 3),
        take in 1usize..=3,
    ) {
        let ops = &ops[..take];
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: 14,
                n_satellites: 2,
                placement: Placement::Blocked,
                ..RandomTreeParams::default()
            },
            seed,
        );
        check_drift(&tree, &costs, ops, 0.0)?;
    }
}
