//! Acceptance gate of the batch engine: `Engine::solve_batch` over a large
//! mixed workload must be **byte-identical** — objective and cut — to
//! sequential per-call `Solver::solve` on freshly prepared instances.

use hsa_assign::{Expanded, PaperSsb, Prepared, Solver};
use hsa_engine::{Engine, EngineConfig, InstanceId};
use hsa_graph::Lambda;
use hsa_workloads::{catalog, random_instance, Placement, RandomTreeParams, Scenario};

/// The acceptance workload: catalog scenarios plus random instances across
/// every placement regime, crossed with a λ grid — comfortably over 64
/// queries.
fn workload() -> (Vec<Scenario>, Vec<Lambda>) {
    let mut scenarios = catalog();
    for (seed, placement) in [
        (1u64, Placement::Blocked),
        (2, Placement::Interleaved),
        (3, Placement::Random),
        (4, Placement::Interleaved),
    ] {
        let (tree, costs) = random_instance(
            &RandomTreeParams {
                n_crus: 18,
                n_satellites: 3,
                placement,
                ..RandomTreeParams::default()
            },
            seed,
        );
        scenarios.push(Scenario {
            name: format!("random-{seed}-{placement:?}"),
            description: String::new(),
            tree,
            costs,
        });
    }
    let lambdas: Vec<Lambda> = (0..=9).map(|n| Lambda::new(n, 9).unwrap()).collect();
    (scenarios, lambdas)
}

#[test]
fn solve_batch_is_byte_identical_to_sequential_solves() {
    let (scenarios, lambdas) = workload();
    let engine = Engine::new(EngineConfig::default());
    let ids: Vec<InstanceId> = scenarios
        .iter()
        .map(|sc| engine.prepare(&sc.tree, &sc.costs).unwrap())
        .collect();

    let mut queries: Vec<(InstanceId, Lambda)> = Vec::new();
    for &id in &ids {
        for &lambda in &lambdas {
            queries.push((id, lambda));
        }
    }
    assert!(
        queries.len() >= 64,
        "acceptance demands ≥ 64 queries, got {}",
        queries.len()
    );

    let batch = engine.solve_batch(&queries);

    // The naive path: a fresh Prepared and a fresh solve per query.
    let mut q = 0;
    for sc in &scenarios {
        for &lambda in &lambdas {
            let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
            let want = Expanded::default().solve(&prep, lambda).unwrap();
            let got = batch[q].as_ref().unwrap_or_else(|e| {
                panic!("query {q} ({}, λ={lambda}) failed: {e}", sc.name);
            });
            assert_eq!(
                got.objective, want.objective,
                "objective diverged on {} at λ={lambda}",
                sc.name
            );
            assert_eq!(
                got.cut, want.cut,
                "cut diverged on {} at λ={lambda}",
                sc.name
            );
            q += 1;
        }
    }
    assert_eq!(q, queries.len());
    assert_eq!(engine.stats().queries, queries.len() as u64);
}

#[test]
fn generic_solver_batch_is_byte_identical_too() {
    // The scratch-pool path (arbitrary Solver) must be just as exact; the
    // paper's own algorithm is the interesting one to pin.
    let (scenarios, _) = workload();
    let lambdas = [Lambda::ZERO, Lambda::HALF, Lambda::ONE];
    let engine = Engine::new(EngineConfig::default());
    let mut queries = Vec::new();
    for sc in &scenarios {
        let id = engine.prepare(&sc.tree, &sc.costs).unwrap();
        for &lambda in &lambdas {
            queries.push((id, lambda));
        }
    }
    let batch = engine.solve_batch_with(&queries, std::sync::Arc::new(PaperSsb::default()));
    let mut q = 0;
    for sc in &scenarios {
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        for &lambda in &lambdas {
            let want = PaperSsb::default().solve(&prep, lambda).unwrap();
            let got = batch[q].as_ref().unwrap();
            assert_eq!(got.objective, want.objective, "{} λ={lambda}", sc.name);
            assert_eq!(got.cut, want.cut, "{} λ={lambda}", sc.name);
            q += 1;
        }
    }
}

#[test]
fn repeated_batches_reuse_the_cache_and_stay_stable() {
    let (scenarios, _) = workload();
    let sc = &scenarios[0];
    let engine = Engine::new(EngineConfig::default());
    let id = engine.prepare(&sc.tree, &sc.costs).unwrap();
    let queries = vec![(id, Lambda::HALF); 8];
    let first = engine.solve_batch(&queries);
    // Re-preparing the same instance is a hit, and answers do not drift.
    let id2 = engine.prepare(&sc.tree, &sc.costs).unwrap();
    assert_eq!(id, id2);
    let second = engine.solve_batch(&queries);
    for (a, b) in first.iter().zip(&second) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.cut, b.cut);
    }
    assert_eq!(engine.len(), 1);
    assert_eq!(engine.stats().cache_hits, 1);
}
