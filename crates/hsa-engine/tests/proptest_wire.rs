//! Property coverage of the wire codec (DESIGN.md §13).
//!
//! * **Round trip**: every [`Request`] and [`Reply`] variant survives
//!   encode → frame parse → decode → re-encode with byte-identical
//!   frames. Replies are real service answers (verify mode on), not
//!   hand-built values, so the payload schema is exercised at full depth
//!   — cuts, assignments, delay reports, frontier envelopes with exact
//!   rational breakpoints, session outcomes.
//! * **Robustness**: arbitrary garbage bytes never panic or hang the
//!   frame reader, and arbitrary headers/payloads never panic the
//!   decoders — malformed input always surfaces as a typed
//!   [`WireError`].
//!
//! Green under `PROPTEST_SEED` 1–3 (and the default stream).

use hsa_engine::net::wire::{self, NetReply, NetRequest, ReadFrame, WireError};
use hsa_engine::{Engine, EngineConfig, Reply, Request, Service, ServiceConfig, TenantId};
use hsa_graph::{Cost, Lambda};
use hsa_tree::{CruId, Delta};
use hsa_workloads::{random_instance, Placement, RandomTreeParams};
use proptest::prelude::*;
use proptest::TestCaseError;

fn small_instance(seed: u64) -> (hsa_tree::CruTree, hsa_tree::CostModel) {
    random_instance(
        &RandomTreeParams {
            n_crus: 10,
            n_satellites: 3,
            placement: Placement::Random,
            ..RandomTreeParams::default()
        },
        seed,
    )
}

/// encode → wire bytes → parse → decode → re-encode must reproduce the
/// frame byte-for-byte (the codec is canonical on its own output).
fn roundtrip_request(req: &Request, corr: u64) -> Result<(), TestCaseError> {
    let frame = wire::request_frame(corr, req);
    let bytes = frame.encode();
    let mut r = &bytes[..];
    let ReadFrame::Frame(parsed) =
        wire::read_frame(&mut r, wire::DEFAULT_MAX_FRAME_LEN).expect("in-memory read cannot fail")
    else {
        return Err(TestCaseError::fail("encoded frame did not parse"));
    };
    prop_assert_eq!(&parsed, &frame, "frame changed across the byte layer");
    let NetRequest::Submit(decoded) = wire::decode_request(&parsed)
        .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?
    else {
        return Err(TestCaseError::fail("request decoded as a control frame"));
    };
    let reencoded = wire::request_frame(corr, &decoded).encode();
    prop_assert_eq!(
        reencoded.as_ref(),
        bytes.as_ref(),
        "request round trip is not byte-identical"
    );
    Ok(())
}

fn roundtrip_reply(reply: &Reply, corr: u64, tenant: u64) -> Result<(), TestCaseError> {
    let frame = wire::reply_frame(corr, tenant, reply);
    let bytes = frame.encode();
    let mut r = &bytes[..];
    let ReadFrame::Frame(parsed) =
        wire::read_frame(&mut r, wire::DEFAULT_MAX_FRAME_LEN).expect("in-memory read cannot fail")
    else {
        return Err(TestCaseError::fail("encoded frame did not parse"));
    };
    let NetReply::Reply(decoded) = wire::decode_server_frame(&parsed)
        .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?
    else {
        return Err(TestCaseError::fail("reply decoded as a control frame"));
    };
    let reencoded = wire::reply_frame(corr, tenant, &decoded).encode();
    prop_assert_eq!(
        reencoded.as_ref(),
        bytes.as_ref(),
        "reply round trip is not byte-identical"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every request variant round-trips byte-identically.
    #[test]
    fn every_request_variant_roundtrips(
        seed in 0u64..500,
        corr in 0u64..u64::MAX,
        raw_id in 0u64..u64::MAX,
        lam in 0u32..=8,
    ) {
        let (tree, costs) = small_instance(seed);
        let lambda = Lambda::new(lam, 8).unwrap();
        let id = hsa_engine::InstanceId::from_raw(raw_id);
        let delta = Delta::new().set_host_time(CruId(0), Cost::new(seed % 997 + 1));
        let requests = [
            Request::solve(&tree, &costs, lambda),
            Request::solve_by_id(id, lambda),
            Request::frontier(&tree, &costs),
            Request::frontier_by_id(id),
            Request::delta(TenantId(seed), delta, lambda),
        ];
        for req in &requests {
            roundtrip_request(req, corr)?;
        }
    }

    /// Every reply variant — produced by a real verify-mode service, so
    /// the payloads carry full solutions and frontiers — round-trips
    /// byte-identically.
    #[test]
    fn every_reply_variant_roundtrips(
        seed in 0u64..500,
        corr in 0u64..u64::MAX,
        lam in 0u32..=8,
    ) {
        let (tree, costs) = small_instance(seed);
        let lambda = Lambda::new(lam, 8).unwrap();
        let engine = std::sync::Arc::new(Engine::new(EngineConfig::default()));
        let service = Service::new(engine, ServiceConfig {
            workers: 1,
            verify: true,
            ..ServiceConfig::default()
        });
        let tenant = TenantId(seed);
        service.open_tenant(tenant, &tree, &costs).unwrap();
        let delta = Delta::new().set_host_time(tree.root(), Cost::new(seed % 997 + 1));
        let replies = [
            service.submit(Request::solve(&tree, &costs, lambda)).wait().unwrap(),
            service.submit(Request::frontier(&tree, &costs)).wait().unwrap(),
            service.submit(Request::delta(tenant, delta, lambda)).wait().unwrap(),
        ];
        for reply in &replies {
            roundtrip_reply(reply, corr, tenant.0)?;
        }
    }

    /// Arbitrary bytes: the frame reader terminates without panicking,
    /// and whatever frame it produces decodes to a value or a typed
    /// error — never a panic.
    #[test]
    fn garbage_never_panics_the_codec(
        bytes in proptest::collection::vec(0u8..=255, 256),
        len in 0usize..=256,
    ) {
        let mut r = &bytes[..len];
        match wire::read_frame(&mut r, 4096) {
            Ok(ReadFrame::Frame(frame)) => {
                let _ = wire::decode_request(&frame);
                let _ = wire::decode_server_frame(&frame);
            }
            Ok(ReadFrame::Eof | ReadFrame::Oversized(..) | ReadFrame::Undersized(..)) => {}
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        }
    }

    /// Incremental reassembly is fragmentation-blind: a frame stream cut
    /// into arbitrary chunks (the decoder's nonblocking-read diet) comes
    /// back out as exactly the frames that went in, byte-identically —
    /// and mid-frame truncation simply leaves the tail buffered.
    #[test]
    fn fragmented_streams_reassemble_byte_identically(
        seed in 0u64..500,
        lam in 0u32..=8,
        cuts in proptest::collection::vec(1usize..64, 16),
        truncate in 0usize..32,
    ) {
        let (tree, costs) = small_instance(seed);
        let lambda = Lambda::new(lam, 8).unwrap();
        let frames = [
            wire::hello_frame(1),
            wire::request_frame(2, &Request::solve(&tree, &costs, lambda)),
            wire::request_frame(3, &Request::frontier(&tree, &costs)),
            wire::error_frame(4, 7, &WireError::Quota(7)),
        ];
        let mut stream: Vec<u8> = Vec::new();
        for frame in &frames {
            stream.extend_from_slice(&frame.encode());
        }
        // Drop up to `truncate` tail bytes: the last frame may arrive cut.
        let cut_off = truncate.min(stream.len() - 1);
        let fed = &stream[..stream.len() - cut_off];

        let mut dec = wire::FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0usize;
        let mut cut_iter = cuts.iter().copied().chain(std::iter::repeat(17));
        while pos < fed.len() {
            let step = cut_iter.next().unwrap_or(17).min(fed.len() - pos);
            dec.push(&fed[pos..pos + step]);
            pos += step;
            while let Some(d) = dec.next(wire::DEFAULT_MAX_FRAME_LEN) {
                match d {
                    wire::Decoded::Frame(f) => got.push(f.to_frame()),
                    other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
                }
            }
        }
        let whole = if cut_off == 0 { frames.len() } else { frames.len() - 1 };
        prop_assert!(got.len() >= whole, "lost complete frames to fragmentation");
        for (g, f) in got.iter().zip(&frames) {
            let (ge, fe) = (g.encode(), f.encode());
            prop_assert_eq!(ge.as_ref(), fe.as_ref());
        }
        // Whatever was withheld is still buffered, not silently dropped.
        let consumed: usize = got.iter().map(|f| f.encode().len()).sum();
        prop_assert_eq!(consumed + dec.buffered(), fed.len());
    }

    /// Arbitrary headers over arbitrary payloads: unknown kinds and
    /// unparseable bodies answer typed errors.
    #[test]
    fn random_frames_decode_to_typed_errors(
        kind in 0u8..=255,
        tenant in 0u64..u64::MAX,
        corr in 0u64..u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 48),
        plen in 0usize..=48,
    ) {
        let frame = wire::Frame {
            version: wire::PROTOCOL_VERSION,
            kind,
            tenant,
            corr,
            payload: payload[..plen].to_vec(),
        };
        if let Err(e) = wire::decode_request(&frame) {
            prop_assert!(matches!(e, WireError::UnknownKind(_) | WireError::Malformed(_)));
        }
        if let Err(e) = wire::decode_server_frame(&frame) {
            prop_assert!(matches!(e, WireError::UnknownKind(_) | WireError::Malformed(_)));
        }
    }
}
