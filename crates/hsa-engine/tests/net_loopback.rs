//! Integration coverage of the TCP front door over loopback: round
//! trips, malformed frames answered with error frames, per-tenant
//! quotas, graceful shutdown draining every accepted ticket, and
//! reconnect resuming id-addressed requests via the raw instance id.

use hsa_engine::net::wire::{self, WireError};
use hsa_engine::net::{Client, ClientError, NetConfig, NetServer};
use hsa_engine::{Engine, EngineConfig, Request, Service, ServiceConfig, TenantId};
use hsa_graph::{Cost, Lambda};
use hsa_tree::Delta;
use hsa_workloads::{random_instance, Placement, RandomTreeParams};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn server(cfg: ServiceConfig, net: NetConfig) -> NetServer {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let service = Arc::new(Service::new(engine, cfg));
    NetServer::bind("127.0.0.1:0", service, net).expect("binding loopback")
}

fn verify_service() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        verify: true,
        ..ServiceConfig::default()
    }
}

#[test]
fn full_round_trip_over_loopback() {
    let server = server(verify_service(), NetConfig::default());
    let sc = hsa_workloads::paper_scenario();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // First contact by value; every answer under verify mode.
    let first = client.solve(&sc.tree, &sc.costs, Lambda::HALF).unwrap();
    let id = first.instance_id().expect("first contact learns the id");
    let sol = first.solution().expect("solve answers a solution").clone();

    // Hot path by id: same answer, no tree on the wire.
    let again = client.solve_by_id(id, Lambda::HALF).unwrap();
    assert_eq!(
        wire::reply_json(&again),
        wire::reply_json(&first),
        "id-addressed solve must answer byte-identically"
    );

    // Frontier, by value then by id.
    let frontier = client.frontier(&sc.tree, &sc.costs).unwrap();
    assert_eq!(frontier.instance_id(), Some(id));
    let fr = frontier.frontier().expect("frontier reply");
    assert_eq!(fr.objective_at(Lambda::HALF), sol.objective);
    let frontier_by_id = client.frontier_by_id(id).unwrap();
    assert_eq!(
        wire::reply_json(&frontier_by_id),
        wire::reply_json(&frontier)
    );

    // A tenant session over the wire: open, delta, close.
    let tenant = TenantId(42);
    client.open_tenant(tenant, &sc.tree, &sc.costs).unwrap();
    let busier = Delta::new().scale_subtree(sc.tree.root(), 11, 10);
    let applied = client.delta(tenant, busier, Lambda::HALF).unwrap();
    let post = applied.solution().expect("delta answers a solution");
    assert!(post.objective >= sol.objective);
    let stats = client.close_tenant(tenant).unwrap();
    assert_eq!(stats.applies, 1);

    // Server-side counters saw exactly the submitted requests.
    let svc = server.service().stats();
    assert_eq!(svc.completed, 5);
    assert_eq!(svc.failed, 0);
    server.shutdown();
}

#[test]
fn anytime_over_loopback_matches_in_process_byte_for_byte() {
    let server = server(verify_service(), NetConfig::default());
    let sc = hsa_workloads::paper_scenario();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A budget no paper-scale instance can exhaust: the exact arm always
    // finishes, so the anytime answer is deterministic — byte-identity
    // against the in-process service is a fair assertion.
    let budget_ms = 60_000;
    let remote = client
        .solve_anytime(&sc.tree, &sc.costs, Lambda::HALF, budget_ms)
        .unwrap();
    let answer = remote.anytime().expect("anytime reply");
    assert!(answer.exact_finished, "a generous budget lets exact finish");
    assert!(answer.certificate.is_tight());
    assert_eq!(answer.certificate.upper, answer.solution.objective);

    // The same request through the same service, no wire in the way.
    let local = server
        .service()
        .submit(Request::solve_anytime(
            &sc.tree,
            &sc.costs,
            Lambda::HALF,
            budget_ms,
        ))
        .wait()
        .unwrap();
    assert_eq!(
        wire::reply_json(&remote),
        wire::reply_json(&local),
        "the wire must not change the anytime answer"
    );

    // And the anytime solution is the exact solution: the plain solve
    // path answers the identical cut.
    let solve = client.solve(&sc.tree, &sc.costs, Lambda::HALF).unwrap();
    let sol = solve.solution().expect("solve answers a solution");
    assert_eq!(sol.cut, answer.solution.cut);
    assert_eq!(sol.objective, answer.solution.objective);
    assert_eq!(solve.instance_id(), remote.instance_id());
    server.shutdown();
}

#[test]
fn service_errors_travel_as_typed_frames() {
    let server = server(verify_service(), NetConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Unknown instance id.
    let unknown = hsa_engine::InstanceId::from_raw(0xDEAD_BEEF);
    let err = client.solve_by_id(unknown, Lambda::HALF).unwrap_err();
    match err {
        ClientError::Remote(WireError::Service(code, _)) => {
            assert_eq!(code, "engine.unknown_instance")
        }
        other => panic!("expected a service error frame, got {other}"),
    }

    // Unknown tenant.
    let err = client
        .delta(TenantId(7), Delta::new(), Lambda::HALF)
        .unwrap_err();
    match err {
        ClientError::Remote(WireError::Service(code, _)) => assert_eq!(code, "unknown_tenant"),
        other => panic!("expected a service error frame, got {other}"),
    }

    // The connection survives error frames.
    let sc = hsa_workloads::paper_scenario();
    assert!(client.solve(&sc.tree, &sc.costs, Lambda::HALF).is_ok());
    server.shutdown();
}

#[test]
fn malformed_frames_answer_error_frames_not_hangs() {
    let server = server(verify_service(), NetConfig::default());
    let sc = hsa_workloads::paper_scenario();

    // Bad version byte: refused under its own correlation id, connection
    // stays up (the header layout is version-stable).
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut bad_version = wire::request_frame(
        99,
        &Request::solve_by_id(hsa_engine::InstanceId::from_raw(1), Lambda::HALF),
    );
    bad_version.version = 77;
    client.send_raw(&bad_version.encode()).unwrap();
    let frame = client.recv_raw().unwrap();
    assert_eq!(frame.kind, wire::kind::ERROR);
    assert_eq!(frame.corr, 99, "version refusals echo the correlation id");
    let wire::NetReply::Error(err) = wire::decode_server_frame(&frame).unwrap() else {
        panic!("expected an error body");
    };
    assert_eq!(
        err,
        WireError::UnsupportedVersion(77, wire::PROTOCOL_VERSION)
    );

    // Unknown kind byte.
    let unknown_kind = wire::Frame {
        version: wire::PROTOCOL_VERSION,
        kind: 0x6F,
        tenant: 0,
        corr: 123,
        payload: b"{}".to_vec(),
    };
    client.send_raw(&unknown_kind.encode()).unwrap();
    let frame = client.recv_raw().unwrap();
    assert_eq!(frame.kind, wire::kind::ERROR);
    assert_eq!(frame.corr, 123);
    let wire::NetReply::Error(err) = wire::decode_server_frame(&frame).unwrap() else {
        panic!("expected an error body");
    };
    assert_eq!(err, WireError::UnknownKind(0x6F));

    // Garbage payload under a valid kind.
    let garbage = wire::Frame {
        version: wire::PROTOCOL_VERSION,
        kind: wire::kind::SOLVE,
        tenant: 0,
        corr: 7,
        payload: b"not json at all".to_vec(),
    };
    client.send_raw(&garbage.encode()).unwrap();
    let frame = client.recv_raw().unwrap();
    assert_eq!((frame.kind, frame.corr), (wire::kind::ERROR, 7));
    assert!(matches!(
        wire::decode_server_frame(&frame).unwrap(),
        wire::NetReply::Error(WireError::Malformed(_))
    ));

    // The same connection still answers real requests after all three.
    assert!(client.solve(&sc.tree, &sc.costs, Lambda::HALF).is_ok());

    // Oversized length prefix: answered with an explicit error frame,
    // then the connection closes (the stream cannot re-synchronise).
    let mut oversized = Client::connect(server.local_addr()).unwrap();
    oversized
        .send_raw(&u32::MAX.to_be_bytes())
        .expect("writing a hostile prefix");
    let frame = oversized.recv_raw().unwrap();
    assert_eq!(frame.kind, wire::kind::ERROR);
    assert!(matches!(
        wire::decode_server_frame(&frame).unwrap(),
        wire::NetReply::Error(WireError::Oversized(..))
    ));
    assert!(oversized.recv_raw().is_err(), "connection must close");

    // Undersized length prefix: same story.
    let mut undersized = Client::connect(server.local_addr()).unwrap();
    undersized.send_raw(&4u32.to_be_bytes()).unwrap();
    undersized.send_raw(&[0u8; 4]).unwrap();
    let frame = undersized.recv_raw().unwrap();
    assert_eq!(frame.kind, wire::kind::ERROR);
    assert!(matches!(
        wire::decode_server_frame(&frame).unwrap(),
        wire::NetReply::Error(WireError::Malformed(_))
    ));
    assert!(undersized.recv_raw().is_err(), "connection must close");

    // A frame truncated mid-payload (client hangs up): the server drops
    // the connection without wedging — new connections still answer.
    let mut truncated = Client::connect(server.local_addr()).unwrap();
    let frame = wire::request_frame(1, &Request::solve(&sc.tree, &sc.costs, Lambda::HALF));
    let bytes = frame.encode();
    truncated.send_raw(&bytes[..bytes.len() / 2]).unwrap();
    drop(truncated);
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    assert!(fresh.solve(&sc.tree, &sc.costs, Lambda::HALF).is_ok());
    server.shutdown();
}

#[test]
fn per_tenant_quota_refuses_with_typed_frames() {
    let server = server(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        NetConfig {
            per_tenant_inflight: 1,
            ..NetConfig::default()
        },
    );
    // A tree big enough that its frontier keeps the single worker busy
    // while the follow-up burst arrives.
    let (tree, costs) = random_instance(
        &RandomTreeParams {
            n_crus: 220,
            n_satellites: 4,
            placement: Placement::Random,
            ..RandomTreeParams::default()
        },
        7,
    );
    let mut client = Client::connect(server.local_addr()).unwrap();

    const BURST: usize = 16;
    let mut corrs = Vec::new();
    corrs.push(client.send(&Request::frontier(&tree, &costs)).unwrap());
    for _ in 1..BURST {
        corrs.push(client.send(&Request::frontier(&tree, &costs)).unwrap());
    }
    let mut ok = 0usize;
    let mut refused = 0usize;
    for _ in 0..BURST {
        let (corr, outcome) = client.recv_any().unwrap();
        assert!(corrs.contains(&corr));
        match outcome {
            Ok(_) => ok += 1,
            Err(ClientError::Remote(WireError::Quota(0))) => refused += 1,
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert_eq!(ok + refused, BURST);
    assert!(ok >= 1, "the first request must be admitted");
    assert!(
        refused >= 1,
        "a 1-deep quota must refuse part of a {BURST}-burst"
    );
    // Quota slots are released: a fresh request sails through.
    assert!(client.frontier(&tree, &costs).is_ok());
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_accepted_ticket() {
    let server = server(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        NetConfig::default(),
    );
    let sc = hsa_workloads::paper_scenario();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Pipeline a burst and wait until the service has *accepted* all of
    // it (submitted counter), so shutdown finds real in-flight work.
    const BURST: u64 = 24;
    for i in 0..BURST {
        let lambda = Lambda::new(u32::try_from(i % 9).unwrap(), 8).unwrap();
        client
            .send(&Request::solve(&sc.tree, &sc.costs, lambda))
            .unwrap();
    }
    // `send` only queues; the burst travels as one write.
    client.flush().unwrap();
    let service = Arc::clone(server.service());
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.stats().submitted < BURST {
        assert!(Instant::now() < deadline, "submission stalled");
        std::thread::yield_now();
    }

    // Shut down while the burst is (at least partly) in flight.
    server.shutdown();

    // Every accepted ticket was drained and its answer flushed before
    // the connection closed.
    let mut answered = 0u64;
    while let Ok((_corr, outcome)) = client.recv_any() {
        outcome.expect("drained answers are real answers");
        answered += 1;
    }
    assert_eq!(answered, BURST, "shutdown must drain all accepted tickets");
    assert_eq!(service.stats().completed, BURST);
}

#[test]
fn reconnecting_client_resumes_by_raw_id() {
    let server = server(verify_service(), NetConfig::default());
    let sc = hsa_workloads::paper_scenario();

    // First connection: learn the id, persist only its raw u64.
    let raw = {
        let mut client = Client::connect(server.local_addr()).unwrap();
        let reply = client.solve(&sc.tree, &sc.costs, Lambda::HALF).unwrap();
        reply
            .instance_id()
            .expect("first contact learns the id")
            .raw()
    };

    // Second connection: resume id-addressed requests without ever
    // sending the tree again.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let id = hsa_engine::InstanceId::from_raw(raw);
    let reply = client.solve_by_id(id, Lambda::HALF).unwrap();
    let sol = reply.solution().expect("id-addressed solve answers");
    assert!(sol.objective > 0 || sol.report.end_to_end >= Cost::ZERO);
    let frontier = client.frontier_by_id(id).unwrap();
    assert_eq!(
        frontier.frontier().unwrap().objective_at(Lambda::HALF),
        sol.objective
    );
    server.shutdown();
}
