//! Raw readiness-multiplexing syscalls for the reactor: a hand-rolled
//! `poll(2)` wrapper with a Linux `epoll(7)` fast path, declared via
//! `extern "C"` against libc symbols the process already links — no new
//! crates. This is the only module in the crate allowed to use `unsafe`;
//! everything it exports is a safe, owned [`Poller`].
//!
//! The two backends expose one level-triggered surface: register an fd
//! with a `u64` token and the interest set, [`Poller::wait`] fills a
//! caller-owned event buffer. Level-triggered semantics keep the
//! connection state machines simple — a socket that still has buffered
//! bytes or queued output shows up again on the next wait.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

pub const POLLIN: i16 = 0x001;
pub const POLLOUT: i16 = 0x004;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

#[cfg(target_os = "linux")]
mod epoll_sys {
    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;

    /// `struct epoll_event`. The kernel ABI packs this on x86-64 (the
    /// `data` field sits at offset 4); other architectures use natural
    /// alignment. Field reads must copy out by value.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept / EOF).
    pub readable: bool,
    /// The fd can take more output.
    pub writable: bool,
    /// The peer hung up or the fd errored — drain reads, then close.
    pub hangup: bool,
}

/// Interest registration shared by both backends.
#[derive(Clone, Copy)]
struct Interest {
    fd: RawFd,
    token: u64,
    readable: bool,
    writable: bool,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: RawFd,
        buf: Vec<epoll_sys::EpollEvent>,
        registered: usize,
    },
    Poll {
        interests: Vec<Interest>,
        fds: Vec<PollFd>,
    },
}

/// A level-triggered readiness multiplexer: `epoll(7)` on Linux, the
/// portable `poll(2)` rebuild-the-array fallback elsewhere (and on Linux
/// if `epoll_create1` fails).
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// A new empty poller.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let epfd = unsafe { epoll_sys::epoll_create1(epoll_sys::EPOLL_CLOEXEC) };
            if epfd >= 0 {
                return Ok(Poller {
                    backend: Backend::Epoll {
                        epfd,
                        buf: vec![epoll_sys::EpollEvent { events: 0, data: 0 }; 64],
                        registered: 0,
                    },
                });
            }
        }
        Ok(Poller {
            backend: Backend::Poll {
                interests: Vec::new(),
                fds: Vec::new(),
            },
        })
    }

    /// Starts watching `fd` under `token` for the given interest set.
    pub fn register(
        &mut self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        let interest = Interest {
            fd,
            token,
            readable,
            writable,
        };
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll {
                epfd, registered, ..
            } => {
                epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_ADD, interest)?;
                *registered += 1;
                Ok(())
            }
            Backend::Poll { interests, .. } => {
                debug_assert!(interests.iter().all(|i| i.fd != fd));
                interests.push(interest);
                Ok(())
            }
        }
    }

    /// Updates the interest set of an already-registered fd.
    pub fn modify(
        &mut self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        let interest = Interest {
            fd,
            token,
            readable,
            writable,
        };
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_MOD, interest),
            Backend::Poll { interests, .. } => {
                let slot = interests
                    .iter_mut()
                    .find(|i| i.fd == fd)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
                *slot = interest;
                Ok(())
            }
        }
    }

    /// Stops watching `fd`. The caller still owns (and closes) the fd.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll {
                epfd, registered, ..
            } => {
                let interest = Interest {
                    fd,
                    token: 0,
                    readable: false,
                    writable: false,
                };
                epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_DEL, interest)?;
                *registered = registered.saturating_sub(1);
                Ok(())
            }
            Backend::Poll { interests, .. } => {
                interests.retain(|i| i.fd != fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready (or the timeout
    /// lapses), appending reports into `events` (cleared first).
    /// `timeout_ms: None` waits indefinitely. Returns the report count;
    /// `0` means timeout. EINTR retries internally.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<usize> {
        events.clear();
        let timeout = timeout_ms.unwrap_or(-1);
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll {
                epfd,
                buf,
                registered,
            } => {
                if buf.len() < (*registered).max(1) {
                    buf.resize(
                        (*registered).next_power_of_two(),
                        epoll_sys::EpollEvent { events: 0, data: 0 },
                    );
                }
                let n = loop {
                    let rc = unsafe {
                        epoll_sys::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout)
                    };
                    if rc >= 0 {
                        break rc as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for ev in &buf[..n] {
                    // Copy packed fields out by value before touching them.
                    let bits = { ev.events };
                    let token = { ev.data };
                    events.push(Event {
                        token,
                        readable: bits & epoll_sys::EPOLLIN != 0,
                        writable: bits & epoll_sys::EPOLLOUT != 0,
                        hangup: bits & (epoll_sys::EPOLLERR | epoll_sys::EPOLLHUP) != 0,
                    });
                }
                Ok(n)
            }
            Backend::Poll { interests, fds } => {
                fds.clear();
                for i in interests.iter() {
                    let mut mask = 0i16;
                    if i.readable {
                        mask |= POLLIN;
                    }
                    if i.writable {
                        mask |= POLLOUT;
                    }
                    fds.push(PollFd {
                        fd: i.fd,
                        events: mask,
                        revents: 0,
                    });
                }
                if fds.is_empty() {
                    // Nothing registered: poll(2) with no fds is a sleep.
                    if timeout < 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            "infinite wait with no fds registered",
                        ));
                    }
                }
                let n = loop {
                    let rc =
                        unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout) };
                    if rc >= 0 {
                        break rc as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                if n > 0 {
                    for (pfd, i) in fds.iter().zip(interests.iter()) {
                        let got = pfd.revents;
                        if got == 0 {
                            continue;
                        }
                        events.push(Event {
                            token: i.token,
                            readable: got & POLLIN != 0,
                            writable: got & POLLOUT != 0,
                            hangup: got & (POLLERR | POLLHUP) != 0,
                        });
                    }
                }
                Ok(events.len())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd, .. } = &self.backend {
            unsafe {
                close(*epfd);
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_ctl(epfd: RawFd, op: i32, interest: Interest) -> io::Result<()> {
    let mut bits = 0u32;
    if interest.readable {
        bits |= epoll_sys::EPOLLIN;
    }
    if interest.writable {
        bits |= epoll_sys::EPOLLOUT;
    }
    let mut ev = epoll_sys::EpollEvent {
        events: bits,
        data: interest.token,
    };
    let rc = unsafe { epoll_sys::epoll_ctl(epfd, op, interest.fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_tracks_pipe_bytes() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, true, false).unwrap();

        let mut events = Vec::new();
        // Nothing written yet: a short wait times out.
        assert_eq!(poller.wait(&mut events, Some(0)).unwrap(), 0);

        a.write_all(b"x").unwrap();
        assert_eq!(poller.wait(&mut events, Some(1000)).unwrap(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unread bytes keep reporting.
        assert_eq!(poller.wait(&mut events, Some(1000)).unwrap(), 1);
        let mut buf = [0u8; 8];
        let _ = b.read(&mut buf).unwrap();
        assert_eq!(poller.wait(&mut events, Some(0)).unwrap(), 0);

        // Write interest on an empty socket buffer reports writable.
        poller.modify(b.as_raw_fd(), 7, true, true).unwrap();
        assert_eq!(poller.wait(&mut events, Some(1000)).unwrap(), 1);
        assert!(events[0].writable);

        poller.deregister(b.as_raw_fd()).unwrap();
        assert_eq!(poller.wait(&mut events, Some(0)).unwrap(), 0);
    }

    #[test]
    fn hangup_reported_on_peer_close() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 1, true, false).unwrap();
        drop(a);
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, Some(1000)).unwrap(), 1);
        // Closed peer: readable EOF and/or hangup, either signal works
        // for the reactor (both funnel into a drain-then-close).
        assert!(events[0].readable || events[0].hangup);
    }
}
