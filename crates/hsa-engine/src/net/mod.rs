//! The network front door (DESIGN.md §13): a TCP server speaking a
//! versioned, length-prefixed binary protocol over the in-process
//! [`Service`], and the blocking [`Client`] that drives it.
//!
//! The core engine stays transport-agnostic — this module only maps
//! frames onto the existing [`Request`] / [`Reply`] / `ServiceError`
//! surface (the single source of truth for the schema) and adds the
//! production concerns a wire needs: per-tenant admission quotas on top
//! of the service's global backpressure gate, explicit error frames for
//! unknown kinds/versions and malformed payloads, graceful shutdown that
//! drains every accepted ticket, and reconnect-friendly instance ids
//! ([`crate::InstanceId::from_raw`]) so a hot client resumes id-addressed
//! requests on a fresh connection.
//!
//! ```
//! use hsa_engine::net::{Client, NetConfig, NetServer};
//! use hsa_engine::{Engine, EngineConfig, Service, ServiceConfig};
//! use hsa_graph::Lambda;
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::new(EngineConfig::default()));
//! let service = Arc::new(Service::new(engine, ServiceConfig::default()));
//! let server = NetServer::bind("127.0.0.1:0", service, NetConfig::default()).unwrap();
//!
//! let sc = hsa_workloads::paper_scenario();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let first = client.solve(&sc.tree, &sc.costs, Lambda::HALF).unwrap();
//! let id = first.instance_id().expect("first contact returns the id");
//! let again = client.solve_by_id(id, Lambda::HALF).unwrap();
//! assert_eq!(
//!     again.solution().unwrap().objective,
//!     first.solution().unwrap().objective,
//! );
//! server.shutdown();
//! ```
//!
//! [`Service`]: crate::Service
//! [`Request`]: crate::Request
//! [`Reply`]: crate::Reply

pub mod wire;

mod client;
mod reactor;
mod server;
mod sys;

pub use client::{Client, ClientError};
pub use server::{NetConfig, NetServer, NetStats};
