//! The TCP front door: accept loop, per-connection reader/waiter/writer
//! crew, per-tenant admission quotas, graceful shutdown.

use super::wire::{self, Frame, NetRequest, ReadFrame, WireError};
use crate::service::{Service, Ticket};
use std::collections::BTreeMap;
use std::io::{self, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Network-layer configuration.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Cap on the length prefix a peer may announce. A frame above it is
    /// answered with [`WireError::Oversized`] and the connection closed
    /// (the stream cannot be re-synchronised past unread bytes).
    pub max_frame_len: usize,
    /// Per-tenant admission quota: in-flight requests per header tenant
    /// id, across all connections, **before** they reach the service's
    /// global backpressure gate. Refusals answer [`WireError::Quota`]
    /// without blocking the reader. 0 means no per-tenant cap.
    pub per_tenant_inflight: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
            per_tenant_inflight: 0,
        }
    }
}

/// What the waiter forwards to the writer: either a fulfilled ticket's
/// frame-to-be or an already-encoded control/error frame.
enum Outbound {
    Frame(Frame),
    /// Flush and close the write half (end of connection).
    Close,
}

struct ConnHandle {
    stream: TcpStream,
    reader: JoinHandle<()>,
    waiter: JoinHandle<()>,
    writer: JoinHandle<()>,
}

struct Inner {
    service: Arc<Service>,
    cfg: NetConfig,
    shutting_down: AtomicBool,
    /// In-flight requests per header tenant id (the admission quota).
    inflight: Mutex<BTreeMap<u64, usize>>,
    /// Live connections, for shutdown to unblock and join.
    conns: Mutex<Vec<ConnHandle>>,
}

impl Inner {
    /// Tries to take one quota slot for `tenant`; false means refuse.
    fn admit(&self, tenant: u64) -> bool {
        if self.cfg.per_tenant_inflight == 0 {
            return true;
        }
        let mut map = self.inflight.lock().expect("quota map poisoned");
        let slot = map.entry(tenant).or_insert(0);
        if *slot >= self.cfg.per_tenant_inflight {
            return false;
        }
        *slot += 1;
        true
    }

    fn release(&self, tenant: u64) {
        if self.cfg.per_tenant_inflight == 0 {
            return;
        }
        let mut map = self.inflight.lock().expect("quota map poisoned");
        match map.get_mut(&tenant) {
            Some(slot) if *slot > 1 => *slot -= 1,
            _ => {
                map.remove(&tenant);
            }
        }
    }
}

/// A blocking TCP server over a [`Service`].
///
/// Each accepted connection runs a three-thread crew:
///
/// * the **reader** decodes frames, answers protocol errors, checks the
///   per-tenant quota and hands admitted requests to [`Service::submit`]
///   — which blocks at the global backpressure gate, so a saturated
///   service propagates backpressure onto the TCP stream instead of
///   buffering unboundedly;
/// * the **waiter** resolves tickets in submission order and encodes each
///   answer under its original correlation id;
/// * the **writer** streams the encoded frames back and flushes.
///
/// [`NetServer::shutdown`] is graceful: stop accepting, unblock the
/// readers (no new submissions), let the waiters drain every accepted
/// ticket, flush the writers, then close. Dropping the server shuts it
/// down the same way.
pub struct NetServer {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
    down: AtomicBool,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`NetServer::local_addr`]) and starts accepting.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<Service>,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            service,
            cfg,
            shutting_down: AtomicBool::new(false),
            inflight: Mutex::new(BTreeMap::new()),
            conns: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("hsa-net-accept".to_string())
            .spawn(move || accept_loop(listener, accept_inner))
            .expect("spawning the accept thread");
        Ok(NetServer {
            inner,
            local_addr,
            accept: Mutex::new(Some(accept)),
            down: AtomicBool::new(false),
        })
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<Service> {
        &self.inner.service
    }

    /// Graceful shutdown: stop accepting, unblock every connection's
    /// reader, drain all accepted tickets through the waiters, flush the
    /// writers, close. Idempotent; returns once everything is joined.
    pub fn shutdown(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.lock().expect("accept handle poisoned").take() {
            let _ = accept.join();
        }
        // Stop the readers: no more frames will be accepted. In-flight
        // tickets keep their gate slots and resolve below.
        let conns = std::mem::take(&mut *self.inner.conns.lock().expect("conn list poisoned"));
        for conn in &conns {
            let _ = conn.stream.shutdown(Shutdown::Read);
        }
        for conn in conns {
            // Reader exit drops the ticket channel; the waiter then drains
            // every accepted ticket and closes the writer, which flushes.
            let _ = conn.reader.join();
            let _ = conn.waiter.join();
            let _ = conn.writer.join();
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.shutting_down.load(Ordering::SeqCst) {
            // The wake-up connection (or a raced client) is dropped
            // unanswered; accepted work is already owned by its crew.
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        spawn_connection(stream, &inner);
    }
}

fn spawn_connection(stream: TcpStream, inner: &Arc<Inner>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // reader -> waiter: accepted tickets, in submission order.
    let (ticket_tx, ticket_rx) = channel::<(u64, u64, Ticket)>();
    // reader/waiter -> writer: encoded frames.
    let (out_tx, out_rx) = channel::<Outbound>();

    let reader_inner = Arc::clone(inner);
    let reader_out = out_tx.clone();
    let reader = std::thread::Builder::new()
        .name("hsa-net-reader".to_string())
        .spawn(move || reader_loop(read_half, reader_inner, ticket_tx, reader_out))
        .expect("spawning a reader thread");

    let waiter_inner = Arc::clone(inner);
    let waiter = std::thread::Builder::new()
        .name("hsa-net-waiter".to_string())
        .spawn(move || waiter_loop(ticket_rx, waiter_inner, out_tx))
        .expect("spawning a waiter thread");

    let writer = std::thread::Builder::new()
        .name("hsa-net-writer".to_string())
        .spawn(move || writer_loop(write_half, out_rx))
        .expect("spawning a writer thread");

    let mut conns = inner.conns.lock().expect("conn list poisoned");
    // Reap connections whose crews already exited (dropping their handles
    // detaches nothing live and closes the retained fd).
    conns.retain(|c| !(c.reader.is_finished() && c.waiter.is_finished() && c.writer.is_finished()));
    conns.push(ConnHandle {
        stream,
        reader,
        waiter,
        writer,
    });
}

fn reader_loop(
    mut stream: TcpStream,
    inner: Arc<Inner>,
    tickets: Sender<(u64, u64, Ticket)>,
    out: Sender<Outbound>,
) {
    loop {
        let frame = match wire::read_frame(&mut stream, inner.cfg.max_frame_len) {
            // Disconnect, truncated frame, or the shutdown unblock: the
            // connection is over either way.
            Err(_) | Ok(ReadFrame::Eof) => break,
            Ok(ReadFrame::Oversized(len, max)) => {
                // The announced bytes are unread, so the stream is
                // desynchronised: answer (corr 0 — the header is part of
                // the unread region) and close.
                let err = WireError::Oversized(len as u64, max as u64);
                let _ = out.send(Outbound::Frame(wire::error_frame(0, 0, &err)));
                break;
            }
            Ok(ReadFrame::Undersized(len)) => {
                let err = WireError::Malformed(format!(
                    "length prefix {len} is shorter than the {}-byte header",
                    wire::HEADER_LEN
                ));
                let _ = out.send(Outbound::Frame(wire::error_frame(0, 0, &err)));
                break;
            }
            Ok(ReadFrame::Frame(frame)) => frame,
        };
        // The header layout is version-stable, so a version we don't
        // speak can still be refused under its own correlation id; the
        // frame boundary is intact and the connection stays up.
        if frame.version != wire::PROTOCOL_VERSION {
            let err = WireError::UnsupportedVersion(frame.version, wire::PROTOCOL_VERSION);
            let _ = out.send(Outbound::Frame(wire::error_frame(
                frame.corr,
                frame.tenant,
                &err,
            )));
            continue;
        }
        match wire::decode_request(&frame) {
            Err(err) => {
                let _ = out.send(Outbound::Frame(wire::error_frame(
                    frame.corr,
                    frame.tenant,
                    &err,
                )));
            }
            Ok(NetRequest::Hello) => {
                let _ = out.send(Outbound::Frame(wire::hello_ack_frame(
                    frame.corr,
                    inner.cfg.max_frame_len,
                )));
            }
            Ok(NetRequest::OpenTenant(tenant, tree, costs)) => {
                let reply = match inner.service.open_tenant(tenant, &tree, &costs) {
                    Ok(()) => wire::tenant_opened_frame(frame.corr, tenant),
                    Err(e) => wire::error_frame(frame.corr, tenant.0, &WireError::from(&e)),
                };
                let _ = out.send(Outbound::Frame(reply));
            }
            Ok(NetRequest::CloseTenant(tenant)) => {
                let reply = match inner.service.close_tenant(tenant) {
                    Ok(stats) => wire::tenant_closed_frame(frame.corr, tenant, &stats),
                    Err(e) => wire::error_frame(frame.corr, tenant.0, &WireError::from(&e)),
                };
                let _ = out.send(Outbound::Frame(reply));
            }
            Ok(NetRequest::Submit(request)) => {
                if !inner.admit(frame.tenant) {
                    let err = WireError::Quota(frame.tenant);
                    let _ = out.send(Outbound::Frame(wire::error_frame(
                        frame.corr,
                        frame.tenant,
                        &err,
                    )));
                    continue;
                }
                // Blocking submit: the global gate's backpressure stalls
                // this reader, which stalls the TCP stream — bounded
                // memory end to end.
                let ticket = inner.service.submit(request);
                if tickets.send((frame.corr, frame.tenant, ticket)).is_err() {
                    inner.release(frame.tenant);
                    break;
                }
            }
        }
    }
    // Dropping `tickets` ends the waiter once it has drained every
    // accepted ticket; the waiter's drop of `out` then ends the writer.
}

fn waiter_loop(tickets: Receiver<(u64, u64, Ticket)>, inner: Arc<Inner>, out: Sender<Outbound>) {
    // Submission order; each answer still travels under its own
    // correlation id. Draining runs to completion on shutdown because the
    // service workers stay up until the server (and its tickets) are gone.
    while let Ok((corr, tenant, ticket)) = tickets.recv() {
        let frame = match ticket.wait() {
            Ok(reply) => wire::reply_frame(corr, tenant, &reply),
            Err(e) => wire::error_frame(corr, tenant, &WireError::from(&e)),
        };
        inner.release(tenant);
        if out.send(Outbound::Frame(frame)).is_err() {
            break;
        }
    }
    let _ = out.send(Outbound::Close);
}

fn writer_loop(stream: TcpStream, frames: Receiver<Outbound>) {
    let mut w = BufWriter::new(stream);
    while let Ok(outbound) = frames.recv() {
        match outbound {
            Outbound::Frame(frame) => {
                if w.write_all(&frame.encode()).is_err() {
                    break;
                }
                // One flush per queue drain would be friendlier to
                // batching; per-frame flush keeps loopback latency honest
                // and the protocol simple.
                if w.flush().is_err() {
                    break;
                }
            }
            Outbound::Close => break,
        }
    }
    let _ = w.flush();
    // Send FIN ourselves: the server retains one more clone of this
    // socket (the shutdown handle in `conns`), so merely dropping the
    // write half would leave the peer blocked waiting for EOF.
    let _ = w.get_ref().shutdown(Shutdown::Write);
}
