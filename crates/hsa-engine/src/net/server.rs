//! The TCP front door: accept loop, event-driven reactor shards,
//! per-tenant admission quotas, connection cap, graceful shutdown.

use super::reactor::{Reactor, Shard};
use super::wire::{self, WireError};
use crate::service::Service;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Network-layer configuration.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Cap on the length prefix a peer may announce. A frame above it is
    /// answered with [`WireError::Oversized`] and the connection closed
    /// (the stream cannot be re-synchronised past unread bytes).
    pub max_frame_len: usize,
    /// Per-tenant admission quota: in-flight requests per header tenant
    /// id, across all connections, **before** they reach the service's
    /// global backpressure gate. Refusals answer [`WireError::Quota`]
    /// without blocking the reader. 0 means no per-tenant cap.
    pub per_tenant_inflight: usize,
    /// Cap on concurrently served connections. An accept past the cap is
    /// answered with a [`WireError::ConnLimit`] frame and closed — the
    /// reactor's fd tables stay bounded and overload is explicit instead
    /// of an eventual EMFILE. 0 means no cap.
    pub max_connections: usize,
    /// Reactor threads (connection shards). 0 picks a small default from
    /// the machine's parallelism; connections are dealt round-robin.
    pub reactor_threads: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
            per_tenant_inflight: 0,
            max_connections: 1024,
            reactor_threads: 0,
        }
    }
}

impl NetConfig {
    fn shard_count(&self) -> usize {
        if self.reactor_threads > 0 {
            return self.reactor_threads;
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        (cores / 2).clamp(1, 4)
    }
}

/// Wire-level counters, monotone since bind. See [`NetServer::net_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct NetStats {
    /// Connections accepted and handed to a reactor shard.
    pub accepted: u64,
    /// Connections refused with [`WireError::ConnLimit`] at accept time.
    pub refused: u64,
    /// Requests parked because the service gate was full — each park is
    /// one backpressure stall propagated onto a TCP stream.
    pub saturation_parks: u64,
    /// `write(2)` calls issued by the reactors. `frames_out / writes` is
    /// the reply-batching ratio pipelining buys.
    pub writes: u64,
    /// Frames encoded into connection write queues.
    pub frames_out: u64,
}

#[derive(Default)]
pub(super) struct Stats {
    pub(super) accepted: AtomicU64,
    pub(super) refused: AtomicU64,
    pub(super) saturation_parks: AtomicU64,
    pub(super) writes: AtomicU64,
    pub(super) frames_out: AtomicU64,
}

pub(super) struct Inner {
    pub(super) service: Arc<Service>,
    pub(super) cfg: NetConfig,
    pub(super) shutting_down: AtomicBool,
    /// In-flight requests per header tenant id (the admission quota).
    inflight: Mutex<BTreeMap<u64, usize>>,
    /// Currently served connections, for the accept-time cap.
    live: AtomicUsize,
    pub(super) stats: Stats,
    /// All shard handles — completion wakers poke parked peers through
    /// this. Set once during bind, before anything is accepted.
    shards: OnceLock<Vec<Arc<Shard>>>,
}

impl Inner {
    /// Tries to take one quota slot for `tenant`; false means refuse.
    pub(super) fn admit(&self, tenant: u64) -> bool {
        if self.cfg.per_tenant_inflight == 0 {
            return true;
        }
        let mut map = self.inflight.lock().expect("quota map poisoned");
        let slot = map.entry(tenant).or_insert(0);
        if *slot >= self.cfg.per_tenant_inflight {
            return false;
        }
        *slot += 1;
        true
    }

    pub(super) fn release(&self, tenant: u64) {
        if self.cfg.per_tenant_inflight == 0 {
            return;
        }
        let mut map = self.inflight.lock().expect("quota map poisoned");
        match map.get_mut(&tenant) {
            Some(slot) if *slot > 1 => *slot -= 1,
            _ => {
                map.remove(&tenant);
            }
        }
    }

    pub(super) fn shards(&self) -> &[Arc<Shard>] {
        self.shards.get().map(Vec::as_slice).unwrap_or(&[])
    }

    pub(super) fn conn_closed(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A TCP server over a [`Service`], event-driven end to end.
///
/// A fixed crew replaces the old three-threads-per-socket model: one
/// blocking acceptor plus [`NetConfig::reactor_threads`] reactor shards,
/// each multiplexing its connections over `poll(2)`/`epoll(7)`
/// (DESIGN.md §15). Per connection the shard reassembles frames from
/// partial reads, answers protocol errors with typed frames, checks the
/// per-tenant quota, and submits admitted requests without blocking —
/// when the service's global gate is full the one decoded request is
/// *parked* and the connection stops being read, which propagates
/// backpressure onto the TCP stream with bounded memory, exactly like
/// the blocking reader did. Completions route back to the owning shard
/// via ticket callbacks and a wake pipe; replies are written in
/// submission order, coalescing everything ready into a single `write`.
///
/// [`NetServer::shutdown`] is graceful: stop accepting, stop reading,
/// drain every accepted ticket, flush, then close. Dropping the server
/// shuts it down the same way.
pub struct NetServer {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
    reactors: Mutex<Vec<JoinHandle<()>>>,
    down: AtomicBool,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`NetServer::local_addr`]) and starts accepting.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<Service>,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            service,
            cfg,
            shutting_down: AtomicBool::new(false),
            inflight: Mutex::new(BTreeMap::new()),
            live: AtomicUsize::new(0),
            stats: Stats::default(),
            shards: OnceLock::new(),
        });

        let mut shards = Vec::new();
        let mut reactors = Vec::new();
        for i in 0..cfg.shard_count() {
            let (shard, wake_rx) = Shard::new()?;
            let run_inner = Arc::clone(&inner);
            let run_shard = Arc::clone(&shard);
            reactors.push(
                std::thread::Builder::new()
                    .name(format!("hsa-net-shard-{i}"))
                    .spawn(move || Reactor::run(run_inner, run_shard, wake_rx))
                    .expect("spawning a reactor shard"),
            );
            shards.push(shard);
        }
        inner
            .shards
            .set(shards)
            .unwrap_or_else(|_| unreachable!("shards are set exactly once"));

        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("hsa-net-accept".to_string())
            .spawn(move || accept_loop(listener, accept_inner))
            .expect("spawning the accept thread");
        Ok(NetServer {
            inner,
            local_addr,
            accept: Mutex::new(Some(accept)),
            reactors: Mutex::new(reactors),
            down: AtomicBool::new(false),
        })
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<Service> {
        &self.inner.service
    }

    /// A snapshot of the wire-level counters.
    pub fn net_stats(&self) -> NetStats {
        let s = &self.inner.stats;
        NetStats {
            accepted: s.accepted.load(Ordering::Relaxed),
            refused: s.refused.load(Ordering::Relaxed),
            saturation_parks: s.saturation_parks.load(Ordering::Relaxed),
            writes: s.writes.load(Ordering::Relaxed),
            frames_out: s.frames_out.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting, stop reading every connection,
    /// drain all accepted tickets through the reactors, flush, close.
    /// Idempotent; returns once everything is joined.
    pub fn shutdown(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.lock().expect("accept handle poisoned").take() {
            let _ = accept.join();
        }
        for shard in self.inner.shards() {
            shard.push_shutdown();
        }
        let reactors =
            std::mem::take(&mut *self.reactors.lock().expect("reactor handles poisoned"));
        for handle in reactors {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    let shards = inner.shards().to_vec();
    let mut next = 0usize;
    for stream in listener.incoming() {
        if inner.shutting_down.load(Ordering::SeqCst) {
            // The wake-up connection (or a raced client) is dropped
            // unanswered; accepted work is already owned by its shard.
            break;
        }
        let Ok(stream) = stream else { continue };
        let cap = inner.cfg.max_connections;
        if cap > 0 && inner.live.load(Ordering::Relaxed) >= cap {
            inner.stats.refused.fetch_add(1, Ordering::Relaxed);
            refuse(stream, cap);
            continue;
        }
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        inner.live.fetch_add(1, Ordering::Relaxed);
        inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
        shards[next % shards.len()].push_conn(stream);
        next = next.wrapping_add(1);
    }
}

/// Answers a connection past the cap with a typed refusal and closes it.
/// Corr 0: nothing of the peer's stream has been read. The peer's
/// already-sent bytes (a HELLO, usually) are drained briefly so closing
/// does not reset the refusal off the wire.
fn refuse(mut stream: TcpStream, cap: usize) {
    let frame = wire::error_frame(0, 0, &WireError::ConnLimit(cap as u64));
    if stream.write_all(&frame.encode()).is_err() {
        return;
    }
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut scratch = [0u8; 1024];
    while let Ok(n) = stream.read(&mut scratch) {
        if n == 0 {
            break;
        }
    }
}
