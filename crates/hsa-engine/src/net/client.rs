//! The blocking client: typed request methods mirroring the `Request::*`
//! constructors, plus a pipelined send/recv pair for throughput drivers.

use super::wire::{self, FrameEncoder, NetReply, WireError};
use crate::service::{Reply, Request, TenantId};
use crate::session::SessionStats;
use crate::InstanceId;
use hsa_graph::Lambda;
use hsa_tree::{CostModel, CruTree, Delta};
use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// What a remote call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes disconnects and truncated frames).
    Io(io::Error),
    /// The peer violated the protocol (bad frame, wrong answer kind).
    Protocol(String),
    /// The server answered an explicit error frame. Service-level errors
    /// arrive as [`WireError::Service`] with their stable code (the
    /// verify-mode passthrough: a remote `verify_failed` surfaces here
    /// exactly like [`crate::ServiceError::VerifyFailed`] does in
    /// process). A server at its connection cap refuses the handshake
    /// with [`WireError::ConnLimit`] through this same variant.
    Remote(WireError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Remote(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking connection to a [`super::NetServer`].
///
/// The typed methods ([`Client::solve`], [`Client::frontier`],
/// [`Client::delta`], …) mirror the [`Request`] constructors one-to-one
/// and wait for their answer. The lower-level [`Client::send`] /
/// [`Client::recv_any`] pair pipelines: many requests in flight on one
/// connection, answers matched back by correlation id. [`Client::send`]
/// only appends to a reused encode buffer — nothing hits the socket
/// until [`Client::flush`] (or the first receive, which flushes
/// implicitly), so a pipelined burst travels as one `write(2)` and a
/// sequential call still sees no extra latency.
///
/// A client that learned an [`InstanceId`] from a first-contact reply can
/// reconnect after a drop and resume id-addressed requests immediately —
/// ids are structural content hashes, stable across connections as long
/// as the server process (and its engine cache) lives; persist the raw
/// id ([`InstanceId::raw`]) and rebuild it with [`InstanceId::from_raw`].
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
    /// The reused encode queue: frames accumulate here between flushes.
    out: Vec<u8>,
    /// The reused decode buffer: one `read(2)` can pull a whole burst of
    /// pipelined answers, which then pop here without further syscalls.
    dec: wire::FrameDecoder,
    enc: FrameEncoder,
    max_frame_len: usize,
    next_corr: u64,
}

impl Client {
    /// Connects and completes the handshake (the server answers with its
    /// frame cap, which this client then enforces on its own frames). A
    /// server past [`super::NetConfig::max_connections`] refuses here
    /// with [`ClientError::Remote`]`(`[`WireError::ConnLimit`]`)`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = stream.try_clone()?;
        let mut client = Client {
            reader,
            writer: stream,
            out: Vec::new(),
            dec: wire::FrameDecoder::new(),
            enc: FrameEncoder::new(),
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
            next_corr: 1,
        };
        let corr = client.next_corr();
        client.enc.put_hello(&mut client.out, corr);
        let frame = client.recv_frame()?;
        match wire::decode_server_frame(&frame) {
            // A refusal travels under corr 0 (nothing of ours was read);
            // any error frame here means no session.
            Ok(NetReply::Error(err)) => Err(ClientError::Remote(err)),
            Ok(NetReply::HelloAck(cap)) if frame.corr == corr => {
                client.max_frame_len = cap.min(wire::DEFAULT_MAX_FRAME_LEN as u64) as usize;
                Ok(client)
            }
            Ok(other) => Err(ClientError::Protocol(format!(
                "handshake answered {other:?}"
            ))),
            Err(err) => Err(ClientError::Protocol(err.to_string())),
        }
    }

    fn next_corr(&mut self) -> u64 {
        let corr = self.next_corr;
        self.next_corr += 1;
        corr
    }

    /// Writes every queued frame to the socket in one burst. Receiving
    /// flushes implicitly; call this directly to push a pipelined batch
    /// out before doing other work.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        if self.out.is_empty() {
            return Ok(());
        }
        self.writer.write_all(&self.out)?;
        self.out.clear();
        Ok(())
    }

    /// Sends `request` without waiting; returns the correlation id its
    /// answer will carry. Pair with [`Client::recv_any`] to pipeline.
    /// The frame is queued, not written — see [`Client::flush`].
    pub fn send(&mut self, request: &Request) -> Result<u64, ClientError> {
        let corr = self.next_corr();
        self.enc.put_request(&mut self.out, corr, request);
        Ok(corr)
    }

    /// Queues a request whose payload bytes are already encoded (e.g.
    /// cached off [`wire::request_frame`]) under a fresh correlation id —
    /// a hot client replaying identical requests skips re-printing the
    /// same JSON per send. `tenant` and the returned correlation id
    /// travel in the frame header, so one cached payload serves any
    /// tenant namespace.
    pub fn send_encoded(&mut self, kind: u8, tenant: u64, payload: &[u8]) -> u64 {
        let corr = self.next_corr();
        wire::put_raw_frame(&mut self.out, kind, tenant, corr, payload);
        corr
    }

    /// Receives the next answer frame, whatever its correlation id:
    /// `(corr, outcome)`. Error frames resolve to `Err(Remote)` — they
    /// answer *that* correlation id, the connection stays usable.
    pub fn recv_any(&mut self) -> Result<(u64, Result<Reply, ClientError>), ClientError> {
        let frame = self.recv_frame()?;
        if frame.version != wire::PROTOCOL_VERSION {
            return Err(ClientError::Protocol(format!(
                "server answered protocol version {}",
                frame.version
            )));
        }
        let corr = frame.corr;
        match wire::decode_server_frame(&frame) {
            Ok(NetReply::Reply(reply)) => Ok((corr, Ok(reply))),
            Ok(NetReply::Error(err)) => Ok((corr, Err(ClientError::Remote(err)))),
            Ok(other) => Err(ClientError::Protocol(format!(
                "unexpected control frame {other:?}"
            ))),
            Err(err) => Err(ClientError::Protocol(err.to_string())),
        }
    }

    /// Receives until the frame answering `corr` arrives. Used by the
    /// sequential typed methods; strict because they never pipeline.
    /// Pops the next complete frame, filling the reused decode buffer
    /// from the socket as needed (flushing queued sends first — a recv
    /// must never deadlock behind our own unsent requests).
    fn recv_frame(&mut self) -> Result<wire::Frame, ClientError> {
        self.flush()?;
        loop {
            match self.dec.next(self.max_frame_len) {
                Some(wire::Decoded::Frame(f)) => return Ok(f.to_frame()),
                Some(wire::Decoded::Oversized(len)) => {
                    return Err(ClientError::Protocol(format!(
                        "server announced a {len}-byte frame (cap {})",
                        self.max_frame_len
                    )))
                }
                Some(wire::Decoded::Undersized(len)) => {
                    return Err(ClientError::Protocol(format!(
                        "server announced a {len}-byte frame, shorter than the header"
                    )))
                }
                None => {
                    if self.dec.fill_from(&mut self.reader, 16 * 1024)? == 0 {
                        return Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        )));
                    }
                }
            }
        }
    }

    fn recv_matching(&mut self, corr: u64) -> Result<NetReply, ClientError> {
        let frame = self.recv_frame()?;
        if frame.corr != corr {
            return Err(ClientError::Protocol(format!(
                "answer for correlation id {} while waiting on {corr}",
                frame.corr
            )));
        }
        wire::decode_server_frame(&frame).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn call(&mut self, request: &Request) -> Result<Reply, ClientError> {
        let corr = self.send(request)?;
        match self.recv_matching(corr)? {
            NetReply::Reply(reply) => Ok(reply),
            NetReply::Error(err) => Err(ClientError::Remote(err)),
            other => Err(ClientError::Protocol(format!(
                "request answered with control frame {other:?}"
            ))),
        }
    }

    /// Remote [`Request::solve`]. The reply carries the [`InstanceId`] —
    /// keep it and switch to [`Client::solve_by_id`].
    pub fn solve(
        &mut self,
        tree: &CruTree,
        costs: &CostModel,
        lambda: Lambda,
    ) -> Result<Reply, ClientError> {
        self.call(&Request::solve(tree, costs, lambda))
    }

    /// Remote [`Request::solve_by_id`].
    pub fn solve_by_id(&mut self, id: InstanceId, lambda: Lambda) -> Result<Reply, ClientError> {
        self.call(&Request::solve_by_id(id, lambda))
    }

    /// Remote [`Request::solve_anytime`]: races the server's portfolio
    /// and answers within `budget_ms` of its first feasible answer,
    /// carrying a certified gap ([`crate::AnytimeAnswer`]).
    pub fn solve_anytime(
        &mut self,
        tree: &CruTree,
        costs: &CostModel,
        lambda: Lambda,
        budget_ms: u64,
    ) -> Result<Reply, ClientError> {
        self.call(&Request::solve_anytime(tree, costs, lambda, budget_ms))
    }

    /// Remote [`Request::frontier`].
    pub fn frontier(&mut self, tree: &CruTree, costs: &CostModel) -> Result<Reply, ClientError> {
        self.call(&Request::frontier(tree, costs))
    }

    /// Remote [`Request::frontier_by_id`].
    pub fn frontier_by_id(&mut self, id: InstanceId) -> Result<Reply, ClientError> {
        self.call(&Request::frontier_by_id(id))
    }

    /// Remote [`Request::delta`] against an open tenant.
    pub fn delta(
        &mut self,
        tenant: TenantId,
        delta: Delta,
        lambda: Lambda,
    ) -> Result<Reply, ClientError> {
        self.call(&Request::delta(tenant, delta, lambda))
    }

    /// Remote [`crate::Service::open_tenant`].
    pub fn open_tenant(
        &mut self,
        tenant: TenantId,
        tree: &CruTree,
        costs: &CostModel,
    ) -> Result<(), ClientError> {
        let corr = self.next_corr();
        self.enc
            .put_open_tenant(&mut self.out, corr, tenant, tree, costs);
        match self.recv_matching(corr)? {
            NetReply::TenantOpened => Ok(()),
            NetReply::Error(err) => Err(ClientError::Remote(err)),
            other => Err(ClientError::Protocol(format!(
                "open-tenant answered {other:?}"
            ))),
        }
    }

    /// Remote [`crate::Service::close_tenant`].
    pub fn close_tenant(&mut self, tenant: TenantId) -> Result<SessionStats, ClientError> {
        let corr = self.next_corr();
        self.enc.put_close_tenant(&mut self.out, corr, tenant);
        match self.recv_matching(corr)? {
            NetReply::TenantClosed(stats) => Ok(stats),
            NetReply::Error(err) => Err(ClientError::Remote(err)),
            other => Err(ClientError::Protocol(format!(
                "close-tenant answered {other:?}"
            ))),
        }
    }

    /// Sends raw pre-encoded bytes immediately — the malformed-frame
    /// tests' hook; a well-behaved client never needs it. Any queued
    /// frames flush first so stream order is preserved.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.flush()?;
        self.writer.write_all(bytes)?;
        Ok(())
    }

    /// Reads the next raw frame off the stream (pairing with
    /// [`Client::send_raw`] in protocol tests).
    pub fn recv_raw(&mut self) -> Result<wire::Frame, ClientError> {
        self.recv_frame()
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Same courtesy a `BufWriter` extends: queued frames should not
        // silently vanish if the caller sent without receiving.
        let _ = self.flush();
    }
}
