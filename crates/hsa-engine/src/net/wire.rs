//! The framed wire schema (DESIGN.md §13).
//!
//! Every frame is a big-endian length prefix followed by a fixed header
//! and a JSON payload:
//!
//! ```text
//! u32  len       bytes after this field (HEADER_LEN + payload length)
//! u8   version   PROTOCOL_VERSION
//! u8   kind      one of the `kind::*` bytes
//! u64  tenant    TenantId for tenant-scoped kinds, 0 otherwise
//! u64  corr      correlation id, echoed verbatim on the answer frame
//! [u8] payload   compact JSON of the kind-specific body
//! ```
//!
//! The header layout (version first, then kind/tenant/corr) is **frozen
//! across protocol versions**: a server that rejects `version` can still
//! read the correlation id and answer a well-addressed
//! [`WireError::UnsupportedVersion`] frame instead of dropping the
//! connection. Everything behind the header — the kind table and the
//! payload bodies — is owned by the version byte and free to evolve.
//!
//! Payload bodies are derived from the service's own [`Request`] /
//! [`Reply`] / [`ServiceError`] enums (the single source of truth for the
//! schema); this module only maps between those enums and frames. Unknown
//! kind bytes and undecodable payloads answer explicit error frames
//! ([`WireError`]), never a panic or a silent drop.

use crate::service::{Reply, Request, ServiceError, TenantId};
use crate::session::SessionStats;
use crate::{EngineError, InstanceId};
use bytes::{BufMut, Bytes, BytesMut};
use hsa_graph::Lambda;
use hsa_tree::{CostModel, CruTree, Delta};
use serde::{value, DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::io::{self, Read};
use std::sync::Arc;

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Header bytes after the length prefix: version, kind, tenant, corr.
pub const HEADER_LEN: usize = 1 + 1 + 8 + 8;

/// Default cap on `len` (a 60-second Zipf stream's largest tree payload is
/// well under 1 MiB; the cap only exists to bound a hostile prefix).
pub const DEFAULT_MAX_FRAME_LEN: usize = 64 << 20;

/// Frame kind bytes. Client→server kinds have the high bit clear,
/// server→client kinds have it set; [`kind::ERROR`] is reserved at `0xFF`.
pub mod kind {
    /// Client handshake; answered by [`HELLO_ACK`].
    pub const HELLO: u8 = 0x01;
    /// [`crate::Request::Solve`].
    pub const SOLVE: u8 = 0x02;
    /// [`crate::Request::SolveById`].
    pub const SOLVE_BY_ID: u8 = 0x03;
    /// [`crate::Request::Frontier`].
    pub const FRONTIER: u8 = 0x04;
    /// [`crate::Request::FrontierById`].
    pub const FRONTIER_BY_ID: u8 = 0x05;
    /// [`crate::Request::Delta`] (tenant travels in the header).
    pub const DELTA: u8 = 0x06;
    /// Open a tenant session (tenant in the header, instance in the body).
    pub const OPEN_TENANT: u8 = 0x07;
    /// Close a tenant session (tenant in the header, empty body).
    pub const CLOSE_TENANT: u8 = 0x08;
    /// [`crate::Request::SolveAnytime`].
    pub const SOLVE_ANYTIME: u8 = 0x09;
    /// Handshake answer, carrying the server's frame cap.
    pub const HELLO_ACK: u8 = 0x81;
    /// [`crate::Reply::Solution`].
    pub const SOLUTION: u8 = 0x82;
    /// [`crate::Reply::Frontier`].
    pub const FRONTIER_REPLY: u8 = 0x83;
    /// [`crate::Reply::Applied`].
    pub const APPLIED: u8 = 0x84;
    /// A tenant session opened (empty body).
    pub const TENANT_OPENED: u8 = 0x85;
    /// A tenant session closed, with its final counters.
    pub const TENANT_CLOSED: u8 = 0x86;
    /// [`crate::Reply::Anytime`].
    pub const ANYTIME: u8 = 0x87;
    /// A [`super::WireError`] body.
    pub const ERROR: u8 = 0xFF;
}

/// A borrowed view of one frame inside a [`FrameDecoder`]'s buffer: the
/// fixed header plus the payload *in place* — the reactor's zero-copy
/// sibling of [`Frame`] (no per-frame payload `Vec`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameRef<'a> {
    /// Protocol version byte.
    pub version: u8,
    /// Kind byte (`kind::*`).
    pub kind: u8,
    /// Tenant id for tenant-scoped kinds, 0 otherwise.
    pub tenant: u64,
    /// Correlation id, echoed on the answer.
    pub corr: u64,
    /// Kind-specific JSON body, borrowed from the decode buffer.
    pub payload: &'a [u8],
}

impl FrameRef<'_> {
    /// An owned [`Frame`] (copies the payload) — for tests and cold paths.
    pub fn to_frame(&self) -> Frame {
        Frame {
            version: self.version,
            kind: self.kind,
            tenant: self.tenant,
            corr: self.corr,
            payload: self.payload.to_vec(),
        }
    }
}

/// One decoded frame: the fixed header plus the raw payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version byte.
    pub version: u8,
    /// Kind byte (`kind::*`).
    pub kind: u8,
    /// Tenant id for tenant-scoped kinds, 0 otherwise.
    pub tenant: u64,
    /// Correlation id, echoed on the answer.
    pub corr: u64,
    /// Kind-specific JSON body (may be empty).
    pub payload: Vec<u8>,
}

impl Frame {
    fn new(kind: u8, tenant: u64, corr: u64, payload: Vec<u8>) -> Frame {
        Frame {
            version: PROTOCOL_VERSION,
            kind,
            tenant,
            corr,
            payload,
        }
    }

    /// Appends this frame (length prefix + header + payload) to `out`.
    pub fn put(&self, out: &mut BytesMut) {
        out.put_u32((HEADER_LEN + self.payload.len()) as u32);
        out.put_u8(self.version);
        out.put_u8(self.kind);
        out.put_u64(self.tenant);
        out.put_u64(self.corr);
        out.put_slice(&self.payload);
    }

    /// This frame as freshly-encoded wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(4 + HEADER_LEN + self.payload.len());
        self.put(&mut out);
        out.freeze()
    }
}

/// The outcome of reading one frame off a blocking stream.
#[derive(Debug)]
pub enum ReadFrame {
    /// A complete frame (its version/kind/payload still unvalidated).
    Frame(Frame),
    /// Clean end-of-stream at a frame boundary.
    Eof,
    /// The length prefix itself is unusable; the stream cannot be
    /// re-synchronised. Carries `(len, max)`.
    Oversized(u32, usize),
    /// The length prefix is shorter than the fixed header.
    Undersized(u32),
}

/// Reads exactly one length-prefixed frame. Truncation mid-frame surfaces
/// as the underlying [`io::ErrorKind::UnexpectedEof`]; EOF *between*
/// frames is the clean [`ReadFrame::Eof`].
pub fn read_frame(r: &mut impl Read, max_frame_len: usize) -> io::Result<ReadFrame> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before the first length byte ends the stream; anything
    // shorter than the full prefix is a truncated frame.
    match r.read(&mut len_buf)? {
        0 => return Ok(ReadFrame::Eof),
        n => r.read_exact(&mut len_buf[n..])?,
    }
    let len = u32::from_be_bytes(len_buf);
    if (len as usize) < HEADER_LEN {
        return Ok(ReadFrame::Undersized(len));
    }
    if len as usize > max_frame_len {
        return Ok(ReadFrame::Oversized(len, max_frame_len));
    }
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let mut payload = vec![0u8; len as usize - HEADER_LEN];
    r.read_exact(&mut payload)?;
    Ok(ReadFrame::Frame(Frame {
        version: header[0],
        kind: header[1],
        tenant: u64::from_be_bytes(header[2..10].try_into().expect("8 bytes")),
        corr: u64::from_be_bytes(header[10..18].try_into().expect("8 bytes")),
        payload,
    }))
}

/// What [`FrameDecoder::next`] found at the head of the buffer.
#[derive(Debug)]
pub enum Decoded<'a> {
    /// A complete frame (version/kind/payload still unvalidated),
    /// borrowed from the decode buffer and already consumed from it.
    Frame(FrameRef<'a>),
    /// The announced length exceeds the cap; the stream cannot be
    /// re-synchronised (the offending prefix is left in the buffer).
    Oversized(u32),
    /// The announced length is shorter than the fixed header; same
    /// desynchronisation story as [`Decoded::Oversized`].
    Undersized(u32),
}

/// Incremental frame reassembly over a nonblocking stream: bytes go in
/// whenever the socket is readable (any split, down to one byte at a
/// time), complete frames come out borrowed — no per-frame allocation.
/// One long-lived decoder per connection; the buffer is compacted and
/// reused across frames, so steady state costs zero allocations once the
/// high-water mark is reached.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Appends raw stream bytes (any fragmentation).
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Reads up to `chunk` bytes from `r` straight into the buffer
    /// (compacting first), returning what `read` returned. `Ok(0)` is
    /// end-of-stream.
    pub fn fill_from(&mut self, r: &mut impl Read, chunk: usize) -> io::Result<usize> {
        self.compact();
        let len = self.buf.len();
        self.buf.resize(len + chunk, 0);
        match r.read(&mut self.buf[len..]) {
            Ok(n) => {
                self.buf.truncate(len + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(len);
                Err(e)
            }
        }
    }

    /// Drops everything buffered (shutdown: frames not yet parsed are
    /// abandoned, matching a half-closed read side).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }

    /// The next complete frame, if the buffer holds one. `None` means
    /// more bytes are needed; [`Decoded::Oversized`]/[`Decoded::Undersized`]
    /// mean the stream is unrecoverable past this point.
    pub fn next(&mut self, max_frame_len: usize) -> Option<Decoded<'_>> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return None;
        }
        let p = self.pos;
        let len = u32::from_be_bytes(self.buf[p..p + 4].try_into().expect("4 bytes"));
        if (len as usize) < HEADER_LEN {
            return Some(Decoded::Undersized(len));
        }
        if len as usize > max_frame_len {
            return Some(Decoded::Oversized(len));
        }
        if avail < 4 + len as usize {
            return None;
        }
        let h = p + 4;
        let end = h + len as usize;
        self.pos = end;
        Some(Decoded::Frame(FrameRef {
            version: self.buf[h],
            kind: self.buf[h + 1],
            tenant: u64::from_be_bytes(self.buf[h + 2..h + 10].try_into().expect("8 bytes")),
            corr: u64::from_be_bytes(self.buf[h + 10..h + 18].try_into().expect("8 bytes")),
            payload: &self.buf[h + HEADER_LEN..end],
        }))
    }

    /// Reclaims the consumed prefix once it dominates the buffer, so the
    /// allocation is bounded by the largest in-flight frame, not by the
    /// total bytes ever streamed.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// A protocol-level error, carried in an [`kind::ERROR`] frame. The
/// explicit variants let a client react (back off on [`Quota`], renegotiate
/// on [`UnsupportedVersion`]) without parsing message strings.
///
/// [`Quota`]: WireError::Quota
/// [`UnsupportedVersion`]: WireError::UnsupportedVersion
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WireError {
    /// The frame's version byte is not spoken here: `(got, want)`.
    UnsupportedVersion(u8, u8),
    /// The kind byte is not in this version's table.
    UnknownKind(u8),
    /// A length prefix exceeded the receiver's cap: `(len, max)`. The
    /// stream cannot be re-synchronised, so the sender of this error
    /// closes the connection right after it.
    Oversized(u64, u64),
    /// The payload failed to decode (detail message).
    Malformed(String),
    /// The per-tenant admission quota refused the request (tenant id) —
    /// the wire-level sibling of [`ServiceError::Saturated`].
    Quota(u64),
    /// The server's connection cap refused this connection at accept time
    /// (carries the cap). The refusal frame is the connection's only
    /// traffic; the socket closes right after it — the explicit overload
    /// mode that keeps the reactor's fd tables bounded instead of letting
    /// accept run into `EMFILE`.
    ConnLimit(u64),
    /// The service answered an error: `(stable code, display message)`.
    Service(String, String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnsupportedVersion(got, want) => {
                write!(
                    f,
                    "unsupported protocol version {got} (this side speaks {want})"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::Oversized(len, max) => {
                write!(f, "frame length {len} exceeds the cap {max}")
            }
            WireError::Malformed(detail) => write!(f, "malformed payload: {detail}"),
            WireError::Quota(tenant) => {
                write!(f, "tenant-{tenant} admission quota exceeded")
            }
            WireError::ConnLimit(cap) => {
                write!(f, "server connection cap {cap} reached, connection refused")
            }
            WireError::Service(code, msg) => write!(f, "service error [{code}]: {msg}"),
        }
    }
}

/// The stable machine-readable code a [`ServiceError`] travels under.
pub fn service_error_code(e: &ServiceError) -> &'static str {
    match e {
        ServiceError::Engine(EngineError::UnknownInstance { .. }) => "engine.unknown_instance",
        ServiceError::Engine(EngineError::HashCollision { .. }) => "engine.hash_collision",
        ServiceError::Engine(_) => "engine.assign",
        ServiceError::Apply(_) => "apply",
        ServiceError::UnknownTenant(_) => "unknown_tenant",
        ServiceError::TenantExists(_) => "tenant_exists",
        ServiceError::VerifyFailed { .. } => "verify_failed",
        ServiceError::Saturated => "saturated",
    }
}

impl From<&ServiceError> for WireError {
    fn from(e: &ServiceError) -> WireError {
        WireError::Service(service_error_code(e).to_string(), e.to_string())
    }
}

/// A client→server frame, decoded: either a request for the service or a
/// connection-level action the server handles itself.
#[derive(Debug)]
pub enum NetRequest {
    /// Handshake.
    Hello,
    /// Submit to [`crate::Service::submit`].
    Submit(Request),
    /// Open a tenant session on the carried instance.
    OpenTenant(TenantId, CruTree, CostModel),
    /// Close a tenant session.
    CloseTenant(TenantId),
}

/// A server→client frame, decoded.
// The size spread (an anytime Reply dwarfs HelloAck) is accepted: the
// enum lives for one match on the receive path, and boxing the large
// variant would cost an allocation per answered frame.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum NetReply {
    /// Handshake answer: the server's frame cap.
    HelloAck(u64),
    /// A fulfilled request.
    Reply(Reply),
    /// A tenant session opened.
    TenantOpened,
    /// A tenant session closed, with its final counters.
    TenantClosed(SessionStats),
    /// An error frame.
    Error(WireError),
}

fn obj_value(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn json_bytes(v: &Value) -> Vec<u8> {
    serde_json::to_string(v)
        .expect("value-tree JSON printing is infallible")
        .into_bytes()
}

/// The payload body of a request, plus its kind byte and header tenant.
/// The single source of payload truth: both the allocating [`Frame`]
/// constructors and the buffer-reusing [`FrameEncoder`] print exactly
/// this value, so the two paths are byte-identical by construction.
fn request_body(req: &Request) -> (u8, u64, Option<Value>) {
    match req {
        Request::Solve {
            tree,
            costs,
            lambda,
        } => (
            kind::SOLVE,
            0,
            Some(obj_value(vec![
                ("tree", tree.to_value()),
                ("costs", costs.to_value()),
                ("lambda", lambda.to_value()),
            ])),
        ),
        Request::SolveById { id, lambda } => (
            kind::SOLVE_BY_ID,
            0,
            Some(obj_value(vec![
                ("id", id.raw().to_value()),
                ("lambda", lambda.to_value()),
            ])),
        ),
        Request::Frontier { tree, costs } => (
            kind::FRONTIER,
            0,
            Some(obj_value(vec![
                ("tree", tree.to_value()),
                ("costs", costs.to_value()),
            ])),
        ),
        Request::FrontierById { id } => (
            kind::FRONTIER_BY_ID,
            0,
            Some(obj_value(vec![("id", id.raw().to_value())])),
        ),
        Request::Delta {
            tenant,
            delta,
            lambda,
        } => (
            kind::DELTA,
            tenant.0,
            Some(obj_value(vec![
                ("delta", delta.to_value()),
                ("lambda", lambda.to_value()),
            ])),
        ),
        Request::SolveAnytime {
            tree,
            costs,
            lambda,
            budget_ms,
        } => (
            kind::SOLVE_ANYTIME,
            0,
            Some(obj_value(vec![
                ("tree", tree.to_value()),
                ("costs", costs.to_value()),
                ("lambda", lambda.to_value()),
                ("budget_ms", budget_ms.to_value()),
            ])),
        ),
    }
}

/// The payload body of a reply, plus its kind byte.
fn reply_body(reply: &Reply) -> (u8, Option<Value>) {
    match reply {
        Reply::Solution { id, solution } => (
            kind::SOLUTION,
            Some(obj_value(vec![
                ("id", id.raw().to_value()),
                ("solution", solution.to_value()),
            ])),
        ),
        Reply::Frontier { id, frontier } => (
            kind::FRONTIER_REPLY,
            Some(obj_value(vec![
                ("id", id.raw().to_value()),
                ("frontier", frontier.to_value()),
            ])),
        ),
        Reply::Applied { outcome, solution } => (
            kind::APPLIED,
            Some(obj_value(vec![
                ("outcome", outcome.to_value()),
                ("solution", solution.to_value()),
            ])),
        ),
        Reply::Anytime { id, answer } => (
            kind::ANYTIME,
            Some(obj_value(vec![
                ("id", id.raw().to_value()),
                ("answer", answer.to_value()),
            ])),
        ),
    }
}

fn hello_ack_body(max_frame_len: usize) -> Value {
    obj_value(vec![("max_frame_len", (max_frame_len as u64).to_value())])
}

fn open_tenant_body(tree: &CruTree, costs: &CostModel) -> Value {
    obj_value(vec![("tree", tree.to_value()), ("costs", costs.to_value())])
}

fn tenant_closed_body(stats: &SessionStats) -> Value {
    obj_value(vec![("stats", stats.to_value())])
}

/// An encoder with reusable scratch: frames go **appended** into a
/// caller-owned `Vec<u8>` (the per-connection write queue), the payload
/// JSON is printed into one retained `String` — steady state allocates
/// nothing per frame, and pipelined replies coalesce in the output buffer
/// for a single `write(2)`. The bytes are identical to the allocating
/// [`Frame`] path (same body builders, same printer).
#[derive(Debug, Default)]
pub struct FrameEncoder {
    json: String,
}

/// Appends one frame whose payload bytes are already encoded: length
/// prefix + header written fresh, `payload` copied verbatim. This is the
/// hit path of the reactor's encode memo and the primitive every
/// [`FrameEncoder`] append bottoms out in.
pub fn put_raw_frame(out: &mut Vec<u8>, kind_: u8, tenant: u64, corr: u64, payload: &[u8]) {
    out.put_u32((HEADER_LEN + payload.len()) as u32);
    out.put_u8(PROTOCOL_VERSION);
    out.put_u8(kind_);
    out.put_u64(tenant);
    out.put_u64(corr);
    out.put_slice(payload);
}

impl FrameEncoder {
    /// An encoder with empty scratch.
    pub fn new() -> FrameEncoder {
        FrameEncoder::default()
    }

    fn put_frame(
        &mut self,
        out: &mut Vec<u8>,
        kind: u8,
        tenant: u64,
        corr: u64,
        body: Option<&Value>,
    ) {
        self.json.clear();
        if let Some(v) = body {
            serde_json::to_string_into(v, &mut self.json)
                .expect("value-tree JSON printing is infallible");
        }
        put_raw_frame(out, kind, tenant, corr, self.json.as_bytes());
    }

    /// Appends a request frame (see [`request_frame`]).
    pub fn put_request(&mut self, out: &mut Vec<u8>, corr: u64, req: &Request) {
        let (kind, tenant, body) = request_body(req);
        self.put_frame(out, kind, tenant, corr, body.as_ref());
    }

    /// Appends a reply frame (see [`reply_frame`]), returning its kind and
    /// the byte range the payload occupies inside `out` — callers that
    /// memoise encoded payloads (the reactor, for deterministic
    /// id-addressed answers) copy the range out and replay it later via
    /// [`put_raw_frame`], byte-identical by construction.
    pub fn put_reply(
        &mut self,
        out: &mut Vec<u8>,
        corr: u64,
        tenant: u64,
        reply: &Reply,
    ) -> (u8, std::ops::Range<usize>) {
        let (kind, body) = reply_body(reply);
        self.put_frame(out, kind, tenant, corr, body.as_ref());
        (kind, out.len() - self.json.len()..out.len())
    }

    /// Appends an error frame (see [`error_frame`]).
    pub fn put_error(&mut self, out: &mut Vec<u8>, corr: u64, tenant: u64, err: &WireError) {
        self.put_frame(out, kind::ERROR, tenant, corr, Some(&err.to_value()));
    }

    /// Appends the handshake frame.
    pub fn put_hello(&mut self, out: &mut Vec<u8>, corr: u64) {
        self.put_frame(out, kind::HELLO, 0, corr, None);
    }

    /// Appends the handshake answer.
    pub fn put_hello_ack(&mut self, out: &mut Vec<u8>, corr: u64, max_frame_len: usize) {
        self.put_frame(
            out,
            kind::HELLO_ACK,
            0,
            corr,
            Some(&hello_ack_body(max_frame_len)),
        );
    }

    /// Appends an open-tenant frame.
    pub fn put_open_tenant(
        &mut self,
        out: &mut Vec<u8>,
        corr: u64,
        tenant: TenantId,
        tree: &CruTree,
        costs: &CostModel,
    ) {
        self.put_frame(
            out,
            kind::OPEN_TENANT,
            tenant.0,
            corr,
            Some(&open_tenant_body(tree, costs)),
        );
    }

    /// Appends a close-tenant frame.
    pub fn put_close_tenant(&mut self, out: &mut Vec<u8>, corr: u64, tenant: TenantId) {
        self.put_frame(out, kind::CLOSE_TENANT, tenant.0, corr, None);
    }

    /// Appends the tenant-opened acknowledgement.
    pub fn put_tenant_opened(&mut self, out: &mut Vec<u8>, corr: u64, tenant: TenantId) {
        self.put_frame(out, kind::TENANT_OPENED, tenant.0, corr, None);
    }

    /// Appends the tenant-closed acknowledgement.
    pub fn put_tenant_closed(
        &mut self,
        out: &mut Vec<u8>,
        corr: u64,
        tenant: TenantId,
        stats: &SessionStats,
    ) {
        self.put_frame(
            out,
            kind::TENANT_CLOSED,
            tenant.0,
            corr,
            Some(&tenant_closed_body(stats)),
        );
    }
}

fn body(payload: &[u8]) -> Result<Value, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| WireError::Malformed(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str::<Value>(text).map_err(|e| WireError::Malformed(e.to_string()))
}

fn field<T: Deserialize>(m: &[(String, Value)], name: &str) -> Result<T, WireError> {
    let v = value::field(m, name).map_err(|e| WireError::Malformed(e.to_string()))?;
    T::from_value(v).map_err(|e: DeError| WireError::Malformed(format!("{name}: {e}")))
}

fn as_map(v: &Value) -> Result<&[(String, Value)], WireError> {
    v.as_map()
        .ok_or_else(|| WireError::Malformed("body is not a JSON object".to_string()))
}

/// Encodes a request into its frame. The tenant header field is taken
/// from the request itself ([`Request::Delta`]); other kinds travel with
/// tenant 0.
pub fn request_frame(corr: u64, req: &Request) -> Frame {
    let (kind, tenant, body) = request_body(req);
    Frame::new(
        kind,
        tenant,
        corr,
        body.as_ref().map(json_bytes).unwrap_or_default(),
    )
}

/// The handshake frame.
pub fn hello_frame(corr: u64) -> Frame {
    Frame::new(kind::HELLO, 0, corr, Vec::new())
}

/// The handshake answer.
pub fn hello_ack_frame(corr: u64, max_frame_len: usize) -> Frame {
    Frame::new(
        kind::HELLO_ACK,
        0,
        corr,
        json_bytes(&hello_ack_body(max_frame_len)),
    )
}

/// An open-tenant frame (instance in the body, tenant in the header).
pub fn open_tenant_frame(corr: u64, tenant: TenantId, tree: &CruTree, costs: &CostModel) -> Frame {
    Frame::new(
        kind::OPEN_TENANT,
        tenant.0,
        corr,
        json_bytes(&open_tenant_body(tree, costs)),
    )
}

/// A close-tenant frame.
pub fn close_tenant_frame(corr: u64, tenant: TenantId) -> Frame {
    Frame::new(kind::CLOSE_TENANT, tenant.0, corr, Vec::new())
}

/// The tenant-opened acknowledgement.
pub fn tenant_opened_frame(corr: u64, tenant: TenantId) -> Frame {
    Frame::new(kind::TENANT_OPENED, tenant.0, corr, Vec::new())
}

/// The tenant-closed acknowledgement, carrying the session's counters.
pub fn tenant_closed_frame(corr: u64, tenant: TenantId, stats: &SessionStats) -> Frame {
    Frame::new(
        kind::TENANT_CLOSED,
        tenant.0,
        corr,
        json_bytes(&tenant_closed_body(stats)),
    )
}

/// Encodes a reply into its frame.
pub fn reply_frame(corr: u64, tenant: u64, reply: &Reply) -> Frame {
    let (kind, body) = reply_body(reply);
    Frame::new(
        kind,
        tenant,
        corr,
        body.as_ref().map(json_bytes).unwrap_or_default(),
    )
}

/// Encodes an error frame.
pub fn error_frame(corr: u64, tenant: u64, err: &WireError) -> Frame {
    Frame::new(kind::ERROR, tenant, corr, json_bytes(&err.to_value()))
}

/// The canonical wire JSON of a reply — what t13's byte-identity check
/// compares between a loopback answer and an in-process one.
pub fn reply_json(reply: &Reply) -> String {
    String::from_utf8(reply_frame(0, 0, reply).payload).expect("wire JSON is UTF-8")
}

/// Decodes a client→server frame. The version byte must already have been
/// checked by the caller (so a version mismatch can echo the correlation
/// id without attempting to parse a future payload layout).
pub fn decode_request(frame: &Frame) -> Result<NetRequest, WireError> {
    decode_request_parts(frame.kind, frame.tenant, &frame.payload)
}

/// [`decode_request`] on borrowed parts — lets the reactor decode straight
/// out of a connection's reassembly buffer (a [`FrameRef`]) without first
/// copying the payload into an owned [`Frame`].
pub fn decode_request_parts(
    kind_: u8,
    tenant: u64,
    payload: &[u8],
) -> Result<NetRequest, WireError> {
    match kind_ {
        kind::HELLO => Ok(NetRequest::Hello),
        kind::SOLVE => {
            let v = body(payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::Submit(Request::solve_arc(
                Arc::new(field::<CruTree>(m, "tree")?),
                Arc::new(field::<CostModel>(m, "costs")?),
                field::<Lambda>(m, "lambda")?,
            )))
        }
        kind::SOLVE_BY_ID => {
            let v = body(payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::Submit(Request::solve_by_id(
                InstanceId::from_raw(field::<u64>(m, "id")?),
                field::<Lambda>(m, "lambda")?,
            )))
        }
        kind::FRONTIER => {
            let v = body(payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::Submit(Request::frontier_arc(
                Arc::new(field::<CruTree>(m, "tree")?),
                Arc::new(field::<CostModel>(m, "costs")?),
            )))
        }
        kind::FRONTIER_BY_ID => {
            let v = body(payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::Submit(Request::frontier_by_id(
                InstanceId::from_raw(field::<u64>(m, "id")?),
            )))
        }
        kind::DELTA => {
            let v = body(payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::Submit(Request::delta_arc(
                TenantId(tenant),
                Arc::new(field::<Delta>(m, "delta")?),
                field::<Lambda>(m, "lambda")?,
            )))
        }
        kind::SOLVE_ANYTIME => {
            let v = body(payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::Submit(Request::solve_anytime_arc(
                Arc::new(field::<CruTree>(m, "tree")?),
                Arc::new(field::<CostModel>(m, "costs")?),
                field::<Lambda>(m, "lambda")?,
                field::<u64>(m, "budget_ms")?,
            )))
        }
        kind::OPEN_TENANT => {
            let v = body(payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::OpenTenant(
                TenantId(tenant),
                field::<CruTree>(m, "tree")?,
                field::<CostModel>(m, "costs")?,
            ))
        }
        kind::CLOSE_TENANT => Ok(NetRequest::CloseTenant(TenantId(tenant))),
        k => Err(WireError::UnknownKind(k)),
    }
}

/// Decodes a server→client frame.
pub fn decode_server_frame(frame: &Frame) -> Result<NetReply, WireError> {
    match frame.kind {
        kind::HELLO_ACK => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetReply::HelloAck(field::<u64>(m, "max_frame_len")?))
        }
        kind::SOLUTION => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetReply::Reply(Reply::Solution {
                id: InstanceId::from_raw(field::<u64>(m, "id")?),
                solution: field(m, "solution")?,
            }))
        }
        kind::FRONTIER_REPLY => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetReply::Reply(Reply::Frontier {
                id: InstanceId::from_raw(field::<u64>(m, "id")?),
                frontier: field(m, "frontier")?,
            }))
        }
        kind::APPLIED => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetReply::Reply(Reply::Applied {
                outcome: field(m, "outcome")?,
                solution: field(m, "solution")?,
            }))
        }
        kind::ANYTIME => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetReply::Reply(Reply::Anytime {
                id: InstanceId::from_raw(field::<u64>(m, "id")?),
                answer: field(m, "answer")?,
            }))
        }
        kind::TENANT_OPENED => Ok(NetReply::TenantOpened),
        kind::TENANT_CLOSED => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetReply::TenantClosed(field(m, "stats")?))
        }
        kind::ERROR => {
            let v = body(&frame.payload)?;
            let err = WireError::from_value(&v).map_err(|e| WireError::Malformed(e.to_string()))?;
            Ok(NetReply::Error(err))
        }
        k => Err(WireError::UnknownKind(k)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_graph::Lambda;

    fn sample_frames() -> Vec<Frame> {
        let sc = hsa_workloads::paper_scenario();
        vec![
            hello_frame(1),
            hello_ack_frame(1, DEFAULT_MAX_FRAME_LEN),
            request_frame(2, &Request::solve(&sc.tree, &sc.costs, Lambda::HALF)),
            request_frame(3, &Request::frontier(&sc.tree, &sc.costs)),
            error_frame(4, 9, &WireError::Quota(9)),
            tenant_opened_frame(5, TenantId(9)),
        ]
    }

    /// Reassembly is fragmentation-blind: feeding the same byte stream
    /// one byte at a time yields exactly the frames that encoded it.
    #[test]
    fn decoder_reassembles_byte_at_a_time() {
        let frames = sample_frames();
        let stream: Vec<u8> = frames.iter().flat_map(|f| f.encode().to_vec()).collect();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for byte in stream {
            dec.push(&[byte]);
            while let Some(d) = dec.next(DEFAULT_MAX_FRAME_LEN) {
                match d {
                    Decoded::Frame(f) => got.push(f.to_frame()),
                    other => panic!("unexpected decode: {other:?}"),
                }
            }
        }
        assert_eq!(got.len(), frames.len());
        for (g, f) in got.iter().zip(&frames) {
            assert_eq!(g.encode(), f.encode());
        }
        assert_eq!(dec.buffered(), 0);
    }

    /// Chunked feeds that split frames at every possible boundary of the
    /// first two frames still reassemble the whole stream.
    #[test]
    fn decoder_survives_all_split_points() {
        let frames = sample_frames();
        let stream: Vec<u8> = frames.iter().flat_map(|f| f.encode().to_vec()).collect();
        let cut_range = frames[0].encode().len() + frames[1].encode().len();
        for cut in 0..=cut_range {
            let mut dec = FrameDecoder::new();
            let mut got = 0usize;
            for part in [&stream[..cut], &stream[cut..]] {
                dec.push(part);
                while let Some(d) = dec.next(DEFAULT_MAX_FRAME_LEN) {
                    match d {
                        Decoded::Frame(_) => got += 1,
                        other => panic!("unexpected decode: {other:?}"),
                    }
                }
            }
            assert_eq!(got, frames.len(), "split at byte {cut}");
        }
    }

    /// A partial length prefix (under 4 bytes) never decodes.
    #[test]
    fn decoder_waits_for_the_length_prefix() {
        let mut dec = FrameDecoder::new();
        dec.push(&[0, 0, 0]);
        assert!(dec.next(DEFAULT_MAX_FRAME_LEN).is_none());
        assert_eq!(dec.buffered(), 3);
    }

    /// Oversized and undersized prefixes surface as unrecoverable
    /// markers, even arriving after valid frames on the same stream.
    #[test]
    fn decoder_flags_bad_prefixes() {
        let good = hello_frame(1).encode();

        let mut dec = FrameDecoder::new();
        dec.push(&good);
        dec.push(
            &u32::try_from(DEFAULT_MAX_FRAME_LEN + 1)
                .unwrap()
                .to_be_bytes(),
        );
        assert!(matches!(
            dec.next(DEFAULT_MAX_FRAME_LEN),
            Some(Decoded::Frame(_))
        ));
        match dec.next(DEFAULT_MAX_FRAME_LEN) {
            Some(Decoded::Oversized(len)) => {
                assert_eq!(len as usize, DEFAULT_MAX_FRAME_LEN + 1);
            }
            other => panic!("expected oversized, got {other:?}"),
        }

        let mut dec = FrameDecoder::new();
        dec.push(&(HEADER_LEN as u32 - 1).to_be_bytes());
        assert!(matches!(
            dec.next(DEFAULT_MAX_FRAME_LEN),
            Some(Decoded::Undersized(_))
        ));
    }

    /// The buffer-reusing encoder and the allocating `Frame` path are
    /// byte-identical for every frame constructor — the invariant the
    /// byte-identity acceptance checks lean on.
    #[test]
    fn encoder_matches_frame_encode_bytes() {
        let sc = hsa_workloads::paper_scenario();
        let req = Request::solve(&sc.tree, &sc.costs, Lambda::HALF);
        let stats = SessionStats::default();
        let mut enc = FrameEncoder::new();
        let mut out = Vec::new();

        let mut legacy: Vec<u8> = Vec::new();
        for bytes in [
            request_frame(7, &req).encode(),
            hello_frame(8).encode(),
            hello_ack_frame(8, 12345).encode(),
            error_frame(9, 3, &WireError::ConnLimit(64)).encode(),
            open_tenant_frame(10, TenantId(3), &sc.tree, &sc.costs).encode(),
            close_tenant_frame(11, TenantId(3)).encode(),
            tenant_opened_frame(12, TenantId(3)).encode(),
            tenant_closed_frame(13, TenantId(3), &stats).encode(),
        ] {
            legacy.extend_from_slice(&bytes);
        }

        enc.put_request(&mut out, 7, &req);
        enc.put_hello(&mut out, 8);
        enc.put_hello_ack(&mut out, 8, 12345);
        enc.put_error(&mut out, 9, 3, &WireError::ConnLimit(64));
        enc.put_open_tenant(&mut out, 10, TenantId(3), &sc.tree, &sc.costs);
        enc.put_close_tenant(&mut out, 11, TenantId(3));
        enc.put_tenant_opened(&mut out, 12, TenantId(3));
        enc.put_tenant_closed(&mut out, 13, TenantId(3), &stats);

        assert_eq!(out, legacy);
    }
}
