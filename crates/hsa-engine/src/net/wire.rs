//! The framed wire schema (DESIGN.md §13).
//!
//! Every frame is a big-endian length prefix followed by a fixed header
//! and a JSON payload:
//!
//! ```text
//! u32  len       bytes after this field (HEADER_LEN + payload length)
//! u8   version   PROTOCOL_VERSION
//! u8   kind      one of the `kind::*` bytes
//! u64  tenant    TenantId for tenant-scoped kinds, 0 otherwise
//! u64  corr      correlation id, echoed verbatim on the answer frame
//! [u8] payload   compact JSON of the kind-specific body
//! ```
//!
//! The header layout (version first, then kind/tenant/corr) is **frozen
//! across protocol versions**: a server that rejects `version` can still
//! read the correlation id and answer a well-addressed
//! [`WireError::UnsupportedVersion`] frame instead of dropping the
//! connection. Everything behind the header — the kind table and the
//! payload bodies — is owned by the version byte and free to evolve.
//!
//! Payload bodies are derived from the service's own [`Request`] /
//! [`Reply`] / [`ServiceError`] enums (the single source of truth for the
//! schema); this module only maps between those enums and frames. Unknown
//! kind bytes and undecodable payloads answer explicit error frames
//! ([`WireError`]), never a panic or a silent drop.

use crate::service::{Reply, Request, ServiceError, TenantId};
use crate::session::SessionStats;
use crate::{EngineError, InstanceId};
use bytes::{BufMut, Bytes, BytesMut};
use hsa_graph::Lambda;
use hsa_tree::{CostModel, CruTree, Delta};
use serde::{value, DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::io::{self, Read};
use std::sync::Arc;

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Header bytes after the length prefix: version, kind, tenant, corr.
pub const HEADER_LEN: usize = 1 + 1 + 8 + 8;

/// Default cap on `len` (a 60-second Zipf stream's largest tree payload is
/// well under 1 MiB; the cap only exists to bound a hostile prefix).
pub const DEFAULT_MAX_FRAME_LEN: usize = 64 << 20;

/// Frame kind bytes. Client→server kinds have the high bit clear,
/// server→client kinds have it set; [`kind::ERROR`] is reserved at `0xFF`.
pub mod kind {
    /// Client handshake; answered by [`HELLO_ACK`].
    pub const HELLO: u8 = 0x01;
    /// [`crate::Request::Solve`].
    pub const SOLVE: u8 = 0x02;
    /// [`crate::Request::SolveById`].
    pub const SOLVE_BY_ID: u8 = 0x03;
    /// [`crate::Request::Frontier`].
    pub const FRONTIER: u8 = 0x04;
    /// [`crate::Request::FrontierById`].
    pub const FRONTIER_BY_ID: u8 = 0x05;
    /// [`crate::Request::Delta`] (tenant travels in the header).
    pub const DELTA: u8 = 0x06;
    /// Open a tenant session (tenant in the header, instance in the body).
    pub const OPEN_TENANT: u8 = 0x07;
    /// Close a tenant session (tenant in the header, empty body).
    pub const CLOSE_TENANT: u8 = 0x08;
    /// [`crate::Request::SolveAnytime`].
    pub const SOLVE_ANYTIME: u8 = 0x09;
    /// Handshake answer, carrying the server's frame cap.
    pub const HELLO_ACK: u8 = 0x81;
    /// [`crate::Reply::Solution`].
    pub const SOLUTION: u8 = 0x82;
    /// [`crate::Reply::Frontier`].
    pub const FRONTIER_REPLY: u8 = 0x83;
    /// [`crate::Reply::Applied`].
    pub const APPLIED: u8 = 0x84;
    /// A tenant session opened (empty body).
    pub const TENANT_OPENED: u8 = 0x85;
    /// A tenant session closed, with its final counters.
    pub const TENANT_CLOSED: u8 = 0x86;
    /// [`crate::Reply::Anytime`].
    pub const ANYTIME: u8 = 0x87;
    /// A [`super::WireError`] body.
    pub const ERROR: u8 = 0xFF;
}

/// One decoded frame: the fixed header plus the raw payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version byte.
    pub version: u8,
    /// Kind byte (`kind::*`).
    pub kind: u8,
    /// Tenant id for tenant-scoped kinds, 0 otherwise.
    pub tenant: u64,
    /// Correlation id, echoed on the answer.
    pub corr: u64,
    /// Kind-specific JSON body (may be empty).
    pub payload: Vec<u8>,
}

impl Frame {
    fn new(kind: u8, tenant: u64, corr: u64, payload: Vec<u8>) -> Frame {
        Frame {
            version: PROTOCOL_VERSION,
            kind,
            tenant,
            corr,
            payload,
        }
    }

    /// Appends this frame (length prefix + header + payload) to `out`.
    pub fn put(&self, out: &mut BytesMut) {
        out.put_u32((HEADER_LEN + self.payload.len()) as u32);
        out.put_u8(self.version);
        out.put_u8(self.kind);
        out.put_u64(self.tenant);
        out.put_u64(self.corr);
        out.put_slice(&self.payload);
    }

    /// This frame as freshly-encoded wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(4 + HEADER_LEN + self.payload.len());
        self.put(&mut out);
        out.freeze()
    }
}

/// The outcome of reading one frame off a blocking stream.
#[derive(Debug)]
pub enum ReadFrame {
    /// A complete frame (its version/kind/payload still unvalidated).
    Frame(Frame),
    /// Clean end-of-stream at a frame boundary.
    Eof,
    /// The length prefix itself is unusable; the stream cannot be
    /// re-synchronised. Carries `(len, max)`.
    Oversized(u32, usize),
    /// The length prefix is shorter than the fixed header.
    Undersized(u32),
}

/// Reads exactly one length-prefixed frame. Truncation mid-frame surfaces
/// as the underlying [`io::ErrorKind::UnexpectedEof`]; EOF *between*
/// frames is the clean [`ReadFrame::Eof`].
pub fn read_frame(r: &mut impl Read, max_frame_len: usize) -> io::Result<ReadFrame> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before the first length byte ends the stream; anything
    // shorter than the full prefix is a truncated frame.
    match r.read(&mut len_buf)? {
        0 => return Ok(ReadFrame::Eof),
        n => r.read_exact(&mut len_buf[n..])?,
    }
    let len = u32::from_be_bytes(len_buf);
    if (len as usize) < HEADER_LEN {
        return Ok(ReadFrame::Undersized(len));
    }
    if len as usize > max_frame_len {
        return Ok(ReadFrame::Oversized(len, max_frame_len));
    }
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let mut payload = vec![0u8; len as usize - HEADER_LEN];
    r.read_exact(&mut payload)?;
    Ok(ReadFrame::Frame(Frame {
        version: header[0],
        kind: header[1],
        tenant: u64::from_be_bytes(header[2..10].try_into().expect("8 bytes")),
        corr: u64::from_be_bytes(header[10..18].try_into().expect("8 bytes")),
        payload,
    }))
}

/// A protocol-level error, carried in an [`kind::ERROR`] frame. The
/// explicit variants let a client react (back off on [`Quota`], renegotiate
/// on [`UnsupportedVersion`]) without parsing message strings.
///
/// [`Quota`]: WireError::Quota
/// [`UnsupportedVersion`]: WireError::UnsupportedVersion
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WireError {
    /// The frame's version byte is not spoken here: `(got, want)`.
    UnsupportedVersion(u8, u8),
    /// The kind byte is not in this version's table.
    UnknownKind(u8),
    /// A length prefix exceeded the receiver's cap: `(len, max)`. The
    /// stream cannot be re-synchronised, so the sender of this error
    /// closes the connection right after it.
    Oversized(u64, u64),
    /// The payload failed to decode (detail message).
    Malformed(String),
    /// The per-tenant admission quota refused the request (tenant id) —
    /// the wire-level sibling of [`ServiceError::Saturated`].
    Quota(u64),
    /// The service answered an error: `(stable code, display message)`.
    Service(String, String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnsupportedVersion(got, want) => {
                write!(
                    f,
                    "unsupported protocol version {got} (this side speaks {want})"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::Oversized(len, max) => {
                write!(f, "frame length {len} exceeds the cap {max}")
            }
            WireError::Malformed(detail) => write!(f, "malformed payload: {detail}"),
            WireError::Quota(tenant) => {
                write!(f, "tenant-{tenant} admission quota exceeded")
            }
            WireError::Service(code, msg) => write!(f, "service error [{code}]: {msg}"),
        }
    }
}

/// The stable machine-readable code a [`ServiceError`] travels under.
pub fn service_error_code(e: &ServiceError) -> &'static str {
    match e {
        ServiceError::Engine(EngineError::UnknownInstance { .. }) => "engine.unknown_instance",
        ServiceError::Engine(EngineError::HashCollision { .. }) => "engine.hash_collision",
        ServiceError::Engine(_) => "engine.assign",
        ServiceError::Apply(_) => "apply",
        ServiceError::UnknownTenant(_) => "unknown_tenant",
        ServiceError::TenantExists(_) => "tenant_exists",
        ServiceError::VerifyFailed { .. } => "verify_failed",
        ServiceError::Saturated => "saturated",
    }
}

impl From<&ServiceError> for WireError {
    fn from(e: &ServiceError) -> WireError {
        WireError::Service(service_error_code(e).to_string(), e.to_string())
    }
}

/// A client→server frame, decoded: either a request for the service or a
/// connection-level action the server handles itself.
#[derive(Debug)]
pub enum NetRequest {
    /// Handshake.
    Hello,
    /// Submit to [`crate::Service::submit`].
    Submit(Request),
    /// Open a tenant session on the carried instance.
    OpenTenant(TenantId, CruTree, CostModel),
    /// Close a tenant session.
    CloseTenant(TenantId),
}

/// A server→client frame, decoded.
// The size spread (an anytime Reply dwarfs HelloAck) is accepted: the
// enum lives for one match on the receive path, and boxing the large
// variant would cost an allocation per answered frame.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum NetReply {
    /// Handshake answer: the server's frame cap.
    HelloAck(u64),
    /// A fulfilled request.
    Reply(Reply),
    /// A tenant session opened.
    TenantOpened,
    /// A tenant session closed, with its final counters.
    TenantClosed(SessionStats),
    /// An error frame.
    Error(WireError),
}

fn obj(entries: Vec<(&str, Value)>) -> Vec<u8> {
    let v = Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    serde_json::to_string(&v)
        .expect("value-tree JSON printing is infallible")
        .into_bytes()
}

fn body(payload: &[u8]) -> Result<Value, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| WireError::Malformed(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str::<Value>(text).map_err(|e| WireError::Malformed(e.to_string()))
}

fn field<T: Deserialize>(m: &[(String, Value)], name: &str) -> Result<T, WireError> {
    let v = value::field(m, name).map_err(|e| WireError::Malformed(e.to_string()))?;
    T::from_value(v).map_err(|e: DeError| WireError::Malformed(format!("{name}: {e}")))
}

fn as_map(v: &Value) -> Result<&[(String, Value)], WireError> {
    v.as_map()
        .ok_or_else(|| WireError::Malformed("body is not a JSON object".to_string()))
}

/// Encodes a request into its frame. The tenant header field is taken
/// from the request itself ([`Request::Delta`]); other kinds travel with
/// tenant 0.
pub fn request_frame(corr: u64, req: &Request) -> Frame {
    match req {
        Request::Solve {
            tree,
            costs,
            lambda,
        } => Frame::new(
            kind::SOLVE,
            0,
            corr,
            obj(vec![
                ("tree", tree.to_value()),
                ("costs", costs.to_value()),
                ("lambda", lambda.to_value()),
            ]),
        ),
        Request::SolveById { id, lambda } => Frame::new(
            kind::SOLVE_BY_ID,
            0,
            corr,
            obj(vec![
                ("id", id.raw().to_value()),
                ("lambda", lambda.to_value()),
            ]),
        ),
        Request::Frontier { tree, costs } => Frame::new(
            kind::FRONTIER,
            0,
            corr,
            obj(vec![("tree", tree.to_value()), ("costs", costs.to_value())]),
        ),
        Request::FrontierById { id } => Frame::new(
            kind::FRONTIER_BY_ID,
            0,
            corr,
            obj(vec![("id", id.raw().to_value())]),
        ),
        Request::Delta {
            tenant,
            delta,
            lambda,
        } => Frame::new(
            kind::DELTA,
            tenant.0,
            corr,
            obj(vec![
                ("delta", delta.to_value()),
                ("lambda", lambda.to_value()),
            ]),
        ),
        Request::SolveAnytime {
            tree,
            costs,
            lambda,
            budget_ms,
        } => Frame::new(
            kind::SOLVE_ANYTIME,
            0,
            corr,
            obj(vec![
                ("tree", tree.to_value()),
                ("costs", costs.to_value()),
                ("lambda", lambda.to_value()),
                ("budget_ms", budget_ms.to_value()),
            ]),
        ),
    }
}

/// The handshake frame.
pub fn hello_frame(corr: u64) -> Frame {
    Frame::new(kind::HELLO, 0, corr, Vec::new())
}

/// The handshake answer.
pub fn hello_ack_frame(corr: u64, max_frame_len: usize) -> Frame {
    Frame::new(
        kind::HELLO_ACK,
        0,
        corr,
        obj(vec![("max_frame_len", (max_frame_len as u64).to_value())]),
    )
}

/// An open-tenant frame (instance in the body, tenant in the header).
pub fn open_tenant_frame(corr: u64, tenant: TenantId, tree: &CruTree, costs: &CostModel) -> Frame {
    Frame::new(
        kind::OPEN_TENANT,
        tenant.0,
        corr,
        obj(vec![("tree", tree.to_value()), ("costs", costs.to_value())]),
    )
}

/// A close-tenant frame.
pub fn close_tenant_frame(corr: u64, tenant: TenantId) -> Frame {
    Frame::new(kind::CLOSE_TENANT, tenant.0, corr, Vec::new())
}

/// The tenant-opened acknowledgement.
pub fn tenant_opened_frame(corr: u64, tenant: TenantId) -> Frame {
    Frame::new(kind::TENANT_OPENED, tenant.0, corr, Vec::new())
}

/// The tenant-closed acknowledgement, carrying the session's counters.
pub fn tenant_closed_frame(corr: u64, tenant: TenantId, stats: &SessionStats) -> Frame {
    Frame::new(
        kind::TENANT_CLOSED,
        tenant.0,
        corr,
        obj(vec![("stats", stats.to_value())]),
    )
}

/// Encodes a reply into its frame.
pub fn reply_frame(corr: u64, tenant: u64, reply: &Reply) -> Frame {
    match reply {
        Reply::Solution { id, solution } => Frame::new(
            kind::SOLUTION,
            tenant,
            corr,
            obj(vec![
                ("id", id.raw().to_value()),
                ("solution", solution.to_value()),
            ]),
        ),
        Reply::Frontier { id, frontier } => Frame::new(
            kind::FRONTIER_REPLY,
            tenant,
            corr,
            obj(vec![
                ("id", id.raw().to_value()),
                ("frontier", frontier.to_value()),
            ]),
        ),
        Reply::Applied { outcome, solution } => Frame::new(
            kind::APPLIED,
            tenant,
            corr,
            obj(vec![
                ("outcome", outcome.to_value()),
                ("solution", solution.to_value()),
            ]),
        ),
        Reply::Anytime { id, answer } => Frame::new(
            kind::ANYTIME,
            tenant,
            corr,
            obj(vec![
                ("id", id.raw().to_value()),
                ("answer", answer.to_value()),
            ]),
        ),
    }
}

/// Encodes an error frame.
pub fn error_frame(corr: u64, tenant: u64, err: &WireError) -> Frame {
    Frame::new(
        kind::ERROR,
        tenant,
        corr,
        serde_json::to_string(err)
            .expect("value-tree JSON printing is infallible")
            .into_bytes(),
    )
}

/// The canonical wire JSON of a reply — what t13's byte-identity check
/// compares between a loopback answer and an in-process one.
pub fn reply_json(reply: &Reply) -> String {
    String::from_utf8(reply_frame(0, 0, reply).payload).expect("wire JSON is UTF-8")
}

/// Decodes a client→server frame. The version byte must already have been
/// checked by the caller (so a version mismatch can echo the correlation
/// id without attempting to parse a future payload layout).
pub fn decode_request(frame: &Frame) -> Result<NetRequest, WireError> {
    match frame.kind {
        kind::HELLO => Ok(NetRequest::Hello),
        kind::SOLVE => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::Submit(Request::solve_arc(
                Arc::new(field::<CruTree>(m, "tree")?),
                Arc::new(field::<CostModel>(m, "costs")?),
                field::<Lambda>(m, "lambda")?,
            )))
        }
        kind::SOLVE_BY_ID => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::Submit(Request::solve_by_id(
                InstanceId::from_raw(field::<u64>(m, "id")?),
                field::<Lambda>(m, "lambda")?,
            )))
        }
        kind::FRONTIER => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::Submit(Request::frontier_arc(
                Arc::new(field::<CruTree>(m, "tree")?),
                Arc::new(field::<CostModel>(m, "costs")?),
            )))
        }
        kind::FRONTIER_BY_ID => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::Submit(Request::frontier_by_id(
                InstanceId::from_raw(field::<u64>(m, "id")?),
            )))
        }
        kind::DELTA => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::Submit(Request::delta_arc(
                TenantId(frame.tenant),
                Arc::new(field::<Delta>(m, "delta")?),
                field::<Lambda>(m, "lambda")?,
            )))
        }
        kind::SOLVE_ANYTIME => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::Submit(Request::solve_anytime_arc(
                Arc::new(field::<CruTree>(m, "tree")?),
                Arc::new(field::<CostModel>(m, "costs")?),
                field::<Lambda>(m, "lambda")?,
                field::<u64>(m, "budget_ms")?,
            )))
        }
        kind::OPEN_TENANT => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetRequest::OpenTenant(
                TenantId(frame.tenant),
                field::<CruTree>(m, "tree")?,
                field::<CostModel>(m, "costs")?,
            ))
        }
        kind::CLOSE_TENANT => Ok(NetRequest::CloseTenant(TenantId(frame.tenant))),
        k => Err(WireError::UnknownKind(k)),
    }
}

/// Decodes a server→client frame.
pub fn decode_server_frame(frame: &Frame) -> Result<NetReply, WireError> {
    match frame.kind {
        kind::HELLO_ACK => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetReply::HelloAck(field::<u64>(m, "max_frame_len")?))
        }
        kind::SOLUTION => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetReply::Reply(Reply::Solution {
                id: InstanceId::from_raw(field::<u64>(m, "id")?),
                solution: field(m, "solution")?,
            }))
        }
        kind::FRONTIER_REPLY => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetReply::Reply(Reply::Frontier {
                id: InstanceId::from_raw(field::<u64>(m, "id")?),
                frontier: field(m, "frontier")?,
            }))
        }
        kind::APPLIED => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetReply::Reply(Reply::Applied {
                outcome: field(m, "outcome")?,
                solution: field(m, "solution")?,
            }))
        }
        kind::ANYTIME => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetReply::Reply(Reply::Anytime {
                id: InstanceId::from_raw(field::<u64>(m, "id")?),
                answer: field(m, "answer")?,
            }))
        }
        kind::TENANT_OPENED => Ok(NetReply::TenantOpened),
        kind::TENANT_CLOSED => {
            let v = body(&frame.payload)?;
            let m = as_map(&v)?;
            Ok(NetReply::TenantClosed(field(m, "stats")?))
        }
        kind::ERROR => {
            let v = body(&frame.payload)?;
            let err = WireError::from_value(&v).map_err(|e| WireError::Malformed(e.to_string()))?;
            Ok(NetReply::Error(err))
        }
        k => Err(WireError::UnknownKind(k)),
    }
}
