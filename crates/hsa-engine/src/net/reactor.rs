//! The event-driven connection engine behind [`super::server::NetServer`]
//! (DESIGN.md §15): a fixed number of reactor threads, each owning a
//! shard of nonblocking connections multiplexed over [`super::sys`].
//!
//! Per connection the shard runs two small state machines:
//!
//! * **reassembly** — a [`FrameDecoder`] accumulates partial reads until
//!   whole frames surface; protocol errors are answered exactly as the
//!   threaded server answered them (typed error frames, connection kept
//!   or closed per §13's re-synchronisability grading);
//! * **write queue** — replies are encoded into one per-connection output
//!   buffer and drained with as few `write(2)` calls as readiness allows,
//!   so pipelined answers coalesce. The flush-on-idle rule: every round
//!   that encodes bytes also attempts the write immediately, so a lone
//!   request never waits for more traffic to share a syscall with.
//!
//! Completions travel back from the service's worker threads via
//! [`crate::service::Ticket::on_ready`] callbacks that post into the
//! owning shard's inbox and poke its wake pipe. Replies are re-ordered
//! to submission order per connection (the contract the threaded
//! waiter provided) before encoding. When the service's global gate is
//! full the shard *parks* the one decoded-but-unsubmitted request and
//! stops reading that connection — the same bounded-memory backpressure
//! the blocking reader applied, without pinning a thread.

use super::server::Inner;
use super::sys::{Event, Poller};
use super::wire::{self, Decoded, FrameDecoder, FrameEncoder, NetRequest, WireError};
use crate::service::{Reply, Request, ServiceError, Ticket};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The poller token reserved for the shard's wake pipe.
const WAKE_TOKEN: u64 = u64::MAX;

/// How much to ask the kernel for per read call.
const READ_CHUNK: usize = 16 * 1024;

/// Poll timeout while a parked request waits for gate room that an
/// in-process submitter (no waker) might free.
const PARKED_RETRY_MS: i32 = 2;

/// Entry cap of the per-shard encode memo (cleared wholesale when full —
/// hot Zipf traffic refills the few live keys immediately).
const MEMO_CAP: usize = 8192;

/// Key of a memoisable reply payload: `(reply kind, instance id, λ)`.
///
/// Only **id-addressed pure reads** qualify — [`Request::SolveById`] and
/// [`Request::FrontierById`]. Their successful answers are deterministic
/// functions of the key: an [`crate::InstanceId`] is a structural content
/// hash that is never re-bound (the engine cache does not evict, and
/// tenant deltas mutate per-session copies, never the cached instance),
/// and the solve/frontier for a fixed instance and λ is byte-stable —
/// the same invariant the service's verify mode asserts. Anytime answers
/// are budget-dependent and error answers carry no payload to reuse;
/// neither is ever memoised.
type MemoKey = (u8, u64, u32, u32);

fn memo_key(request: &Request) -> Option<MemoKey> {
    match request {
        Request::SolveById { id, lambda } => {
            Some((wire::kind::SOLUTION, id.raw(), lambda.num(), lambda.den()))
        }
        Request::FrontierById { id } => Some((wire::kind::FRONTIER_REPLY, id.raw(), 0, 0)),
        _ => None,
    }
}

/// One answered ticket, routed back to the connection's owning shard.
pub(super) struct Completion {
    token: u64,
    seq: u64,
    tenant: u64,
    result: Result<Reply, ServiceError>,
}

/// What other threads hand a shard: new connections from the acceptor,
/// completions from service workers, and the shutdown order.
#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    completions: Vec<Completion>,
    shutdown: bool,
}

/// The cross-thread handle of one reactor shard.
pub(super) struct Shard {
    inbox: Mutex<Inbox>,
    wake_tx: UnixStream,
    /// True while this shard has a parked request — completion wakers
    /// poke parked shards so a freed gate slot is retried immediately.
    parked: AtomicBool,
}

impl Shard {
    /// A shard handle plus the receive end of its wake pipe.
    pub(super) fn new() -> io::Result<(Arc<Shard>, UnixStream)> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        Ok((
            Arc::new(Shard {
                inbox: Mutex::new(Inbox::default()),
                wake_tx,
                parked: AtomicBool::new(false),
            }),
            wake_rx,
        ))
    }

    /// Pokes the shard's event loop. A full pipe is fine — an unread
    /// byte already guarantees the next wait returns immediately.
    pub(super) fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }

    /// True if the shard is waiting for gate room.
    pub(super) fn is_parked(&self) -> bool {
        self.parked.load(Ordering::Relaxed)
    }

    /// Hands the shard a freshly accepted connection.
    pub(super) fn push_conn(&self, stream: TcpStream) {
        self.inbox
            .lock()
            .expect("shard inbox poisoned")
            .conns
            .push(stream);
        self.wake();
    }

    /// Posts a completion, waking the shard only for the first entry of a
    /// batch: while the vec is non-empty a wake byte is already in flight
    /// (the reactor takes the whole vec under this same lock, so an entry
    /// pushed before the take is never missed), and pipelined completion
    /// storms collapse to one pipe write.
    fn push_completion(&self, completion: Completion) {
        let mut inbox = self.inbox.lock().expect("shard inbox poisoned");
        let first = inbox.completions.is_empty();
        inbox.completions.push(completion);
        drop(inbox);
        if first {
            self.wake();
        }
    }

    /// Orders the shard to drain and exit.
    pub(super) fn push_shutdown(&self) {
        self.inbox.lock().expect("shard inbox poisoned").shutdown = true;
        self.wake();
    }
}

/// Why a connection stopped being readable/parsable.
#[derive(Clone, Copy, PartialEq)]
enum ReadState {
    /// Still a live duplex peer.
    Open,
    /// Peer sent FIN (half-close): serve what was read, then close.
    Eof,
    /// We stopped reading on a fatal protocol error and will close after
    /// the error frame flushes, draining peer bytes to avoid a reset
    /// racing the answer off the wire.
    Fatal,
}

struct Conn {
    stream: TcpStream,
    dec: FrameDecoder,
    /// The coalescing write queue: every reply/error/control frame for
    /// this connection is appended here and drained with single writes.
    out: Vec<u8>,
    out_pos: usize,
    /// Submitted-but-not-yet-encoded answers, in submission order.
    pending: VecDeque<(u64, u64, u64, Option<MemoKey>)>, // (seq, corr, tenant, memo)
    /// Out-of-order completions waiting for their turn.
    ready: BTreeMap<u64, Result<Reply, ServiceError>>,
    next_seq: u64,
    /// One decoded request waiting for gate room (backpressure park).
    parked: Option<(u64, u64, Request)>, // (corr, tenant, request)
    read: ReadState,
    /// Post-error drain: FIN sent, discarding peer bytes until its EOF.
    lingering: bool,
    /// The socket failed; stop writing, just drain accounting.
    dead: bool,
    // Current poller interest, to skip redundant modify syscalls.
    int_r: bool,
    int_w: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            dec: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            ready: BTreeMap::new(),
            next_seq: 0,
            parked: None,
            read: ReadState::Open,
            lingering: false,
            dead: false,
            int_r: true,
            int_w: false,
        }
    }

    fn out_drained(&self) -> bool {
        self.out_pos >= self.out.len()
    }

    fn idle(&self) -> bool {
        self.pending.is_empty() && self.parked.is_none()
    }
}

/// What one parsed frame asks the reactor to do (decoupled from the
/// decoder borrow so the handler can mutate the connection).
enum Action {
    Error(u64, u64, WireError),
    Request(u64, u64, NetRequest),
    Fatal(WireError),
    Incomplete,
}

pub(super) struct Reactor {
    inner: Arc<Inner>,
    shard: Arc<Shard>,
    poller: Poller,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Tickets submitted by this shard whose completions have not yet
    /// been processed — shutdown waits for zero so every accepted
    /// request is answered and every quota slot released.
    outstanding: usize,
    shutdown: bool,
    enc: FrameEncoder,
    /// Encoded payloads of deterministic id-addressed answers, replayed
    /// verbatim instead of re-printing the same JSON per request (the
    /// dominant per-frame cost on hot Zipf traffic). See [`MemoKey`].
    memo: HashMap<MemoKey, Vec<u8>>,
}

impl Reactor {
    pub(super) fn run(inner: Arc<Inner>, shard: Arc<Shard>, wake_rx: UnixStream) {
        let mut poller = Poller::new().expect("creating the shard poller");
        poller
            .register(wake_rx.as_raw_fd(), WAKE_TOKEN, true, false)
            .expect("registering the shard wake pipe");
        let mut reactor = Reactor {
            inner,
            shard,
            poller,
            wake_rx,
            conns: HashMap::new(),
            next_token: 0,
            outstanding: 0,
            shutdown: false,
            enc: FrameEncoder::new(),
            memo: HashMap::new(),
        };
        reactor.event_loop();
    }

    fn event_loop(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shutdown && self.conns.is_empty() && self.outstanding == 0 {
                return;
            }
            let parked = self.conns.values().any(|c| c.parked.is_some());
            self.shard.parked.store(parked, Ordering::Relaxed);
            let timeout = if parked { Some(PARKED_RETRY_MS) } else { None };
            if self.poller.wait(&mut events, timeout).is_err() {
                continue;
            }

            let mut woken = false;
            let mut touched: Vec<u64> = Vec::new();
            for ev in &events {
                if ev.token == WAKE_TOKEN {
                    woken = true;
                } else {
                    touched.push(ev.token);
                }
            }
            if woken {
                self.drain_wake_pipe();
                self.drain_inbox(&mut touched);
            }
            for &ev in &events {
                if ev.token == WAKE_TOKEN {
                    continue;
                }
                let Some(mut conn) = self.conns.remove(&ev.token) else {
                    continue;
                };
                if ev.readable || ev.hangup {
                    self.handle_readable(ev.token, &mut conn);
                }
                // A writable report needs no handler of its own: every
                // touched connection goes through the flush sweep below.
                let _ = ev.writable;
                self.conns.insert(ev.token, conn);
            }
            // Parked retries: a completion waker (or the retry timeout)
            // got us here; the gate may have room again.
            let parked_tokens: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| c.parked.is_some())
                .map(|(t, _)| *t)
                .collect();
            for token in parked_tokens {
                let Some(mut conn) = self.conns.remove(&token) else {
                    continue;
                };
                self.try_unpark(token, &mut conn);
                self.conns.insert(token, conn);
                touched.push(token);
            }
            // Flush + close sweep. During shutdown every connection is in
            // play (drain progress can come from completions alone), so
            // sweep them all; otherwise only the ones this round touched.
            let sweep: Vec<u64> = if self.shutdown {
                self.conns.keys().copied().collect()
            } else {
                touched.sort_unstable();
                touched.dedup();
                touched
            };
            for token in sweep {
                let Some(mut conn) = self.conns.remove(&token) else {
                    continue;
                };
                self.flush(&mut conn);
                if self.maybe_close(&mut conn) {
                    self.reap(conn);
                } else {
                    self.update_interest(token, &mut conn);
                    self.conns.insert(token, conn);
                }
            }
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut scratch = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut scratch) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn drain_inbox(&mut self, touched: &mut Vec<u64>) {
        let (new_conns, completions, shutdown) = {
            let mut inbox = self.shard.inbox.lock().expect("shard inbox poisoned");
            (
                std::mem::take(&mut inbox.conns),
                std::mem::take(&mut inbox.completions),
                inbox.shutdown,
            )
        };
        if shutdown && !self.shutdown {
            self.begin_shutdown();
        }
        for stream in new_conns {
            if self.shutdown {
                // Raced past the acceptor's check: refuse like a close.
                self.inner.conn_closed();
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self
                .poller
                .register(stream.as_raw_fd(), token, true, false)
                .is_err()
            {
                self.inner.conn_closed();
                continue;
            }
            let mut conn = Conn::new(stream);
            // The socket may already hold buffered frames (a client that
            // connected and wrote before we registered): treat the new
            // connection as readable once.
            self.handle_readable(token, &mut conn);
            self.flush(&mut conn);
            if self.maybe_close(&mut conn) {
                self.reap(conn);
            } else {
                self.update_interest(token, &mut conn);
                self.conns.insert(token, conn);
            }
        }
        for completion in completions {
            self.apply_completion(completion, touched);
        }
    }

    fn begin_shutdown(&mut self) {
        self.shutdown = true;
        for conn in self.conns.values_mut() {
            // No new submissions: stop reading, drop buffered-but-unparsed
            // bytes (the threaded server's readers stopped at the same
            // point), keep parked + pending work to drain.
            if conn.read == ReadState::Open {
                conn.read = ReadState::Eof;
            }
            conn.lingering = false;
            conn.dec.clear();
        }
    }

    fn apply_completion(&mut self, completion: Completion, touched: &mut Vec<u64>) {
        self.outstanding -= 1;
        self.inner.release(completion.tenant);
        let Some(conn) = self.conns.get_mut(&completion.token) else {
            // The connection can only be gone once its pending queue
            // drained, and entries leave the queue only via completions.
            debug_assert!(false, "completion for a vanished connection");
            return;
        };
        conn.ready.insert(completion.seq, completion.result);
        // Emit in submission order: the contract recv-side clients (and
        // the threaded waiter before this) rely on.
        while let Some(&(seq, corr, tenant, memo)) = conn.pending.front() {
            let Some(result) = conn.ready.remove(&seq) else {
                break;
            };
            conn.pending.pop_front();
            match result {
                Ok(reply) => match memo {
                    Some(key) => {
                        if let Some(payload) = self.memo.get(&key) {
                            wire::put_raw_frame(&mut conn.out, key.0, tenant, corr, payload);
                        } else {
                            let (_, range) =
                                self.enc.put_reply(&mut conn.out, corr, tenant, &reply);
                            if self.memo.len() >= MEMO_CAP {
                                self.memo.clear();
                            }
                            self.memo.insert(key, conn.out[range].to_vec());
                        }
                    }
                    None => {
                        self.enc.put_reply(&mut conn.out, corr, tenant, &reply);
                    }
                },
                Err(e) => self
                    .enc
                    .put_error(&mut conn.out, corr, tenant, &WireError::from(&e)),
            }
            self.inner.stats.frames_out.fetch_add(1, Ordering::Relaxed);
        }
        touched.push(completion.token);
    }

    fn handle_readable(&mut self, token: u64, conn: &mut Conn) {
        if conn.lingering {
            // Post-error drain: discard until the peer's EOF, then the
            // close sweep reaps the fd without risking a reset.
            let mut scratch = [0u8; 4096];
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.dead = true;
                        return;
                    }
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        return;
                    }
                }
            }
        }
        if conn.read != ReadState::Open {
            return;
        }
        loop {
            match conn.dec.fill_from(&mut conn.stream, READ_CHUNK) {
                Ok(0) => {
                    conn.read = ReadState::Eof;
                    break;
                }
                Ok(_) => {
                    self.parse_frames(token, conn);
                    if conn.parked.is_some() || conn.read == ReadState::Fatal {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.read = ReadState::Eof;
                    conn.dead = true;
                    return;
                }
            }
        }
        // Frames that arrived before a half-close still get answers.
        self.parse_frames(token, conn);
    }

    fn parse_frames(&mut self, token: u64, conn: &mut Conn) {
        let max = self.inner.cfg.max_frame_len;
        while conn.parked.is_none() && conn.read != ReadState::Fatal {
            let action = match conn.dec.next(max) {
                None => Action::Incomplete,
                Some(Decoded::Oversized(len)) => {
                    Action::Fatal(WireError::Oversized(len as u64, max as u64))
                }
                Some(Decoded::Undersized(len)) => Action::Fatal(WireError::Malformed(format!(
                    "length prefix {len} is shorter than the {}-byte header",
                    wire::HEADER_LEN
                ))),
                Some(Decoded::Frame(f)) => {
                    // The header layout is version-stable, so a version we
                    // don't speak is refused under its own correlation id
                    // and the connection stays up (§13 grading).
                    if f.version != wire::PROTOCOL_VERSION {
                        Action::Error(
                            f.corr,
                            f.tenant,
                            WireError::UnsupportedVersion(f.version, wire::PROTOCOL_VERSION),
                        )
                    } else {
                        match wire::decode_request_parts(f.kind, f.tenant, f.payload) {
                            Err(err) => Action::Error(f.corr, f.tenant, err),
                            Ok(req) => Action::Request(f.corr, f.tenant, req),
                        }
                    }
                }
            };
            match action {
                Action::Incomplete => return,
                Action::Fatal(err) => {
                    // The announced bytes are unread — the stream cannot
                    // be re-synchronised: answer (corr 0, the header is
                    // part of the unread region) and close after flush.
                    self.enc.put_error(&mut conn.out, 0, 0, &err);
                    self.inner.stats.frames_out.fetch_add(1, Ordering::Relaxed);
                    conn.read = ReadState::Fatal;
                    conn.dec.clear();
                    return;
                }
                Action::Error(corr, tenant, err) => {
                    self.enc.put_error(&mut conn.out, corr, tenant, &err);
                    self.inner.stats.frames_out.fetch_add(1, Ordering::Relaxed);
                }
                Action::Request(corr, tenant, req) => {
                    self.handle_request(token, conn, corr, tenant, req)
                }
            }
        }
    }

    fn handle_request(
        &mut self,
        token: u64,
        conn: &mut Conn,
        corr: u64,
        tenant: u64,
        req: NetRequest,
    ) {
        match req {
            NetRequest::Hello => {
                self.enc
                    .put_hello_ack(&mut conn.out, corr, self.inner.cfg.max_frame_len);
                self.inner.stats.frames_out.fetch_add(1, Ordering::Relaxed);
            }
            NetRequest::OpenTenant(t, tree, costs) => {
                match self.inner.service.open_tenant(t, &tree, &costs) {
                    Ok(()) => self.enc.put_tenant_opened(&mut conn.out, corr, t),
                    Err(e) => self
                        .enc
                        .put_error(&mut conn.out, corr, t.0, &WireError::from(&e)),
                }
                self.inner.stats.frames_out.fetch_add(1, Ordering::Relaxed);
            }
            NetRequest::CloseTenant(t) => {
                match self.inner.service.close_tenant(t) {
                    Ok(stats) => self.enc.put_tenant_closed(&mut conn.out, corr, t, &stats),
                    Err(e) => self
                        .enc
                        .put_error(&mut conn.out, corr, t.0, &WireError::from(&e)),
                }
                self.inner.stats.frames_out.fetch_add(1, Ordering::Relaxed);
            }
            NetRequest::Submit(request) => {
                if !self.inner.admit(tenant) {
                    self.enc
                        .put_error(&mut conn.out, corr, tenant, &WireError::Quota(tenant));
                    self.inner.stats.frames_out.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                self.submit(token, conn, corr, tenant, request);
            }
        }
    }

    /// Submits an admitted request, or parks it (quota slot kept, read
    /// interest dropped) when the global gate is full.
    fn submit(&mut self, token: u64, conn: &mut Conn, corr: u64, tenant: u64, request: Request) {
        let memo = memo_key(&request);
        match self.inner.service.try_submit(request.clone()) {
            Ok(ticket) => self.track(token, conn, corr, tenant, memo, ticket),
            Err(_) => {
                conn.parked = Some((corr, tenant, request));
                self.inner
                    .stats
                    .saturation_parks
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn try_unpark(&mut self, token: u64, conn: &mut Conn) {
        let Some((corr, tenant, request)) = conn.parked.take() else {
            return;
        };
        self.submit(token, conn, corr, tenant, request);
        if conn.parked.is_none() {
            // Room found: frames buffered behind the parked one resume.
            self.parse_frames(token, conn);
        }
    }

    fn track(
        &mut self,
        token: u64,
        conn: &mut Conn,
        corr: u64,
        tenant: u64,
        memo: Option<MemoKey>,
        ticket: Ticket,
    ) {
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.pending.push_back((seq, corr, tenant, memo));
        self.outstanding += 1;
        let shard = Arc::clone(&self.shard);
        let inner = Arc::clone(&self.inner);
        ticket.on_ready(move |result| {
            shard.push_completion(Completion {
                token,
                seq,
                tenant,
                result,
            });
            // The gate slot this answer held is already free (finish()
            // releases before fulfilling): retry any parked shard now.
            for other in inner.shards() {
                if !Arc::ptr_eq(other, &shard) && other.is_parked() {
                    other.wake();
                }
            }
        });
    }

    /// Drains the write queue with as few syscalls as the socket allows —
    /// all frames encoded since the last drain go in one `write(2)` when
    /// the send buffer has room.
    fn flush(&mut self, conn: &mut Conn) {
        if conn.dead {
            conn.out.clear();
            conn.out_pos = 0;
            return;
        }
        while !conn.out_drained() {
            match (&conn.stream).write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        // A burst can balloon the queue; give the memory back once idle.
        if conn.out.capacity() > 1 << 20 {
            conn.out.shrink_to(64 * 1024);
        }
    }

    /// True when the connection is finished and its fd closed.
    fn maybe_close(&mut self, conn: &mut Conn) -> bool {
        if conn.dead && conn.idle() {
            return true;
        }
        if conn.lingering {
            // Waiting for the peer's EOF (handle_readable flips `dead`).
            return false;
        }
        if conn.read != ReadState::Open && conn.idle() && conn.out_drained() && !conn.dead {
            let _ = conn.stream.shutdown(Shutdown::Write);
            if conn.read == ReadState::Fatal && !self.shutdown {
                // We closed first with unread peer bytes possibly in
                // flight: drain them so the error frame isn't lost to a
                // reset, then reap on the peer's EOF.
                conn.lingering = true;
                return false;
            }
            // Peer half-closed first (we read to EOF) or the server is
            // shutting down: the fd can drop cleanly.
            return true;
        }
        false
    }

    fn update_interest(&mut self, token: u64, conn: &mut Conn) {
        let want_r = conn.lingering || (conn.read == ReadState::Open && conn.parked.is_none());
        let want_w = !conn.out_drained() && !conn.dead;
        if want_r != conn.int_r || want_w != conn.int_w {
            conn.int_r = want_r;
            conn.int_w = want_w;
            // Best effort: a failed modify surfaces as a stuck conn, and
            // shutdown still reaps it.
            let _ = self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want_r, want_w);
        }
    }

    /// Unhooks the fd before the stream drops (the poll backend keeps an
    /// explicit interest list that must not outlive the fd).
    fn reap(&mut self, conn: Conn) {
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        drop(conn);
        self.inner.conn_closed();
    }
}
