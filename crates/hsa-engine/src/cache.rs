//! The sharded instance cache behind the shared-ownership [`Engine`](crate::Engine).
//!
//! The engine used to own a single `BTreeMap` behind `&mut self`, which
//! made the whole engine structurally single-owner: one writer, ever.
//! A continual multi-tenant deployment wants the opposite — many threads
//! preparing and solving against one warm cache. This module provides
//! that:
//!
//! * entries are `Arc<`[`CachedInstance`]`>`: a reader clones the `Arc`
//!   (two atomic ops) and works on the immutable prepared form with no
//!   lock held, for as long as it likes;
//! * the key space is split across [`SHARDS`] independent
//!   `RwLock<BTreeMap>` shards, so concurrent `prepare` calls only
//!   contend when their content hashes land in the same shard, and
//!   lookups take a read lock other lookups never block on;
//! * insertion is *build-outside-the-lock*: the expensive preparation
//!   (colouring, labelling, dual graph, frontier DP) runs with **no**
//!   lock held; only the final map insert takes the shard's write lock.
//!   If two threads race to prepare the same new instance, both build,
//!   one inserts, and the loser adopts the winner's entry — wasted work
//!   on a race, never a wrong answer and never a lock held across a DP.

use crate::pad::CachePadded;
use hsa_assign::{FrontierSet, Prepared};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Shard count. A power of two so the shard index is a mask; 16 is
/// plenty ahead of the worker counts this crate runs (contention drops
/// ~16× versus one map) while keeping the fixed footprint trivial.
pub(crate) const SHARDS: usize = 16;

/// One cached instance: the owned prepared form plus the λ-independent
/// frontier preparation of the full-expansion solver. Shared out as
/// `Arc<CachedInstance>`; immutable after construction.
pub struct CachedInstance {
    /// The fully prepared instance (tree, costs, labels, dual graph).
    pub prepared: Prepared<'static>,
    /// The λ-independent per-colour Pareto frontiers.
    pub frontiers: FrontierSet,
}

/// What a cache insert found: the live entry, and whether it is the
/// incumbent of a lost race (`adopted == true`) rather than the entry
/// this call built. See [`ShardedCache::insert_or_adopt`].
pub(crate) struct Inserted {
    pub(crate) entry: Arc<CachedInstance>,
    pub(crate) adopted: bool,
}

/// One shard: a read-write lock over its slice of the key space.
type Shard = RwLock<BTreeMap<u64, Arc<CachedInstance>>>;

/// The sharded map. All methods take `&self`. Each shard lock sits on its
/// own cache line ([`CachePadded`]): a `RwLock` is a word-sized atomic
/// state plus the map pointer, so without padding four shards share one
/// line and "independent" shards still ping-pong it between cores.
pub(crate) struct ShardedCache {
    shards: [CachePadded<Shard>; SHARDS],
}

impl ShardedCache {
    pub(crate) fn new() -> ShardedCache {
        ShardedCache {
            shards: std::array::from_fn(|_| CachePadded::new(RwLock::new(BTreeMap::new()))),
        }
    }

    /// The shard a content hash lives in. The hash is FNV-mixed already;
    /// the top bits decorrelate better than the bottom ones for
    /// structurally similar instances, so index with them.
    fn shard(&self, hash: u64) -> &Shard {
        &self.shards[(hash >> (64 - SHARDS.trailing_zeros())) as usize & (SHARDS - 1)]
    }

    /// Read-path lookup: a shared lock for the duration of one map probe
    /// and one `Arc` clone.
    pub(crate) fn get(&self, hash: u64) -> Option<Arc<CachedInstance>> {
        self.shard(hash)
            .read()
            .expect("cache shard poisoned")
            .get(&hash)
            .cloned()
    }

    /// Inserts `built` under `hash` unless a racing thread beat us to it,
    /// in which case the incumbent entry is returned instead (the caller
    /// must re-verify it against the presented instance — same hash does
    /// not prove same instance).
    pub(crate) fn insert_or_adopt(&self, hash: u64, built: CachedInstance) -> Inserted {
        let mut shard = self.shard(hash).write().expect("cache shard poisoned");
        match shard.entry(hash) {
            std::collections::btree_map::Entry::Occupied(e) => Inserted {
                entry: e.get().clone(),
                adopted: true,
            },
            std::collections::btree_map::Entry::Vacant(e) => {
                let arc = Arc::new(built);
                e.insert(arc.clone());
                Inserted {
                    entry: arc,
                    adopted: false,
                }
            }
        }
    }

    /// Number of cached instances (sums the shards; approximate only
    /// while writers are active, exact when quiescent).
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_assign::ExpandedConfig;
    use hsa_workloads::paper_scenario;

    fn entry() -> CachedInstance {
        let sc = paper_scenario();
        let prepared = Prepared::new_owned(sc.tree, sc.costs).unwrap();
        let frontiers = FrontierSet::prepare(&prepared, &ExpandedConfig::default()).unwrap();
        CachedInstance {
            prepared,
            frontiers,
        }
    }

    #[test]
    fn insert_then_get_round_trips() {
        let cache = ShardedCache::new();
        assert!(cache.get(7).is_none());
        assert!(!cache.insert_or_adopt(7, entry()).adopted);
        assert!(cache.get(7).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn racing_insert_adopts_the_incumbent() {
        let cache = ShardedCache::new();
        let first = cache.insert_or_adopt(7, entry());
        assert!(!first.adopted, "first insert must be fresh");
        let second = cache.insert_or_adopt(7, entry());
        assert!(second.adopted, "second insert must adopt");
        assert!(
            Arc::ptr_eq(&first.entry, &second.entry),
            "one entry, shared"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hashes_spread_across_shards() {
        let cache = ShardedCache::new();
        // Top-byte-distinct hashes must land in distinct shards: inserting
        // them all keeps every per-shard map at size ≤ 2.
        for i in 0..32u64 {
            cache.insert_or_adopt(i << 59, entry());
        }
        assert_eq!(cache.len(), 32);
        let max_shard = cache
            .shards
            .iter()
            .map(|s| s.read().unwrap().len())
            .max()
            .unwrap();
        assert_eq!(max_shard, 2, "32 top-distinct keys over 16 shards");
    }
}
