//! # The anytime racing portfolio (DESIGN.md §14)
//!
//! One question — "best cut for this instance at this λ" — raced by four
//! solver arms at once over a single shared [`Prepared`] instance:
//!
//! * **exact** — [`FrontierSet::prepare_cancellable`] + the threshold
//!   sweep: the engine's canonical answer path, byte-identical to a fresh
//!   [`hsa_assign::Expanded`]`::solve`, but cancellable per tree node;
//! * **cut-ga / cut-sa / cut-bnb** — the hsa-heuristics search bodies
//!   retargeted at the tree-cut problem ([`CutGenetic`], [`CutAnnealing`],
//!   [`CutBranchBound`]), each an anytime solver that answers with its best
//!   incumbent when its soft deadline fires.
//!
//! The caller gets the **first feasible answer** no later than the budget
//! (earlier when the exact arm wins outright), bracketed by a
//! [`GapCertificate`]: the answer's own objective above, the admissible
//! [`structural_lower_bound`] below — collapsing to a tight zero-gap
//! certificate the moment the exact arm finishes. Answers only ever
//! upgrade: the certificate history is monotone on both sides.
//!
//! Losing arms are not killed, they *drain*: every arm polls a shared
//! [`CancelToken`] and returns promptly once the race is decided, so the
//! portfolio's small worker pool is reusable race after race and
//! [`Portfolio::pending_arms`] falls back to zero (the cancellation tests
//! pin this down).
//!
//! When the exact arm finishes inside the budget its λ-independent
//! [`FrontierSet`] is inserted into the owning engine's instance cache, so
//! the *next* `solve_anytime` (or `prepare`) of the same instance is a
//! cache hit answered tight and instantly.

use crate::cache::CachedInstance;
use crate::{instance_hash, Engine, EngineError, InstanceId, WorkerPool};
use hsa_assign::{
    solve_with_frontiers, structural_lower_bound, AssignError, CancelToken, ExpandedConfig,
    FrontierSet, GapCertificate, Prepared, Solution, SolveScratch, Solver,
};
use hsa_graph::{Lambda, ScaledSsb};
use hsa_heuristics::{BnbConfig, CutAnnealing, CutBranchBound, CutGenetic, GaConfig, SaConfig};
use hsa_tree::{CostModel, CruTree};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which arm of the portfolio produced an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArmKind {
    /// The exact frontier solver (tight certificate).
    Exact,
    /// The cut-space genetic algorithm.
    Genetic,
    /// The cut-space simulated annealer.
    Annealing,
    /// The cut-space branch-and-bound.
    BranchBound,
}

impl ArmKind {
    /// Stable wire/report name of this arm.
    pub fn as_str(self) -> &'static str {
        match self {
            ArmKind::Exact => "exact",
            ArmKind::Genetic => "cut-ga",
            ArmKind::Annealing => "cut-sa",
            ArmKind::BranchBound => "cut-bnb",
        }
    }

    /// Fixed ranking used to break objective ties deterministically when
    /// picking a winner among heuristic arms.
    fn rank(self) -> u8 {
        match self {
            ArmKind::Exact => 0,
            ArmKind::Genetic => 1,
            ArmKind::Annealing => 2,
            ArmKind::BranchBound => 3,
        }
    }
}

impl fmt::Display for ArmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for ArmKind {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for ArmKind {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some("exact") => Ok(ArmKind::Exact),
            Some("cut-ga") => Ok(ArmKind::Genetic),
            Some("cut-sa") => Ok(ArmKind::Annealing),
            Some("cut-bnb") => Ok(ArmKind::BranchBound),
            _ => Err(DeError::custom(format!("unknown arm kind {v:?}"))),
        }
    }
}

/// The deterministic payload of an anytime solve — what crosses the wire.
///
/// Everything here is a pure function of the instance, λ and the winning
/// arm's search (each arm is deterministic per seed); the *racy* parts of
/// an anytime run (who answered first, how long it took, how many upgrades
/// happened) live in [`AnytimeOutcome`] and never leave the process. In
/// particular, whenever the exact arm finishes within budget the entire
/// answer — cut, objective, tight certificate, winner — is byte-identical
/// across runs and across the wire (the loopback tests pin this).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnytimeAnswer {
    /// The best solution found within the budget.
    pub solution: Solution,
    /// Certified bracket on the optimum: `lower ≤ optimum ≤ upper` with
    /// `upper == solution.objective`.
    pub certificate: GapCertificate,
    /// The arm that produced `solution`.
    pub winner: ArmKind,
    /// True when the exact arm completed — the answer is certified optimal
    /// and the certificate is tight.
    pub exact_finished: bool,
}

/// The full in-process result of one anytime race: the deliverable
/// [`AnytimeAnswer`] plus timing/upgrade diagnostics that depend on
/// scheduling and therefore stay out of the wire format.
#[derive(Clone, Debug)]
pub struct AnytimeOutcome {
    /// The answer (also what [`crate::Service`] serialises).
    pub answer: AnytimeAnswer,
    /// The arm that produced the *first* feasible answer (not necessarily
    /// the winner — a heuristic often answers first, the exact arm then
    /// upgrades it).
    pub first_arm: ArmKind,
    /// Wall-clock nanoseconds from submission to the first feasible
    /// answer.
    pub time_to_first_ns: u64,
    /// How many times a later arm improved the incumbent after the first
    /// answer (certificate tightenings).
    pub upgrades: u32,
    /// The certificate after each improvement, in order; monotone on both
    /// sides (lower never decreases, upper never increases), ending at
    /// `answer.certificate`.
    pub certificates: Vec<GapCertificate>,
}

/// Portfolio configuration: arm seeds/budgets plus the private pool size.
#[derive(Clone, Copy, Debug)]
pub struct PortfolioConfig {
    /// Worker threads of the portfolio's own pool (default 4, one per
    /// arm). The portfolio deliberately does not borrow the engine's batch
    /// pool: arms must keep draining even while the engine pool is busy,
    /// and a racing submit from inside a pool job must never deadlock.
    pub threads: usize,
    /// Genetic-arm configuration (deterministic per seed).
    pub ga: GaConfig,
    /// Annealing-arm configuration (deterministic per seed).
    pub sa: SaConfig,
    /// Branch-and-bound arm configuration.
    pub bnb: BnbConfig,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            threads: 4,
            ga: GaConfig::default(),
            sa: SaConfig::default(),
            bnb: BnbConfig::default(),
        }
    }
}

/// Shared state of one race, guarded by a mutex; arms report here and the
/// caller waits on the condvar.
struct RaceState {
    /// Set by the caller once it has extracted an answer: late stragglers
    /// then only decrement `arms_left` and notify.
    finished: bool,
    /// Arms that have not yet reported (answer, error or panic).
    arms_left: usize,
    /// Feasible answers from heuristic arms, in arrival order.
    answers: Vec<(ArmKind, Solution)>,
    /// The exact arm's answer and its reusable frontier set.
    exact: Option<(Solution, FrontierSet)>,
    /// The current certificate (None until the first answer).
    cert: Option<GapCertificate>,
    /// Certificate after each tightening.
    history: Vec<GapCertificate>,
    /// First arm to answer and when.
    first: Option<(ArmKind, Duration)>,
    /// Improvements after the first answer.
    upgrades: u32,
    /// Most recent arm error (reported only if no arm answers at all).
    last_err: Option<AssignError>,
}

struct Race {
    state: Mutex<RaceState>,
    cv: Condvar,
    /// Admissible λ-scaled lower bound, computed before any arm starts.
    lower: ScaledSsb,
    lambda: Lambda,
    start: Instant,
}

impl Race {
    /// Folds a feasible answer into the race: first-answer bookkeeping,
    /// monotone certificate tightening, upgrade counting.
    fn absorb(&self, st: &mut RaceState, kind: ArmKind, sol: &Solution, tight: bool) {
        if st.first.is_none() {
            st.first = Some((kind, self.start.elapsed()));
        }
        let next = match (st.cert, tight) {
            (Some(c), true) => c.tightened(sol.objective, sol.objective),
            (Some(c), false) => c.tightened(self.lower, sol.objective),
            (None, true) => GapCertificate::tight(sol.objective, self.lambda),
            (None, false) => GapCertificate::new(self.lower, sol.objective, self.lambda),
        };
        if st.cert != Some(next) {
            if st.cert.is_some() {
                st.upgrades += 1;
            }
            st.cert = Some(next);
            st.history.push(next);
        }
    }

    /// A heuristic arm reporting its result (best incumbent or error).
    fn arm_done(&self, kind: ArmKind, result: Result<Solution, AssignError>) {
        let mut st = self.state.lock().unwrap();
        st.arms_left = st.arms_left.saturating_sub(1);
        if !st.finished {
            match result {
                Ok(sol) => {
                    self.absorb(&mut st, kind, &sol, false);
                    st.answers.push((kind, sol));
                }
                Err(e) => st.last_err = Some(e),
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// The exact arm reporting: a tight answer plus its frontier set, or
    /// an error (typically [`AssignError::Cancelled`] after losing).
    fn exact_done(&self, result: Result<(Solution, FrontierSet), AssignError>) {
        let mut st = self.state.lock().unwrap();
        st.arms_left = st.arms_left.saturating_sub(1);
        if !st.finished {
            match result {
                Ok((sol, fs)) => {
                    self.absorb(&mut st, ArmKind::Exact, &sol, true);
                    st.exact = Some((sol, fs));
                }
                Err(e) => st.last_err = Some(e),
            }
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// Drop guard an arm holds for its whole run: decrements the portfolio's
/// pending-arm gauge and — if the arm never reported (a panic unwound
/// through it) — reports a loss so the caller's wait can still terminate.
struct ArmGuard {
    race: Arc<Race>,
    pending: Arc<AtomicUsize>,
    kind: ArmKind,
    reported: bool,
}

impl ArmGuard {
    fn new(race: Arc<Race>, pending: Arc<AtomicUsize>, kind: ArmKind) -> ArmGuard {
        ArmGuard {
            race,
            pending,
            kind,
            reported: false,
        }
    }
}

impl Drop for ArmGuard {
    fn drop(&mut self) {
        if !self.reported {
            // Panicked before reporting: count the arm out so the race
            // cannot wait on it forever.
            if self.kind == ArmKind::Exact {
                self.race.exact_done(Err(AssignError::Cancelled));
            } else {
                self.race.arm_done(self.kind, Err(AssignError::Cancelled));
            }
        }
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The anytime racing solver portfolio. See the module docs for the
/// racing model; [`Portfolio::solve_anytime`] is the single entry point.
///
/// The portfolio owns a small persistent [`WorkerPool`] (spawned once,
/// reused across races, drained on drop) so repeated races never
/// accumulate threads.
pub struct Portfolio {
    engine: Arc<Engine>,
    cfg: PortfolioConfig,
    pool: WorkerPool,
    pending: Arc<AtomicUsize>,
}

impl Portfolio {
    /// Creates a portfolio racing over (and feeding its exact results back
    /// into) the given engine's instance cache.
    pub fn new(engine: Arc<Engine>, cfg: PortfolioConfig) -> Portfolio {
        Portfolio {
            engine,
            pool: WorkerPool::new(cfg.threads.max(1)),
            cfg,
            pending: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Arms currently running (or draining after losing a race). Falls
    /// back to zero once every arm has observed cancellation — the
    /// cancellation tests poll this to prove losers drain cleanly.
    pub fn pending_arms(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// The configuration this portfolio was built with.
    pub fn config(&self) -> &PortfolioConfig {
        &self.cfg
    }

    /// Races all four arms on `(tree, costs, λ)` and returns within
    /// `budget` of the first feasible answer (often much sooner):
    ///
    /// * instance already cached → answered immediately from its frontiers
    ///   with a tight certificate, no race at all;
    /// * exact arm finishes in budget → its answer (byte-identical to a
    ///   fresh [`hsa_assign::Expanded`]`::solve`), tight certificate, and
    ///   the frontier set is cached for next time;
    /// * budget expires first → best heuristic incumbent (ties broken by
    ///   the fixed arm order), certificate bracketed below by the
    ///   structural relaxation.
    ///
    /// Losing arms observe the shared [`CancelToken`] and drain; this call
    /// never blocks on them after the answer is decided.
    pub fn solve_anytime(
        &self,
        tree: &CruTree,
        costs: &CostModel,
        lambda: Lambda,
        budget: Duration,
    ) -> Result<AnytimeOutcome, EngineError> {
        let start = Instant::now();
        let id = InstanceId::from_raw(instance_hash(tree, costs));
        if let Some(cached) = self.engine.instance(id) {
            if &*cached.prepared.tree != tree || &*cached.prepared.costs != costs {
                return Err(EngineError::HashCollision { id });
            }
            self.engine.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            let sol = solve_with_frontiers(&cached.prepared, &cached.frontiers, lambda)?;
            self.engine.stats.record_solve(&sol.stats);
            let cert = GapCertificate::tight(sol.objective, lambda);
            return Ok(AnytimeOutcome {
                answer: AnytimeAnswer {
                    solution: sol,
                    certificate: cert,
                    winner: ArmKind::Exact,
                    exact_finished: true,
                },
                first_arm: ArmKind::Exact,
                time_to_first_ns: start.elapsed().as_nanos() as u64,
                upgrades: 0,
                certificates: vec![cert],
            });
        }

        let prep: Arc<Prepared<'static>> =
            Arc::new(Prepared::new_owned(tree.clone(), costs.clone())?);
        let lower = structural_lower_bound(&prep, lambda);
        let deadline = start + budget;
        let token = CancelToken::new();
        let race = Arc::new(Race {
            state: Mutex::new(RaceState {
                finished: false,
                arms_left: 4,
                answers: Vec::new(),
                exact: None,
                cert: None,
                history: Vec::new(),
                first: None,
                upgrades: 0,
                last_err: None,
            }),
            cv: Condvar::new(),
            lower,
            lambda,
            start,
        });

        self.launch_exact(&prep, lambda, &token, &race, self.engine.config().expanded);
        let soft = token.until(deadline);
        self.launch_heuristic(
            Arc::new(CutGenetic {
                config: self.cfg.ga,
            }),
            ArmKind::Genetic,
            &prep,
            lambda,
            &soft,
            &race,
        );
        self.launch_heuristic(
            Arc::new(CutAnnealing {
                config: self.cfg.sa,
            }),
            ArmKind::Annealing,
            &prep,
            lambda,
            &soft,
            &race,
        );
        self.launch_heuristic(
            Arc::new(CutBranchBound {
                config: self.cfg.bnb,
            }),
            ArmKind::BranchBound,
            &prep,
            lambda,
            &soft,
            &race,
        );

        // Wait until the race is decided: exact finished, every arm
        // reported, or the budget expired with at least one answer in
        // hand. (Past the deadline with *no* answer yet we keep waiting in
        // short slices — the heuristic arms' soft deadline makes them
        // report their incumbents promptly.)
        let decided = {
            let mut st = race.state.lock().unwrap();
            loop {
                if st.exact.is_some() || st.arms_left == 0 {
                    break;
                }
                let now = Instant::now();
                if now >= deadline && (!st.answers.is_empty() || st.exact.is_some()) {
                    break;
                }
                let slice = if now < deadline {
                    deadline - now
                } else {
                    Duration::from_millis(10)
                };
                let (guard, _) = race.cv.wait_timeout(st, slice).unwrap();
                st = guard;
            }
            st.finished = true;
            let exact = st.exact.take();
            let exact_finished = exact.is_some();
            let picked = if let Some((sol, fs)) = exact {
                Some((ArmKind::Exact, sol, Some(fs)))
            } else {
                // Best heuristic incumbent; objective ties broken by the
                // fixed arm ranking so the pick is order-independent.
                let mut best: Option<(ArmKind, Solution)> = None;
                for (kind, sol) in st.answers.drain(..) {
                    let better = match &best {
                        None => true,
                        Some((bk, bs)) => (sol.objective, kind.rank()) < (bs.objective, bk.rank()),
                    };
                    if better {
                        best = Some((kind, sol));
                    }
                }
                best.map(|(k, s)| (k, s, None))
            };
            match picked {
                Some(p) => Ok((
                    p,
                    st.cert,
                    std::mem::take(&mut st.history),
                    st.first,
                    st.upgrades,
                    exact_finished,
                )),
                None => Err(st.last_err.take().unwrap_or(AssignError::Cancelled)),
            }
        };
        // Decided (either way): stop every still-running arm.
        token.cancel();

        let ((winner, solution, frontiers), cert, history, first, upgrades, exact_finished) =
            decided.map_err(EngineError::from)?;

        if let Some(fs) = frontiers {
            // The exact arm finished: donate its λ-independent frontier
            // set to the engine's cache so the next query over this
            // instance — anytime or batch — is a hit. Counted as a miss:
            // the preparation work was paid here.
            let entry = CachedInstance {
                prepared: (*prep).clone(),
                frontiers: fs,
            };
            self.engine.cache.insert_or_adopt(id.raw(), entry);
            self.engine
                .stats
                .cache_misses
                .fetch_add(1, Ordering::Relaxed);
        }
        self.engine.stats.record_solve(&solution.stats);

        // The winner's objective is the certified upper bound by
        // construction; the certificate always exists once any arm
        // answered.
        let certificate = cert.unwrap_or(GapCertificate::new(lower, solution.objective, lambda));
        let (first_arm, first_at) = first.unwrap_or((winner, start.elapsed()));
        Ok(AnytimeOutcome {
            answer: AnytimeAnswer {
                solution,
                certificate,
                winner,
                exact_finished,
            },
            first_arm,
            time_to_first_ns: first_at.as_nanos() as u64,
            upgrades,
            certificates: history,
        })
    }

    fn launch_exact(
        &self,
        prep: &Arc<Prepared<'static>>,
        lambda: Lambda,
        token: &CancelToken,
        race: &Arc<Race>,
        expanded: ExpandedConfig,
    ) {
        let prep = Arc::clone(prep);
        let token = token.clone();
        let race = Arc::clone(race);
        let pending = Arc::clone(&self.pending);
        pending.fetch_add(1, Ordering::AcqRel);
        self.pool.submit(move || {
            let mut guard = ArmGuard::new(Arc::clone(&race), pending, ArmKind::Exact);
            let out = FrontierSet::prepare_cancellable(&prep, &expanded, &token).and_then(|fs| {
                let sol = solve_with_frontiers(&prep, &fs, lambda)?;
                Ok((sol, fs))
            });
            guard.reported = true;
            race.exact_done(out);
        });
    }

    fn launch_heuristic(
        &self,
        solver: Arc<dyn Solver + Send + Sync>,
        kind: ArmKind,
        prep: &Arc<Prepared<'static>>,
        lambda: Lambda,
        token: &CancelToken,
        race: &Arc<Race>,
    ) {
        let prep = Arc::clone(prep);
        let token = token.clone();
        let race = Arc::clone(race);
        let pending = Arc::clone(&self.pending);
        pending.fetch_add(1, Ordering::AcqRel);
        self.pool.submit(move || {
            let mut guard = ArmGuard::new(Arc::clone(&race), pending, kind);
            let mut scratch = SolveScratch::new();
            let out = solver.solve_cancellable(&prep, lambda, &mut scratch, &token);
            guard.reported = true;
            race.arm_done(kind, out);
        });
    }
}
