//! Fixed-bucket HDR-style latency histograms (DESIGN.md §11).
//!
//! A service for many tenants is judged by its tail, not its mean: one
//! p99 outlier per hundred requests is what a user actually feels. This
//! module records nanosecond latencies into a fixed array of lock-free
//! buckets so the hot path pays two relaxed `fetch_add`s and zero
//! allocation, and percentile queries read a [`HistogramSnapshot`] off
//! the side.
//!
//! The bucket scheme is the classic HDR layout with 5 sub-bucket bits:
//! values below 32 ns get exact unit buckets; above that, each power of
//! two ("octave") is split into 32 sub-buckets, so every bucket's width
//! is at most ~3.1 % of its value — plenty for p50/p90/p99 on paths that
//! take microseconds to milliseconds. 1024 buckets cover 0 ns to ~67 s;
//! anything slower saturates into the top bucket (and a 67-second
//! "request" is an outage, not a latency). Percentiles use the
//! nearest-rank rule and report the bucket's lower bound, which makes
//! them deterministic and never optimistic by more than one bucket
//! width.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32): bucket width ≤ value / 32.
const SUB: usize = 1 << SUB_BITS;
/// Octaves above the exact range; with 5 sub-bits this tops out at
/// 63 << 30 ns ≈ 67 s.
const OCTAVES: usize = 31;
/// Total buckets (1024 → 8 KiB of counters per histogram).
pub const NUM_BUCKETS: usize = SUB * (OCTAVES + 1);

/// The bucket a nanosecond value lands in.
fn bucket_index(ns: u64) -> usize {
    if ns < SUB as u64 {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros();
    let octave = msb - SUB_BITS;
    if octave as usize >= OCTAVES {
        return NUM_BUCKETS - 1;
    }
    let sub = (ns >> octave) as usize - SUB;
    (octave as usize + 1) * SUB + sub
}

/// The smallest value that lands in bucket `idx` (what percentiles
/// report).
fn bucket_low(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = idx / SUB - 1;
    let sub = idx % SUB;
    ((SUB + sub) as u64) << octave
}

/// A lock-free fixed-bucket latency histogram. `record` is safe from any
/// number of threads; `snapshot` reads a consistent-enough copy for
/// percentile queries (individual bucket loads are relaxed — exactness
/// per bucket, not cross-bucket atomicity, which is the usual contract
/// for monitoring histograms).
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency in nanoseconds.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one latency from a [`Duration`].
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A copy of the current counts for percentile queries.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snap.count)
            .field("sum_ns", &snap.sum_ns)
            .finish()
    }
}

/// An owned copy of a histogram's counts: mergeable, queryable, cheap to
/// clone relative to re-recording.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of every recorded value, nanoseconds (saturated samples
    /// contribute their true value here, only their bucket is clamped).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Adds another snapshot's samples into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// The nearest-rank percentile `p` ∈ (0, 100], reported as the
    /// holding bucket's lower bound (0 when empty).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_low(idx);
            }
        }
        bucket_low(NUM_BUCKETS - 1)
    }

    /// The fixed percentile summary the service reports.
    pub fn stats(&self) -> LatencyStats {
        LatencyStats {
            count: self.count,
            sum_ns: self.sum_ns,
            p50_ns: self.percentile(50.0),
            p90_ns: self.percentile(90.0),
            p99_ns: self.percentile(99.0),
        }
    }
}

/// A fixed p50/p90/p99 summary of one histogram — the shape carried by
/// [`crate::ServiceStats`] and emitted into `BENCH_*.json` metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Samples recorded.
    pub count: u64,
    /// Sum of every sample, nanoseconds.
    pub sum_ns: u64,
    /// Median latency, nanoseconds (bucket lower bound).
    pub p50_ns: u64,
    /// 90th-percentile latency, nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_64ns() {
        // Unit buckets for 0..32, and the first octave (32..64) still has
        // shift 0, so every value below 64 maps to its own bucket whose
        // lower bound is the value itself.
        for v in 0..64u64 {
            let idx = bucket_index(v);
            assert_eq!(bucket_low(idx), v, "value {v}");
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        // Lower bound ≤ value < next bucket's lower bound, and relative
        // width stays ≤ 1/32 of the lower bound past the exact range.
        for &v in &[
            64u64,
            65,
            100,
            1_000,
            4_095,
            4_096,
            65_537,
            1_000_000,
            123_456_789,
            u64::from(u32::MAX),
        ] {
            let idx = bucket_index(v);
            let low = bucket_low(idx);
            let next = bucket_low(idx + 1);
            assert!(low <= v && v < next, "value {v}: [{low}, {next})");
            assert!(next - low <= low / 32 + 1, "width at {v}");
        }
    }

    #[test]
    fn powers_of_two_start_their_octave() {
        for msb in SUB_BITS..36 {
            let v = 1u64 << msb;
            assert_eq!(bucket_low(bucket_index(v)), v, "2^{msb}");
        }
    }

    #[test]
    fn top_bucket_saturates() {
        let h = LatencyHistogram::new();
        h.record(1u64 << 40);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        // Both land in the last bucket; the percentile reports its lower
        // bound rather than overflowing.
        assert_eq!(snap.percentile(50.0), bucket_low(NUM_BUCKETS - 1));
        assert_eq!(snap.percentile(100.0), bucket_low(NUM_BUCKETS - 1));
        // The sum keeps the true values.
        assert_eq!(snap.sum_ns(), (1u64 << 40).wrapping_add(u64::MAX));
    }

    #[test]
    fn exact_percentiles_on_a_known_distribution() {
        // 1..=50 ns once each: every value sits in its own exact bucket,
        // so nearest-rank percentiles are exact.
        let h = LatencyHistogram::new();
        for v in 1..=50u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 50);
        assert_eq!(snap.percentile(50.0), 25);
        assert_eq!(snap.percentile(90.0), 45);
        assert_eq!(snap.percentile(98.0), 49);
        assert_eq!(snap.percentile(100.0), 50);
        assert_eq!(snap.mean_ns(), (1 + 50) * 50 / 2 / 50);
        let stats = snap.stats();
        assert_eq!((stats.p50_ns, stats.p90_ns, stats.p99_ns), (25, 45, 50));
    }

    #[test]
    fn p99_isolates_the_tail() {
        // 99 fast ops and 1 slow outlier: the mean moves a little, the
        // p99 lands on the outlier's bucket — the whole point of gating
        // on percentiles.
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.percentile(50.0), bucket_low(bucket_index(1_000)));
        assert_eq!(snap.percentile(99.0), bucket_low(bucket_index(1_000)));
        assert_eq!(snap.percentile(99.5), bucket_low(bucket_index(1_000_000)));
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let (a, b, all) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for v in [3u64, 64, 999, 70_000, 5_000_000] {
            a.record(v);
            all.record(v);
        }
        for v in [10u64, 64, 80_000, 1 << 41] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let snap = LatencyHistogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.percentile(99.0), 0);
        assert_eq!(snap.stats(), LatencyStats::default());
        assert_eq!(snap, HistogramSnapshot::default());
    }

    #[test]
    fn record_duration_round_trips() {
        let h = LatencyHistogram::new();
        h.record_duration(Duration::from_micros(5));
        assert_eq!(h.snapshot().sum_ns(), 5_000);
    }
}
