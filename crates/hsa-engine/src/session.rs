//! Incremental re-solve for **drifting** instances.
//!
//! A [`Session`] pins one live instance — a reasoning tree whose topology
//! is fixed but whose costs drift (sensor rates fluctuate, satellites
//! change speed, sensors churn between boxes) — and keeps its expensive
//! λ-independent preparation (the [`FrontierSet`] DP) warm across
//! perturbation steps. [`Session::apply`] takes a [`Delta`], re-derives
//! the cheap O(n) labels, diffs them against the previous step
//! ([`hsa_assign::dirty_colours`]) and rebuilds **only the per-colour
//! frontiers whose supporting regions were actually touched**; when the
//! dirty fraction exceeds the configured threshold it falls back to a
//! from-scratch rebuild (at that point the partial path would redo most of
//! the work anyway, plus the diff). Either way, every later
//! [`Session::solve`] answers **identically** to a fresh
//! [`hsa_assign::Expanded`]`::solve` on the drifted instance — the
//! incremental path reuses only state proven unchanged, it never
//! approximates. The T11 experiment asserts that equality at every drift
//! step before timing anything.
//!
//! ```
//! use hsa_engine::{Session, SessionConfig};
//! use hsa_graph::{Cost, Lambda};
//! use hsa_tree::Delta;
//!
//! let sc = hsa_workloads::paper_scenario();
//! let mut session = Session::new(&sc.tree, &sc.costs, SessionConfig::default()).unwrap();
//! let before = session.solve(Lambda::HALF).unwrap();
//!
//! // One sensor branch gets 25% busier; re-solve incrementally.
//! let busier = Delta::new().scale_subtree(sc.tree.children(sc.tree.root())[0], 5, 4);
//! let outcome = session.apply(&busier).unwrap();
//! assert!(outcome.dirty_colours <= outcome.total_colours);
//! let after = session.solve(Lambda::HALF).unwrap();
//! assert!(after.objective >= before.objective);
//! ```

use hsa_assign::{
    lambda_frontier_with, solve_with_frontiers, AssignError, ExpandedConfig, FrontierSet,
    LambdaFrontier, Prepared, Solution,
};
use hsa_graph::Lambda;
use hsa_tree::{CostModel, CruTree, Delta};
use serde::{Deserialize, Serialize};

/// Configuration of an incremental [`Session`].
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Frontier caps for the underlying full-expansion preparation.
    pub expanded: ExpandedConfig,
    /// When the fraction of dirty colours **exceeds** this threshold,
    /// [`Session::apply`] rebuilds the whole [`FrontierSet`] from scratch
    /// instead of patching it colour by colour. 0.0 sends every apply
    /// that dirties at least one colour down the full-rebuild path (an
    /// observed-clean apply has nothing to rebuild on either path); 1.0
    /// never falls back.
    pub fallback_fraction: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            expanded: ExpandedConfig::default(),
            // Above half the colours dirty, the partial path saves less
            // than it spends on cloning the clean remainder + the diff.
            fallback_fraction: 0.5,
        }
    }
}

/// Counters of a session's life so far (see [`Session::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Successful [`Session::apply`] calls.
    pub applies: u64,
    /// Applies answered by the incremental (partial-rebuild) path.
    pub incremental: u64,
    /// Applies that fell back to a from-scratch frontier rebuild.
    pub full_rebuilds: u64,
    /// Colour frontiers recomputed across all applies.
    pub colours_rebuilt: u64,
    /// Colour frontiers reused verbatim across all applies.
    pub colours_reused: u64,
}

impl SessionStats {
    /// Fraction of all per-apply colour slots that were reused (0.0 before
    /// the first apply). The higher, the more the session amortises.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.colours_rebuilt + self.colours_reused;
        if total == 0 {
            0.0
        } else {
            self.colours_reused as f64 / total as f64
        }
    }
}

/// What one [`Session::apply`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplyOutcome {
    /// Colours whose frontier had to be rebuilt.
    pub dirty_colours: usize,
    /// Total colours (satellites) of the instance.
    pub total_colours: usize,
    /// True when the dirty fraction tripped [`SessionConfig::fallback_fraction`]
    /// and the whole frontier set was rebuilt from scratch.
    pub full_rebuild: bool,
}

/// A held-open instance that absorbs [`Delta`]s and re-solves
/// incrementally. See the module docs for the invalidation model.
/// Cloning duplicates the instance *and* its warm frontiers — a cheap way
/// to fork a pristine replay point (the T11 harness does).
#[derive(Clone)]
pub struct Session {
    prepared: Prepared<'static>,
    frontiers: FrontierSet,
    cfg: SessionConfig,
    stats: SessionStats,
}

impl Session {
    /// Opens a session on an instance: full preparation (validation,
    /// colouring, σ/β labels, dual graph) plus the λ-independent frontier
    /// DP — the last time either is paid in full while drift stays local.
    pub fn new(
        tree: &CruTree,
        costs: &CostModel,
        mut cfg: SessionConfig,
    ) -> Result<Session, AssignError> {
        // A NaN threshold would silently disable the fallback (every
        // comparison false), a negative one silently force it; normalise
        // to the meaningful [0, 1] range and surface misuse in debug.
        debug_assert!(
            cfg.fallback_fraction.is_finite() && (0.0..=1.0).contains(&cfg.fallback_fraction),
            "fallback_fraction must be a finite fraction in [0, 1], got {}",
            cfg.fallback_fraction
        );
        cfg.fallback_fraction = if cfg.fallback_fraction.is_finite() {
            cfg.fallback_fraction.clamp(0.0, 1.0)
        } else {
            SessionConfig::default().fallback_fraction
        };
        let prepared = Prepared::new_owned(tree.clone(), costs.clone())?;
        let frontiers = FrontierSet::prepare(&prepared, &cfg.expanded)?;
        Ok(Session {
            prepared,
            frontiers,
            cfg,
            stats: SessionStats::default(),
        })
    }

    /// Applies one perturbation step.
    ///
    /// Re-derives the O(n) labels for the drifted cost model **in place**
    /// (the tree is reused, never cloned), diffs them against the previous
    /// step and rebuilds exactly the dirty colour frontiers (or
    /// everything, past the fallback threshold). On error — an invalid
    /// delta, or a frontier overflow — the session is left unchanged (the
    /// delta is applied to a cost-model clone, and a failed frontier
    /// rebuild rolls the labels back).
    pub fn apply(&mut self, delta: &Delta) -> Result<ApplyOutcome, AssignError> {
        let mut costs: CostModel = self.costs().clone();
        delta.apply(&self.prepared.tree, &mut costs)?;
        let (replaced, diff) = self.prepared.update_costs(costs)?;
        let total = diff.dirty.len();
        let n_dirty = diff.count();
        let full = diff.fraction() > self.cfg.fallback_fraction;
        let rebuilt = if full {
            FrontierSet::prepare(&self.prepared, &self.cfg.expanded).map(Some)
        } else {
            self.frontiers
                .refresh_in_place(&self.prepared, &self.cfg.expanded, &diff.dirty)
                .map(|()| None)
        };
        match rebuilt {
            Ok(Some(fresh)) => self.frontiers = fresh,
            Ok(None) => {}
            Err(e) => {
                self.prepared.restore(replaced);
                return Err(e);
            }
        }
        self.stats.applies += 1;
        if full {
            self.stats.full_rebuilds += 1;
            self.stats.colours_rebuilt += total as u64;
        } else {
            self.stats.incremental += 1;
            self.stats.colours_rebuilt += n_dirty as u64;
            self.stats.colours_reused += (total - n_dirty) as u64;
        }
        Ok(ApplyOutcome {
            dirty_colours: n_dirty,
            total_colours: total,
            full_rebuild: full,
        })
    }

    /// Solves the *current* (drifted) instance at `lambda` from the
    /// maintained frontiers — identical, cut for cut, to a fresh
    /// [`hsa_assign::Expanded`]`::solve` of the same instance.
    pub fn solve(&self, lambda: Lambda) -> Result<Solution, AssignError> {
        solve_with_frontiers(&self.prepared, &self.frontiers, lambda)
    }

    /// Applies a delta and solves in one call — the drifting-deployment
    /// hot path (`apply(δ_t); solve(λ)` per tick).
    pub fn apply_and_solve(
        &mut self,
        delta: &Delta,
        lambda: Lambda,
    ) -> Result<Solution, AssignError> {
        self.apply(delta)?;
        self.solve(lambda)
    }

    /// The λ-frontier of the current instance (every optimal cut over
    /// λ ∈ [0, 1]), derived from the maintained frontiers.
    pub fn frontier(&self) -> Result<LambdaFrontier, AssignError> {
        lambda_frontier_with(&self.prepared, &self.frontiers)
    }

    /// The current prepared instance (tree, drifted costs, labels, graph).
    pub fn prepared(&self) -> &Prepared<'static> {
        &self.prepared
    }

    /// The current (drifted) cost model.
    pub fn costs(&self) -> &CostModel {
        &self.prepared.costs
    }

    /// The maintained λ-independent frontier preparation.
    pub fn frontier_set(&self) -> &FrontierSet {
        &self.frontiers
    }

    /// Counters since the session opened (or the last reset).
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Resets the counters, keeping the instance and frontiers.
    pub fn reset_stats(&mut self) {
        self.stats = SessionStats::default();
    }

    /// The configuration this session was opened with.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_assign::{Expanded, Solver};
    use hsa_graph::Cost;
    use hsa_workloads::paper_scenario;

    fn assert_matches_scratch(session: &Session, lambda: Lambda) {
        let scratch_prep = Prepared::new(&session.prepared.tree, &session.prepared.costs).unwrap();
        let want = Expanded::default().solve(&scratch_prep, lambda).unwrap();
        let got = session.solve(lambda).unwrap();
        assert_eq!(got.objective, want.objective);
        assert_eq!(got.cut, want.cut);
    }

    #[test]
    fn fresh_session_matches_scratch_solves() {
        let sc = paper_scenario();
        let session = Session::new(&sc.tree, &sc.costs, SessionConfig::default()).unwrap();
        for lambda in [Lambda::ZERO, Lambda::HALF, Lambda::ONE] {
            assert_matches_scratch(&session, lambda);
        }
    }

    #[test]
    fn incremental_applies_stay_exact_and_reuse_colours() {
        let sc = paper_scenario();
        let mut session = Session::new(&sc.tree, &sc.costs, SessionConfig::default()).unwrap();
        let leaf = *sc.tree.leaves_in_order().first().unwrap();
        for step in 1..=5u64 {
            let delta = Delta::new().set_satellite_time(leaf, Cost::new(100 + 37 * step));
            let outcome = session.apply(&delta).unwrap();
            assert!(
                outcome.dirty_colours >= 1,
                "step {step} must dirty a colour"
            );
            for lambda in [Lambda::ZERO, Lambda::HALF, Lambda::ONE] {
                assert_matches_scratch(&session, lambda);
            }
        }
        let stats = session.stats();
        assert_eq!(stats.applies, 5);
        assert!(stats.incremental >= 1, "local drift takes the partial path");
        assert!(stats.colours_reused > 0, "clean colours must be reused");
        assert!(stats.reuse_rate() > 0.0);
    }

    #[test]
    fn noop_delta_dirties_nothing() {
        let sc = paper_scenario();
        let mut session = Session::new(&sc.tree, &sc.costs, SessionConfig::default()).unwrap();
        let outcome = session.apply(&Delta::new()).unwrap();
        assert_eq!(outcome.dirty_colours, 0);
        assert!(!outcome.full_rebuild);
        // Setting a cost to its current value is also observed as clean.
        let root = sc.tree.root();
        let same = Delta::new().set_host_time(root, sc.costs.h(root));
        let outcome = session.apply(&same).unwrap();
        assert_eq!(outcome.dirty_colours, 0);
    }

    #[test]
    fn fallback_threshold_forces_full_rebuilds() {
        let sc = paper_scenario();
        let cfg = SessionConfig {
            fallback_fraction: 0.0,
            ..SessionConfig::default()
        };
        let mut session = Session::new(&sc.tree, &sc.costs, cfg).unwrap();
        let leaf = *sc.tree.leaves_in_order().first().unwrap();
        let delta = Delta::new().set_satellite_time(leaf, Cost::new(5000));
        let outcome = session.apply(&delta).unwrap();
        assert!(outcome.full_rebuild);
        assert_eq!(session.stats().full_rebuilds, 1);
        assert_matches_scratch(&session, Lambda::HALF);
    }

    #[test]
    fn global_drift_trips_the_fallback() {
        let sc = paper_scenario();
        let mut session = Session::new(&sc.tree, &sc.costs, SessionConfig::default()).unwrap();
        // Scaling the whole tree dirties every used colour.
        let delta = Delta::new().scale_subtree(sc.tree.root(), 11, 10);
        let outcome = session.apply(&delta).unwrap();
        assert!(outcome.full_rebuild, "global drift must take the full path");
        assert_matches_scratch(&session, Lambda::HALF);
    }

    #[test]
    fn failed_apply_leaves_the_session_untouched() {
        let sc = paper_scenario();
        let mut session = Session::new(&sc.tree, &sc.costs, SessionConfig::default()).unwrap();
        let before = session.solve(Lambda::HALF).unwrap();
        let bad = Delta::new()
            .set_host_time(sc.tree.root(), Cost::new(999_999))
            .set_comm_up(sc.tree.root(), Cost::new(1)); // invalid: root uplink
        assert!(session.apply(&bad).is_err());
        assert_eq!(session.stats().applies, 0);
        let after = session.solve(Lambda::HALF).unwrap();
        assert_eq!(after.objective, before.objective, "no partial mutation");
        assert_eq!(
            session.costs().h(sc.tree.root()),
            sc.costs.h(sc.tree.root())
        );
    }

    #[test]
    fn churn_is_exact_across_repins() {
        let sc = paper_scenario();
        let mut session = Session::new(&sc.tree, &sc.costs, SessionConfig::default()).unwrap();
        let leaves = sc.tree.leaves_in_order();
        let n_sats = sc.costs.n_satellites();
        for (i, &leaf) in leaves.iter().take(4).enumerate() {
            let to = hsa_tree::SatelliteId((i as u32 + 1) % n_sats);
            session.apply(&Delta::new().repin(leaf, to)).unwrap();
            for lambda in [Lambda::ZERO, Lambda::HALF, Lambda::ONE] {
                assert_matches_scratch(&session, lambda);
            }
        }
    }

    #[test]
    fn frontier_tracks_the_drifted_instance() {
        let sc = paper_scenario();
        let mut session = Session::new(&sc.tree, &sc.costs, SessionConfig::default()).unwrap();
        let leaf = *sc.tree.leaves_in_order().last().unwrap();
        session
            .apply(&Delta::new().set_satellite_time(leaf, Cost::new(777)))
            .unwrap();
        let frontier = session.frontier().unwrap();
        for n in 0..=4u32 {
            let lambda = Lambda::new(n, 4).unwrap();
            let sol = session.solve(lambda).unwrap();
            assert_eq!(frontier.objective_at(lambda), sol.objective);
        }
    }
}
