//! Thread fan-out and workspace pooling for the batch engine.

use hsa_assign::SolveScratch;
use std::sync::Mutex;

/// Runs `job` over `items` on `threads` std-scoped workers, collecting
/// results in input order.
///
/// Work-stealing from a shared deque; a `threads` of 1 degrades to a plain
/// in-order loop on the calling thread's spawn. (Moved here from
/// `hsa-bench`, which re-exports it, so the service layer does not depend
/// on the benchmark crate.)
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, job: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1);
    let n = items.len();
    let work: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = work.lock().expect("work queue poisoned").pop();
                let Some((i, item)) = next else { break };
                let r = job(item);
                results.lock().expect("result store poisoned")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("result store poisoned")
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// A free-list of [`SolveScratch`] workspaces shared by a batch run:
/// workers check a workspace out per query and return it afterwards, so
/// the number of live workspaces equals the in-flight query count and their
/// buffers keep their high-water capacity across the whole batch.
pub(crate) struct ScratchPool {
    free: Mutex<Vec<SolveScratch>>,
}

impl ScratchPool {
    pub(crate) fn new() -> ScratchPool {
        ScratchPool {
            free: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn acquire(&self) -> SolveScratch {
        self.free
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    pub(crate) fn release(&self, ws: SolveScratch) {
        self.free.lock().expect("scratch pool poisoned").push(ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, 4, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single_thread() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 3, |x| x);
        assert!(out.is_empty());
        let out = parallel_map(vec![5u32, 6], 0, |x| x + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn scratch_pool_recycles() {
        let pool = ScratchPool::new();
        let ws = pool.acquire();
        pool.release(ws);
        let _again = pool.acquire();
        assert!(pool.free.lock().unwrap().is_empty());
    }
}
