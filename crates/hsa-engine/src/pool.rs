//! The persistent worker pool behind the concurrent service stack.
//!
//! Earlier revisions spawned a fresh scoped thread crew for every batch
//! call and funnelled every result through one `Mutex<Vec<Option<R>>>`.
//! Under a continual request stream that is pure overhead: thread spawn
//! and teardown per call, plus a lock every worker serialises on. This
//! module replaces both:
//!
//! * [`WorkerPool`] — N **persistent** workers fed through one shared
//!   injector channel. Workers live as long as the pool; dropping the
//!   pool closes the channel, lets the workers drain what was already
//!   submitted, and joins them (graceful shutdown). A panicking job is
//!   **isolated**: the worker catches the unwind, counts it
//!   ([`WorkerPool::panicked_jobs`]) and keeps serving.
//! * [`WorkerPool::run_batch`] — fan a `Vec` of items across the pool and
//!   collect results in input order. Each job delivers its result through
//!   a per-batch mpsc channel (per-slot writes, no shared result lock); a
//!   panic inside the job function is re-raised on the *calling* thread
//!   once the batch has drained, so batch semantics match a plain loop.
//! * [`parallel_map`] — the old entry point, now a thin shim: one
//!   transient pool per call (same cost as the scoped crew it replaces),
//!   same in-order results, same panic propagation. Hot paths should hold
//!   a [`WorkerPool`] (the [`Engine`](crate::Engine) does) instead of
//!   re-spawning per call.
//!
//! A `threads` of 1 degrades to a plain in-order loop on the calling
//! thread — sequential baselines stay honest.
//!
//! **Re-entrancy:** `run_batch` blocks the calling thread until the batch
//! drains. Calling it *from a worker of the same pool* can deadlock once
//! the pool is saturated (the batch's jobs queue behind their own caller);
//! submit plain jobs from workers instead.

use hsa_assign::SolveScratch;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work: owns everything it touches (`'static`), so it can
/// cross the injector channel to whichever worker is free.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The shared injector: a closable MPMC queue (mutex + condvar — the
/// std mpsc receiver is single-consumer, and workers are many).
struct Injector {
    state: Mutex<InjectorState>,
    ready: Condvar,
}

struct InjectorState {
    queue: VecDeque<Job>,
    closed: bool,
}

impl Injector {
    fn new() -> Injector {
        Injector {
            state: Mutex::new(InjectorState {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut st = self.state.lock().expect("pool injector poisoned");
        debug_assert!(!st.closed, "submit after shutdown");
        st.queue.push_back(job);
        drop(st);
        self.ready.notify_one();
    }

    /// Blocks until a job is available or the channel is closed *and*
    /// drained (graceful shutdown finishes accepted work first).
    fn pop(&self) -> Option<Job> {
        let mut st = self.state.lock().expect("pool injector poisoned");
        loop {
            if let Some(job) = st.queue.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).expect("pool injector poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("pool injector poisoned").closed = true;
        self.ready.notify_all();
    }
}

/// A persistent, channel-fed worker pool. See the module docs.
pub struct WorkerPool {
    injector: Arc<Injector>,
    workers: Vec<JoinHandle<()>>,
    panicked: Arc<AtomicU64>,
}

/// Resolves a configured thread count: 0 means one worker per available
/// core.
pub(crate) fn effective_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` persistent workers (0 = one per
    /// available core).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = effective_threads(threads);
        let injector = Arc::new(Injector::new());
        let panicked = Arc::new(AtomicU64::new(0));
        let workers = (0..threads)
            .map(|i| {
                let injector = Arc::clone(&injector);
                let panicked = Arc::clone(&panicked);
                std::thread::Builder::new()
                    .name(format!("hsa-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = injector.pop() {
                            // Panic isolation: a poisoned job must not take
                            // its worker (or the whole pool) down with it.
                            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                panicked.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            injector,
            workers,
            panicked,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Jobs that panicked since the pool started (each was isolated; the
    /// worker kept running).
    pub fn panicked_jobs(&self) -> u64 {
        self.panicked.load(Ordering::Relaxed)
    }

    /// Submits one fire-and-forget job to whichever worker frees up
    /// first. Result delivery (if any) is the job's own business — pair
    /// with an mpsc sender or a reply slot.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.injector.push(Box::new(job));
    }

    /// Fans `items` across the pool, collecting `job`'s results in input
    /// order. Blocks until the whole batch drained. If any job panicked,
    /// a panic payload is re-raised here, on the calling thread.
    ///
    /// Delivery is **single-slot**: the batch shares one `Arc` carrying
    /// the job and a slot array; each worker writes its result straight
    /// into its own pre-assigned slot and decrements a countdown, and the
    /// last one wakes the caller. Per item that is one `Arc` bump and one
    /// uncontended slot lock — the previous scheme paid an `Arc` clone of
    /// the job *plus* an mpsc sender clone per item, and every result took
    /// a second hop through the channel before the caller re-scattered it
    /// into an ordered buffer.
    pub fn run_batch<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // A one-item batch has no parallelism to exploit; shipping it
            // to a worker just buys two context switches and a condvar
            // round-trip. Run it on the calling thread instead — this is
            // the service's per-request solve path, so the hop matters.
            let item = items.into_iter().next().expect("n == 1");
            return vec![job(item)];
        }
        let shared = Arc::new(BatchShared {
            job,
            slots: (0..n).map(|_| Mutex::new(None)).collect::<Vec<_>>(),
            remaining: AtomicUsize::new(n),
            done: Mutex::new(false),
            all_done: Condvar::new(),
        });
        for (i, item) in items.into_iter().enumerate() {
            let sh = Arc::clone(&shared);
            self.submit(move || {
                // Catch here (not only in the worker loop) so the batch
                // collector learns about the panic instead of hanging on a
                // result that will never arrive.
                let out = catch_unwind(AssertUnwindSafe(|| (sh.job)(item)));
                *sh.slots[i].lock().expect("batch slot poisoned") = Some(out);
                if sh.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    *sh.done.lock().expect("batch latch poisoned") = true;
                    sh.all_done.notify_one();
                }
            });
        }
        let mut done = shared.done.lock().expect("batch latch poisoned");
        while !*done {
            done = shared.all_done.wait(done).expect("batch latch poisoned");
        }
        drop(done);
        let mut first_panic = None;
        let mut out = Vec::with_capacity(n);
        for slot in &shared.slots {
            let result = slot
                .lock()
                .expect("batch slot poisoned")
                .take()
                .expect("all batch slots filled");
            match result {
                Ok(r) => out.push(r),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        out
    }
}

/// The shared state of one `run_batch` call: the job, one result slot per
/// item (each written by exactly one worker, so its lock is never
/// contended), and the countdown latch the caller parks on.
struct BatchShared<R, F> {
    job: F,
    slots: Vec<Mutex<Option<std::thread::Result<R>>>>,
    remaining: AtomicUsize,
    done: Mutex<bool>,
    all_done: Condvar,
}

impl Drop for WorkerPool {
    /// Graceful shutdown: close the injector, let workers drain what was
    /// already accepted, join them all.
    fn drop(&mut self) {
        self.injector.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Runs `job` over `items` on `threads` workers, collecting results in
/// input order.
///
/// A shim over [`WorkerPool::run_batch`] on a transient pool (kept for
/// one-shot sweeps; services hold a persistent pool instead). A `threads`
/// of 0 or 1 — or a batch of at most one item — runs as a plain in-order
/// loop on the calling thread.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, job: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let threads = effective_threads(threads.max(1)).min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(job).collect();
    }
    WorkerPool::new(threads).run_batch(items, job)
}

/// A free-list of [`SolveScratch`] workspaces shared by a batch run:
/// workers check a workspace out per query and return it afterwards, so
/// the number of live workspaces equals the in-flight query count and their
/// buffers keep their high-water capacity across the whole batch.
pub(crate) struct ScratchPool {
    free: Mutex<Vec<SolveScratch>>,
}

impl ScratchPool {
    pub(crate) fn new() -> ScratchPool {
        ScratchPool {
            free: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn acquire(&self) -> SolveScratch {
        self.free
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    pub(crate) fn release(&self, ws: SolveScratch) {
        self.free.lock().expect("scratch pool poisoned").push(ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, 4, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single_thread() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 3, |x| x);
        assert!(out.is_empty());
        let out = parallel_map(vec![5u32, 6], 0, |x| x + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn pool_runs_batches_in_order_and_is_reusable() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.size(), 3);
        let a = pool.run_batch((0..50u64).collect(), |x| x + 1);
        assert_eq!(a, (1..=50).collect::<Vec<_>>());
        // Same workers, second batch — nothing was torn down in between.
        let b = pool.run_batch((0..10u64).collect(), |x| x * x);
        assert_eq!(b, (0..10u64).map(|x| x * x).collect::<Vec<_>>());
        assert_eq!(pool.panicked_jobs(), 0);
    }

    #[test]
    fn submitted_jobs_complete_before_shutdown() {
        let (tx, rx) = mpsc::channel();
        {
            let pool = WorkerPool::new(2);
            for i in 0..20u32 {
                let tx = tx.clone();
                pool.submit(move || {
                    let _ = tx.send(i);
                });
            }
            // Drop closes the injector and joins: every accepted job must
            // have run by the time the pool is gone.
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_job_is_isolated_and_counted() {
        let pool = WorkerPool::new(2);
        pool.submit(|| panic!("boom"));
        // The pool survives: later batches still run on the same workers.
        let out = pool.run_batch(vec![1u32, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
        assert_eq!(pool.panicked_jobs(), 1);
    }

    #[test]
    fn batch_panic_propagates_to_the_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(vec![0u32, 1, 2, 3], |x| {
                assert!(x != 2, "poisoned item");
                x
            })
        }));
        assert!(result.is_err(), "the job's panic must reach the caller");
        // And the pool is still serviceable afterwards.
        let out = pool.run_batch(vec![7u32], |x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn scratch_pool_recycles() {
        let pool = ScratchPool::new();
        let ws = pool.acquire();
        pool.release(ws);
        let _again = pool.acquire();
        assert!(pool.free.lock().unwrap().is_empty());
    }
}
