//! The multi-tenant request-stream front-end (DESIGN.md §10).
//!
//! [`Engine`] answers *batches*; a deployment receives a *stream*:
//! interleaved solve, frontier and delta requests from many tenants, each
//! with its own λ, arriving faster than any single caller could batch
//! them. [`Service`] is that front door:
//!
//! * **Bounded submission with backpressure** — at most
//!   [`ServiceConfig::queue_capacity`] requests are in flight;
//!   [`Service::submit`] blocks (and counts the stall) until a slot
//!   frees, so a burst degrades into waiting producers instead of
//!   unbounded memory. `try_submit` refuses instead of blocking.
//! * **Per-request λ** — every solve and delta request carries its own
//!   weighting; nothing is globally configured per stream.
//! * **Stateless queries hit the shared engine** — solve/frontier
//!   requests present their instance, `prepare` answers from the sharded
//!   cache (a hot key is one hash + one `Arc` clone), and the solve runs
//!   on whichever service worker picked the request up.
//! * **Stateful delta streams stay FIFO per tenant, parallel across
//!   tenants** — each tenant owns a [`Session`]; deltas enqueue onto the
//!   tenant's pending list *at submission time* (so per-tenant order is
//!   submission order, by construction) and a single drainer per tenant
//!   applies them in that order while other tenants drain on other
//!   workers.
//! * **Exactness is never relaxed** — with [`ServiceConfig::verify`] on,
//!   every answer is cross-checked byte-for-byte against a from-scratch
//!   [`Expanded`]`::solve` (or frontier) of the same instance state and a
//!   mismatch is surfaced as [`ServiceError::VerifyFailed`]. The t12
//!   experiment and the service property suite run with it on before any
//!   timing is believed.
//!
//! ```
//! use hsa_engine::{Engine, EngineConfig, Reply, Request, Service, ServiceConfig, TenantId};
//! use hsa_graph::Lambda;
//! use std::sync::Arc;
//!
//! let sc = hsa_workloads::paper_scenario();
//! let engine = Arc::new(Engine::new(EngineConfig::default()));
//! let service = Service::new(Arc::clone(&engine), ServiceConfig::default());
//!
//! // A stateless solve against the shared cache. The reply carries the
//! // instance id: a hot client keeps it and switches to id-addressed
//! // requests, skipping the per-request hash + equality check entirely.
//! let ticket = service.submit(Request::solve(&sc.tree, &sc.costs, Lambda::HALF));
//! let Reply::Solution { id, solution: sol } = ticket.wait().unwrap() else { panic!() };
//! let ticket = service.submit(Request::solve_by_id(id, Lambda::HALF));
//! let Reply::Solution { solution: again, .. } = ticket.wait().unwrap() else { panic!() };
//! assert_eq!(again.objective, sol.objective);
//!
//! // …and a tenant applying a delta stream to its own session.
//! let tenant = TenantId(7);
//! service.open_tenant(tenant, &sc.tree, &sc.costs).unwrap();
//! let busier = hsa_tree::Delta::new().scale_subtree(sc.tree.root(), 11, 10);
//! let ticket = service.submit(Request::delta(tenant, busier, Lambda::HALF));
//! let Reply::Applied { solution, .. } = ticket.wait().unwrap() else { panic!() };
//! assert!(solution.objective >= sol.objective);
//! ```

use crate::hist::{LatencyHistogram, LatencyStats};
use crate::pad::CachePadded;
use crate::pool::WorkerPool;
use crate::portfolio::{AnytimeAnswer, Portfolio, PortfolioConfig};
use crate::session::{ApplyOutcome, Session, SessionConfig, SessionStats};
use crate::{instance_hash, Engine, EngineError, InstanceId};
use hsa_assign::{
    lambda_frontier_with, AssignError, Expanded, LambdaFrontier, Prepared, Solution, SolveStats,
    Solver,
};
use hsa_graph::Lambda;
use hsa_tree::{CostModel, CruTree, Delta};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// A tenant's identity in the service's session registry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TenantId(pub u64);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Service configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads of the service's own pool (0, the default, means
    /// one per available core).
    pub workers: usize,
    /// Maximum in-flight requests before [`Service::submit`] blocks.
    /// Clamped to ≥ 1.
    pub queue_capacity: usize,
    /// Cross-check every answer against a from-scratch solve of the same
    /// instance state (paranoia mode for tests and the t12 verification
    /// phase — it re-prepares per request, so keep it off timed paths).
    pub verify: bool,
    /// Configuration for tenant [`Session`]s opened through this service.
    pub session: SessionConfig,
    /// Configuration of the anytime racing portfolio behind
    /// [`Request::SolveAnytime`] (arm seeds and its private pool size).
    pub portfolio: PortfolioConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            // Deep enough to keep workers fed through bursts, shallow
            // enough that a stalled consumer surfaces as backpressure
            // rather than as memory growth.
            queue_capacity: 64,
            verify: false,
            session: SessionConfig::default(),
            portfolio: PortfolioConfig::default(),
        }
    }
}

/// Errors a request can come back with.
///
/// Non-exhaustive: the wire protocol ([`crate::net`]) versions this enum,
/// and future schema revisions may add kinds — match with a wildcard arm.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The shared engine rejected the query.
    Engine(EngineError),
    /// A tenant's delta failed to apply (the session is unchanged).
    Apply(AssignError),
    /// A delta request named a tenant that was never opened.
    UnknownTenant(TenantId),
    /// [`Service::open_tenant`] on an already-open tenant.
    TenantExists(TenantId),
    /// Verification mode caught an answer differing from a from-scratch
    /// solve. This is a bug in the service stack, never a user error.
    VerifyFailed {
        /// Which request kind diverged.
        what: &'static str,
    },
    /// [`Service::try_submit`] found the submission queue full.
    Saturated,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Engine(e) => write!(f, "engine: {e}"),
            ServiceError::Apply(e) => write!(f, "delta apply failed: {e}"),
            ServiceError::UnknownTenant(t) => write!(f, "unknown {t}"),
            ServiceError::TenantExists(t) => write!(f, "{t} already open"),
            ServiceError::VerifyFailed { what } => {
                write!(f, "{what} answer diverged from a from-scratch solve")
            }
            ServiceError::Saturated => write!(f, "submission queue full"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            ServiceError::Apply(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

/// One request of the stream. Instances travel as `Arc`s so a hot key in
/// a Zipf-skewed stream costs reference bumps, not tree clones.
///
/// `Request` is the single source of truth for the wire protocol
/// ([`crate::net`] frames carry exactly these payloads), so it is
/// non-exhaustive and all construction goes through the `Request::*`
/// constructors — new request kinds then extend the schema without
/// breaking downstream crates.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum Request {
    /// Solve one instance at one λ through the shared engine cache.
    Solve {
        /// The instance's tree.
        tree: Arc<CruTree>,
        /// Its cost model.
        costs: Arc<CostModel>,
        /// The per-request objective weighting.
        lambda: Lambda,
    },
    /// Solve an already-prepared instance, addressed by id — the hot-client
    /// path: no tree/costs travel with the request, so the worker skips
    /// both the structural hash and the deep equality check of first
    /// contact. An id the engine does not know answers
    /// [`EngineError::UnknownInstance`].
    SolveById {
        /// The id a previous [`Reply`] carried back.
        id: InstanceId,
        /// The per-request objective weighting.
        lambda: Lambda,
    },
    /// The full λ-frontier of one instance.
    Frontier {
        /// The instance's tree.
        tree: Arc<CruTree>,
        /// Its cost model.
        costs: Arc<CostModel>,
    },
    /// The λ-frontier of an already-prepared instance, addressed by id.
    FrontierById {
        /// The id a previous [`Reply`] carried back.
        id: InstanceId,
    },
    /// Apply a delta to a tenant's session, then solve at λ.
    Delta {
        /// Whose session.
        tenant: TenantId,
        /// The perturbation.
        delta: Arc<Delta>,
        /// λ for the post-apply solve.
        lambda: Lambda,
    },
    /// Race the anytime portfolio on one instance at one λ: the first
    /// feasible answer within the budget comes back with a certified
    /// optimality gap ([`hsa_assign::GapCertificate`] via
    /// [`AnytimeAnswer`]),
    /// upgraded to the tight exact answer whenever the exact arm finishes
    /// in time.
    SolveAnytime {
        /// The instance's tree.
        tree: Arc<CruTree>,
        /// Its cost model.
        costs: Arc<CostModel>,
        /// The per-request objective weighting.
        lambda: Lambda,
        /// Answer-by budget in milliseconds (the race returns within this
        /// of its first feasible answer).
        budget_ms: u64,
    },
}

impl Request {
    /// A solve request (clones the instance into `Arc`s once; prefer
    /// building the `Arc`s yourself when re-presenting a hot instance).
    pub fn solve(tree: &CruTree, costs: &CostModel, lambda: Lambda) -> Request {
        Request::Solve {
            tree: Arc::new(tree.clone()),
            costs: Arc::new(costs.clone()),
            lambda,
        }
    }

    /// A solve request addressed by instance id (see
    /// [`Request::SolveById`]): the pattern for hot clients is one
    /// instance-carrying [`Request::solve`] whose [`Reply`] returns the
    /// id, then `solve_by_id` for every re-query.
    pub fn solve_by_id(id: InstanceId, lambda: Lambda) -> Request {
        Request::SolveById { id, lambda }
    }

    /// A frontier request.
    pub fn frontier(tree: &CruTree, costs: &CostModel) -> Request {
        Request::Frontier {
            tree: Arc::new(tree.clone()),
            costs: Arc::new(costs.clone()),
        }
    }

    /// A frontier request addressed by instance id.
    pub fn frontier_by_id(id: InstanceId) -> Request {
        Request::FrontierById { id }
    }

    /// A delta request against an open tenant.
    pub fn delta(tenant: TenantId, delta: Delta, lambda: Lambda) -> Request {
        Request::Delta {
            tenant,
            delta: Arc::new(delta),
            lambda,
        }
    }

    /// [`Request::solve`] for callers that already hold the instance in
    /// `Arc`s — re-presenting a hot instance costs two reference bumps.
    pub fn solve_arc(tree: Arc<CruTree>, costs: Arc<CostModel>, lambda: Lambda) -> Request {
        Request::Solve {
            tree,
            costs,
            lambda,
        }
    }

    /// [`Request::frontier`] from pre-shared `Arc`s.
    pub fn frontier_arc(tree: Arc<CruTree>, costs: Arc<CostModel>) -> Request {
        Request::Frontier { tree, costs }
    }

    /// [`Request::delta`] from a pre-shared `Arc` (a delta replayed to
    /// many tenants travels without cloning its op list).
    pub fn delta_arc(tenant: TenantId, delta: Arc<Delta>, lambda: Lambda) -> Request {
        Request::Delta {
            tenant,
            delta,
            lambda,
        }
    }

    /// An anytime portfolio race (see [`Request::SolveAnytime`]): first
    /// feasible answer within `budget_ms`, carrying a certified gap.
    pub fn solve_anytime(
        tree: &CruTree,
        costs: &CostModel,
        lambda: Lambda,
        budget_ms: u64,
    ) -> Request {
        Request::SolveAnytime {
            tree: Arc::new(tree.clone()),
            costs: Arc::new(costs.clone()),
            lambda,
            budget_ms,
        }
    }

    /// [`Request::solve_anytime`] from pre-shared `Arc`s.
    pub fn solve_anytime_arc(
        tree: Arc<CruTree>,
        costs: Arc<CostModel>,
        lambda: Lambda,
        budget_ms: u64,
    ) -> Request {
        Request::SolveAnytime {
            tree,
            costs,
            lambda,
            budget_ms,
        }
    }
}

/// A fulfilled request.
///
/// Non-exhaustive for the same reason as [`Request`]: replies are wire
/// frames, and the schema may grow. Prefer the uniform accessors
/// ([`Reply::solution`], [`Reply::frontier`], [`Reply::outcome`],
/// [`Reply::instance_id`] — and [`AnswerExt`] on the `Result` a
/// [`Ticket::wait`] returns) over exhaustive matching.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum Reply {
    /// The solve answer (byte-identical to a fresh `Expanded::solve`).
    /// Carries the instance id so a first-contact client can switch to
    /// [`Request::solve_by_id`] for every subsequent query.
    Solution {
        /// The solved instance's id in the engine cache.
        id: InstanceId,
        /// The solution.
        solution: Solution,
    },
    /// The λ-frontier, with the instance id for id-addressed re-queries.
    Frontier {
        /// The instance's id in the engine cache.
        id: InstanceId,
        /// The λ-frontier.
        frontier: LambdaFrontier,
    },
    /// A delta landed on its tenant; the post-apply solve rides along.
    Applied {
        /// What the apply did (dirty colours, fallback or not).
        outcome: ApplyOutcome,
        /// The post-apply solution at the request's λ.
        solution: Solution,
    },
    /// The anytime race's answer: best solution within budget, its
    /// certified gap, and which arm won. Carries the instance id (the
    /// engine cache holds the instance whenever the exact arm finished,
    /// so a follow-up [`Request::solve_by_id`] is then a pure cache hit).
    Anytime {
        /// The instance's id (cached iff `answer.exact_finished`).
        id: InstanceId,
        /// The race's answer.
        answer: AnytimeAnswer,
    },
}

impl Reply {
    /// The solution carried by this reply, if it is one.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            Reply::Solution { solution, .. } => Some(solution),
            Reply::Applied { solution, .. } => Some(solution),
            Reply::Anytime { answer, .. } => Some(&answer.solution),
            _ => None,
        }
    }

    /// The anytime answer (solution + certificate + winning arm), if this
    /// reply fulfils a [`Request::SolveAnytime`].
    pub fn anytime(&self) -> Option<&AnytimeAnswer> {
        match self {
            Reply::Anytime { answer, .. } => Some(answer),
            _ => None,
        }
    }

    /// The instance id this reply reports, for stateless requests — what a
    /// hot client feeds back into [`Request::solve_by_id`] /
    /// [`Request::frontier_by_id`]. Tenant (delta) replies address their
    /// session, not the shared cache, so they carry no id.
    pub fn instance_id(&self) -> Option<InstanceId> {
        match self {
            Reply::Solution { id, .. } | Reply::Frontier { id, .. } | Reply::Anytime { id, .. } => {
                Some(*id)
            }
            _ => None,
        }
    }

    /// The λ-frontier carried by this reply, if it is one.
    pub fn frontier(&self) -> Option<&LambdaFrontier> {
        match self {
            Reply::Frontier { frontier, .. } => Some(frontier),
            _ => None,
        }
    }

    /// What a delta apply did, if this reply answers one.
    pub fn outcome(&self) -> Option<&ApplyOutcome> {
        match self {
            Reply::Applied { outcome, .. } => Some(outcome),
            _ => None,
        }
    }
}

/// Uniform accessors over a whole answer — the `Result<Reply,
/// ServiceError>` a [`Ticket::wait`] (or a remote
/// [`crate::net::Client`] call) hands back. Collapses the two-level
/// `Result`/enum match into one `Option` probe per payload kind:
///
/// ```
/// use hsa_engine::{AnswerExt, Engine, EngineConfig, Request, Service, ServiceConfig};
/// use hsa_graph::Lambda;
/// use std::sync::Arc;
///
/// let sc = hsa_workloads::paper_scenario();
/// let engine = Arc::new(Engine::new(EngineConfig::default()));
/// let service = Service::new(engine, ServiceConfig::default());
/// let answer = service.submit(Request::solve(&sc.tree, &sc.costs, Lambda::HALF)).wait();
/// assert!(answer.error().is_none());
/// let objective = answer.solution().expect("solve answers a solution").objective;
/// # let _ = objective;
/// ```
pub trait AnswerExt {
    /// The solution, if the answer succeeded with one.
    fn solution(&self) -> Option<&Solution>;
    /// The λ-frontier, if the answer succeeded with one.
    fn frontier(&self) -> Option<&LambdaFrontier>;
    /// The apply outcome, if the answer is a fulfilled delta.
    fn outcome(&self) -> Option<&ApplyOutcome>;
    /// The anytime answer, if the answer fulfils a portfolio race.
    fn anytime(&self) -> Option<&AnytimeAnswer>;
    /// The instance id for id-addressed re-queries, if one was reported.
    fn instance_id(&self) -> Option<InstanceId>;
    /// The error, if the request failed.
    fn error(&self) -> Option<&ServiceError>;
}

impl AnswerExt for Result<Reply, ServiceError> {
    fn solution(&self) -> Option<&Solution> {
        self.as_ref().ok().and_then(Reply::solution)
    }

    fn frontier(&self) -> Option<&LambdaFrontier> {
        self.as_ref().ok().and_then(Reply::frontier)
    }

    fn outcome(&self) -> Option<&ApplyOutcome> {
        self.as_ref().ok().and_then(Reply::outcome)
    }

    fn anytime(&self) -> Option<&AnytimeAnswer> {
        self.as_ref().ok().and_then(Reply::anytime)
    }

    fn instance_id(&self) -> Option<InstanceId> {
        self.as_ref().ok().and_then(Reply::instance_id)
    }

    fn error(&self) -> Option<&ServiceError> {
        self.as_ref().err()
    }
}

/// A completion callback an event loop registers instead of blocking a
/// thread on [`Ticket::wait`].
type Waker = Box<dyn FnOnce(Result<Reply, ServiceError>) + Send>;

/// What a [`ReplySlot`] holds: the answer once fulfilled, or a waker to
/// hand the answer to the moment it lands.
#[derive(Default)]
struct SlotState {
    result: Option<Result<Reply, ServiceError>>,
    waker: Option<Waker>,
}

/// The slot a worker fulfils and a [`Ticket`] waits on.
struct ReplySlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<ReplySlot> {
        Arc::new(ReplySlot {
            state: Mutex::new(SlotState::default()),
            cv: Condvar::new(),
        })
    }

    fn fulfill(&self, result: Result<Reply, ServiceError>) {
        let mut state = self.state.lock().expect("reply slot poisoned");
        debug_assert!(
            state.result.is_none(),
            "a reply slot is fulfilled exactly once"
        );
        if let Some(waker) = state.waker.take() {
            // Hand the answer to the registered callback — outside the
            // lock, because the waker may do arbitrary work (e.g. wake a
            // reactor thread).
            drop(state);
            waker(result);
            return;
        }
        state.result = Some(result);
        drop(state);
        self.cv.notify_all();
    }
}

/// A claim on one submitted request's answer.
#[must_use = "a ticket does nothing until waited on"]
pub struct Ticket {
    slot: Arc<ReplySlot>,
}

impl Ticket {
    /// Blocks until the request is answered.
    pub fn wait(self) -> Result<Reply, ServiceError> {
        let mut state = self.slot.state.lock().expect("reply slot poisoned");
        loop {
            if let Some(result) = state.result.take() {
                return result;
            }
            state = self.slot.cv.wait(state).expect("reply slot poisoned");
        }
    }

    /// Registers a completion callback instead of blocking: `f` runs
    /// exactly once with the answer — immediately on this thread if the
    /// request already finished, otherwise later on the worker thread
    /// that fulfils it (after the gate slot has been released, so a
    /// callback that resubmits can find room). This is how the net
    /// reactor routes completions back to the connection's owner without
    /// parking a thread per in-flight request.
    pub fn on_ready(self, f: impl FnOnce(Result<Reply, ServiceError>) + Send + 'static) {
        let mut state = self.slot.state.lock().expect("reply slot poisoned");
        if let Some(result) = state.result.take() {
            drop(state);
            f(result);
            return;
        }
        state.waker = Some(Box::new(f));
    }
}

/// The in-flight gate: a counting semaphore bounding accepted-but-
/// unanswered requests.
struct Gate {
    capacity: usize,
    inflight: Mutex<usize>,
    freed: Condvar,
    waits: AtomicU64,
}

impl Gate {
    fn new(capacity: usize) -> Gate {
        Gate {
            capacity: capacity.max(1),
            inflight: Mutex::new(0),
            freed: Condvar::new(),
            waits: AtomicU64::new(0),
        }
    }

    /// Blocks until a slot frees, then takes it.
    fn acquire(&self) {
        let mut n = self.inflight.lock().expect("gate poisoned");
        if *n >= self.capacity {
            self.waits.fetch_add(1, Ordering::Relaxed);
            while *n >= self.capacity {
                n = self.freed.wait(n).expect("gate poisoned");
            }
        }
        *n += 1;
    }

    /// Takes a slot only if one is free right now.
    fn try_acquire(&self) -> bool {
        let mut n = self.inflight.lock().expect("gate poisoned");
        if *n >= self.capacity {
            return false;
        }
        *n += 1;
        true
    }

    fn release(&self) {
        let mut n = self.inflight.lock().expect("gate poisoned");
        debug_assert!(*n > 0, "release without acquire");
        *n = n.saturating_sub(1);
        drop(n);
        self.freed.notify_one();
    }
}

/// The request kinds the service tracks separately — counter and
/// latency-histogram selector.
#[derive(Clone, Copy)]
enum ReqKind {
    Solve,
    Frontier,
    Delta,
    Anytime,
}

/// Live request counters; snapshot via [`Service::stats`]. Bumped from
/// every worker on every request, so each counter sits on its own cache
/// line ([`CachePadded`]) — unpadded, the whole bank shares one line and
/// concurrent requests serialise on it for no semantic reason.
#[derive(Default)]
struct ServiceCounters {
    submitted: CachePadded<AtomicU64>,
    completed: CachePadded<AtomicU64>,
    failed: CachePadded<AtomicU64>,
    solves: CachePadded<AtomicU64>,
    frontiers: CachePadded<AtomicU64>,
    deltas: CachePadded<AtomicU64>,
    anytimes: CachePadded<AtomicU64>,
}

/// A snapshot of the service's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted by `submit`/`try_submit`.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Solve requests answered (success or failure).
    pub solves: u64,
    /// Frontier requests answered.
    pub frontiers: u64,
    /// Delta requests answered.
    pub deltas: u64,
    /// Anytime (portfolio race) requests answered.
    pub anytimes: u64,
    /// `submit` calls that had to block on a full queue (backpressure).
    pub backpressure_waits: u64,
    /// Per-request-kind latency percentiles (accepted → answered).
    pub latency: RequestLatency,
}

/// Per-request-kind latency summaries, measured from acceptance (the
/// in-flight gate slot is taken) to the reply being fulfilled — so a
/// delta's wait in its tenant's FIFO queue counts, but a producer
/// blocking on backpressure does not.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestLatency {
    /// Solve requests.
    pub solve: LatencyStats,
    /// Frontier requests.
    pub frontier: LatencyStats,
    /// Delta requests.
    pub delta: LatencyStats,
    /// Anytime (portfolio race) requests.
    pub anytime: LatencyStats,
}

/// One tenant. The submission side (`queue`) and the solving side
/// (`session`) are separate locks on purpose: pushing a delta onto the
/// pending list must never wait behind an in-flight apply+solve, or
/// "submission order" would degrade into "solve-completion order" and
/// open-loop submitters would stall on busy tenants.
struct Tenant {
    /// Pending deltas + the single-drainer flag. Held only for queue
    /// pushes/pops — never across a solve.
    queue: Mutex<TenantQueue>,
    /// The session. During a drain only the (single) drainer locks it
    /// per item; stats/costs snapshots wait at most one apply.
    session: Mutex<Session>,
}

struct TenantQueue {
    /// `(delta, λ, reply slot, acceptance time)` in submission order; the
    /// `Instant` rides along so a delta's latency includes its FIFO wait.
    pending: VecDeque<(Arc<Delta>, Lambda, Arc<ReplySlot>, Instant)>,
    /// True while some worker owns the drain loop for this tenant; at
    /// most one drainer exists at a time, which is what serialises a
    /// tenant's deltas without serialising tenants against each other.
    draining: bool,
}

/// Everything a request job needs, bundled once per service.
struct Shared {
    engine: Arc<Engine>,
    /// The anytime racing portfolio (its own small pool; feeds exact
    /// results back into `engine`'s cache).
    portfolio: Portfolio,
    gate: Gate,
    counters: ServiceCounters,
    lat_solve: LatencyHistogram,
    lat_frontier: LatencyHistogram,
    lat_delta: LatencyHistogram,
    lat_anytime: LatencyHistogram,
    verify: bool,
}

impl Shared {
    fn latency_of(&self, kind: ReqKind) -> &LatencyHistogram {
        match kind {
            ReqKind::Solve => &self.lat_solve,
            ReqKind::Frontier => &self.lat_frontier,
            ReqKind::Delta => &self.lat_delta,
            ReqKind::Anytime => &self.lat_anytime,
        }
    }

    fn counter_of(&self, kind: ReqKind) -> &AtomicU64 {
        match kind {
            ReqKind::Solve => &self.counters.solves,
            ReqKind::Frontier => &self.counters.frontiers,
            ReqKind::Delta => &self.counters.deltas,
            ReqKind::Anytime => &self.counters.anytimes,
        }
    }
}

/// The request-stream front-end. See the module docs.
pub struct Service {
    /// Declared first so it drops first: dropping the pool closes the
    /// injector, drains every accepted request and joins the workers, so
    /// no ticket is ever left unanswered. (Jobs own `Arc` clones of
    /// everything below, so the order is belt-and-braces, not
    /// load-bearing — keep it anyway.)
    pool: WorkerPool,
    shared: Arc<Shared>,
    tenants: RwLock<BTreeMap<TenantId, Arc<Tenant>>>,
    cfg: ServiceConfig,
}

impl Service {
    /// Builds a service over a shared engine, spawning its worker pool.
    pub fn new(engine: Arc<Engine>, cfg: ServiceConfig) -> Service {
        Service {
            pool: WorkerPool::new(cfg.workers),
            shared: Arc::new(Shared {
                portfolio: Portfolio::new(Arc::clone(&engine), cfg.portfolio),
                engine,
                gate: Gate::new(cfg.queue_capacity),
                counters: ServiceCounters::default(),
                lat_solve: LatencyHistogram::new(),
                lat_frontier: LatencyHistogram::new(),
                lat_delta: LatencyHistogram::new(),
                lat_anytime: LatencyHistogram::new(),
                verify: cfg.verify,
            }),
            tenants: RwLock::new(BTreeMap::new()),
            cfg,
        }
    }

    /// The engine this service answers from.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// The anytime racing portfolio behind [`Request::SolveAnytime`] —
    /// exposed so tests (and operators) can observe arm drain via
    /// [`Portfolio::pending_arms`].
    pub fn portfolio(&self) -> &Portfolio {
        &self.shared.portfolio
    }

    /// The effective worker count.
    pub fn workers(&self) -> usize {
        self.pool.size()
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Opens a tenant session on the given instance (full preparation +
    /// frontier DP, paid once).
    pub fn open_tenant(
        &self,
        tenant: TenantId,
        tree: &CruTree,
        costs: &CostModel,
    ) -> Result<(), ServiceError> {
        // Probe before building: a duplicate open is a plain user error
        // and must not pay (and then discard) the whole preparation.
        if self
            .tenants
            .read()
            .expect("tenant registry poisoned")
            .contains_key(&tenant)
        {
            return Err(ServiceError::TenantExists(tenant));
        }
        let session = Session::new(tree, costs, self.cfg.session).map_err(ServiceError::Apply)?;
        let mut tenants = self.tenants.write().expect("tenant registry poisoned");
        // Re-check under the write lock: a racing open may have won.
        if tenants.contains_key(&tenant) {
            return Err(ServiceError::TenantExists(tenant));
        }
        tenants.insert(
            tenant,
            Arc::new(Tenant {
                queue: Mutex::new(TenantQueue {
                    pending: VecDeque::new(),
                    draining: false,
                }),
                session: Mutex::new(session),
            }),
        );
        Ok(())
    }

    /// Closes a tenant, returning its session counters **as of this
    /// moment**. Deltas already queued still complete and resolve their
    /// tickets (the drainer holds its own handle) but are not reflected
    /// in the returned snapshot — wait on their tickets first if the
    /// counters must include them. Later submissions answer
    /// [`ServiceError::UnknownTenant`].
    pub fn close_tenant(&self, tenant: TenantId) -> Result<SessionStats, ServiceError> {
        let removed = self
            .tenants
            .write()
            .expect("tenant registry poisoned")
            .remove(&tenant)
            .ok_or(ServiceError::UnknownTenant(tenant))?;
        let stats = removed
            .session
            .lock()
            .expect("tenant session poisoned")
            .stats();
        Ok(stats)
    }

    /// A tenant's session counters, if it is open.
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<SessionStats> {
        let t = self
            .tenants
            .read()
            .expect("tenant registry poisoned")
            .get(&tenant)
            .cloned()?;
        let stats = t.session.lock().expect("tenant session poisoned").stats();
        Some(stats)
    }

    /// A snapshot of a tenant's current (drifted) cost model, if it is
    /// open — what a replay asserts its delta stream drifted into.
    pub fn tenant_costs(&self, tenant: TenantId) -> Option<CostModel> {
        let t = self
            .tenants
            .read()
            .expect("tenant registry poisoned")
            .get(&tenant)
            .cloned()?;
        let costs = t
            .session
            .lock()
            .expect("tenant session poisoned")
            .costs()
            .clone();
        Some(costs)
    }

    /// Open tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.read().expect("tenant registry poisoned").len()
    }

    /// A snapshot of the request counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServiceStats {
            submitted: load(&c.submitted),
            completed: load(&c.completed),
            failed: load(&c.failed),
            solves: load(&c.solves),
            frontiers: load(&c.frontiers),
            deltas: load(&c.deltas),
            anytimes: load(&c.anytimes),
            backpressure_waits: self.shared.gate.waits.load(Ordering::Relaxed),
            latency: RequestLatency {
                solve: self.shared.lat_solve.snapshot().stats(),
                frontier: self.shared.lat_frontier.snapshot().stats(),
                delta: self.shared.lat_delta.snapshot().stats(),
                anytime: self.shared.lat_anytime.snapshot().stats(),
            },
        }
    }

    /// Submits a request, blocking while the in-flight queue is at
    /// capacity (backpressure). The returned [`Ticket`] resolves once a
    /// worker answered.
    pub fn submit(&self, request: Request) -> Ticket {
        self.shared.gate.acquire();
        self.dispatch(request)
    }

    /// Like [`Service::submit`], but refuses with
    /// [`ServiceError::Saturated`] instead of blocking when the queue is
    /// full.
    pub fn try_submit(&self, request: Request) -> Result<Ticket, ServiceError> {
        if !self.shared.gate.try_acquire() {
            return Err(ServiceError::Saturated);
        }
        Ok(self.dispatch(request))
    }

    /// Routes one accepted request (the gate slot is already held and is
    /// released by whoever fulfils the reply).
    fn dispatch(&self, request: Request) -> Ticket {
        let shared = &self.shared;
        let accepted = Instant::now();
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let slot = ReplySlot::new();
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        match request {
            Request::Solve {
                tree,
                costs,
                lambda,
            } => {
                let shared = Arc::clone(shared);
                self.pool.submit(move || {
                    let result = handle_solve(&shared, &tree, &costs, lambda);
                    finish(&shared, ReqKind::Solve, accepted, &slot, result);
                });
            }
            Request::SolveById { id, lambda } => {
                let shared = Arc::clone(shared);
                self.pool.submit(move || {
                    let result = handle_solve_by_id(&shared, id, lambda);
                    finish(&shared, ReqKind::Solve, accepted, &slot, result);
                });
            }
            Request::Frontier { tree, costs } => {
                let shared = Arc::clone(shared);
                self.pool.submit(move || {
                    let result = handle_frontier(&shared, &tree, &costs);
                    finish(&shared, ReqKind::Frontier, accepted, &slot, result);
                });
            }
            Request::FrontierById { id } => {
                let shared = Arc::clone(shared);
                self.pool.submit(move || {
                    let result = handle_frontier_by_id(&shared, id);
                    finish(&shared, ReqKind::Frontier, accepted, &slot, result);
                });
            }
            Request::SolveAnytime {
                tree,
                costs,
                lambda,
                budget_ms,
            } => {
                let shared = Arc::clone(shared);
                self.pool.submit(move || {
                    let result = handle_solve_anytime(&shared, &tree, &costs, lambda, budget_ms);
                    finish(&shared, ReqKind::Anytime, accepted, &slot, result);
                });
            }
            Request::Delta {
                tenant,
                delta,
                lambda,
            } => {
                let Some(slot_tenant) = self
                    .tenants
                    .read()
                    .expect("tenant registry poisoned")
                    .get(&tenant)
                    .cloned()
                else {
                    finish(
                        shared,
                        ReqKind::Delta,
                        accepted,
                        &slot,
                        Err(ServiceError::UnknownTenant(tenant)),
                    );
                    return ticket;
                };
                // Enqueue *here*, on the submitting thread: per-tenant
                // order is submission order by construction, regardless of
                // which workers later run the drain. The queue lock is
                // never held across a solve, so this push cannot stall
                // behind a busy tenant's in-flight apply.
                let start_drain = {
                    let mut q = slot_tenant.queue.lock().expect("tenant queue poisoned");
                    q.pending.push_back((delta, lambda, slot, accepted));
                    if q.draining {
                        false
                    } else {
                        q.draining = true;
                        true
                    }
                };
                if start_drain {
                    let shared = Arc::clone(shared);
                    self.pool
                        .submit(move || drain_tenant(&shared, &slot_tenant));
                }
            }
        }
        ticket
    }
}

/// Fulfils a reply, releases the gate slot, counts the outcome and
/// records the accepted→answered latency — the one funnel every answered
/// request goes through. Counters and the histogram are updated *before*
/// the slot is fulfilled, so a caller that waited a ticket observes its
/// own request in [`Service::stats`]. The gate slot is released *before*
/// the slot is fulfilled, so a [`Ticket::on_ready`] callback that
/// immediately resubmits a parked request can find the room this answer
/// just freed.
fn finish(
    shared: &Shared,
    kind: ReqKind,
    accepted: Instant,
    slot: &ReplySlot,
    result: Result<Reply, ServiceError>,
) {
    shared.counter_of(kind).fetch_add(1, Ordering::Relaxed);
    let bucket = if result.is_ok() {
        &shared.counters.completed
    } else {
        &shared.counters.failed
    };
    bucket.fetch_add(1, Ordering::Relaxed);
    shared.latency_of(kind).record_duration(accepted.elapsed());
    shared.gate.release();
    slot.fulfill(result);
}

fn handle_solve(
    shared: &Shared,
    tree: &CruTree,
    costs: &CostModel,
    lambda: Lambda,
) -> Result<Reply, ServiceError> {
    let id = shared.engine.prepare(tree, costs)?;
    let solution = shared
        .engine
        .solve_batch(&[(id, lambda)])
        .pop()
        .expect("one query, one answer")?;
    if shared.verify {
        verify_solve(tree, costs, lambda, &solution)?;
    }
    Ok(Reply::Solution { id, solution })
}

fn handle_solve_by_id(
    shared: &Shared,
    id: InstanceId,
    lambda: Lambda,
) -> Result<Reply, ServiceError> {
    let solution = shared
        .engine
        .solve_batch(&[(id, lambda)])
        .pop()
        .expect("one query, one answer")?;
    if shared.verify {
        // The id proves prior contact (the first-contact equality check
        // already ran), so the cached instance *is* the instance to
        // re-derive from scratch.
        let cached = shared
            .engine
            .instance(id)
            .ok_or(EngineError::UnknownInstance { id })?;
        verify_solve(
            &cached.prepared.tree,
            &cached.prepared.costs,
            lambda,
            &solution,
        )?;
    }
    Ok(Reply::Solution { id, solution })
}

fn handle_solve_anytime(
    shared: &Shared,
    tree: &CruTree,
    costs: &CostModel,
    lambda: Lambda,
    budget_ms: u64,
) -> Result<Reply, ServiceError> {
    let outcome =
        shared
            .portfolio
            .solve_anytime(tree, costs, lambda, Duration::from_millis(budget_ms))?;
    let answer = outcome.answer;
    let id = InstanceId::from_raw(instance_hash(tree, costs));
    if shared.verify {
        if answer.exact_finished {
            // A finished exact arm claims the canonical answer: it must be
            // byte-identical to a from-scratch solve, with a tight
            // certificate sitting exactly on the optimum.
            verify_solve(tree, costs, lambda, &answer.solution)?;
            if !answer.certificate.is_tight()
                || answer.certificate.upper != answer.solution.objective
            {
                return Err(ServiceError::VerifyFailed { what: "anytime" });
            }
        } else {
            // A heuristic incumbent: re-evaluate its cut from scratch (the
            // objective must be the cut's true cost, not a stale fitness)
            // and check the certificate brackets it.
            let prep = Prepared::new(tree, costs).map_err(EngineError::from)?;
            let re = Solution::from_cut(
                &prep,
                answer.solution.cut.clone(),
                lambda,
                SolveStats::default(),
            )
            .map_err(EngineError::from)?;
            if re.objective != answer.solution.objective
                || answer.certificate.upper != answer.solution.objective
                || answer.certificate.lower > answer.certificate.upper
            {
                return Err(ServiceError::VerifyFailed { what: "anytime" });
            }
        }
    }
    Ok(Reply::Anytime { id, answer })
}

/// Verify-mode cross-check: a from-scratch preparation and `Expanded`
/// solve of the same instance state must agree byte-for-byte.
fn verify_solve(
    tree: &CruTree,
    costs: &CostModel,
    lambda: Lambda,
    solution: &Solution,
) -> Result<(), ServiceError> {
    let prep = Prepared::new(tree, costs).map_err(EngineError::from)?;
    let want = Expanded::default()
        .solve(&prep, lambda)
        .map_err(EngineError::from)?;
    if want.objective != solution.objective || want.cut != solution.cut {
        return Err(ServiceError::VerifyFailed { what: "solve" });
    }
    Ok(())
}

fn handle_frontier(
    shared: &Shared,
    tree: &CruTree,
    costs: &CostModel,
) -> Result<Reply, ServiceError> {
    let id = shared.engine.prepare(tree, costs)?;
    let frontier = shared.engine.frontier(id)?;
    if shared.verify {
        verify_frontier(shared, id, &frontier)?;
    }
    Ok(Reply::Frontier { id, frontier })
}

fn handle_frontier_by_id(shared: &Shared, id: InstanceId) -> Result<Reply, ServiceError> {
    let frontier = shared.engine.frontier(id)?;
    if shared.verify {
        verify_frontier(shared, id, &frontier)?;
    }
    Ok(Reply::Frontier { id, frontier })
}

/// Verify-mode cross-check for frontiers: re-derives the instance's
/// `Prepared` from scratch and rebuilds the envelope over the *cached*
/// per-colour frontiers. The λ-independent frontier DP is content-hash
/// keyed and immutable once cached, so re-running `FrontierSet::prepare`
/// per verified request (as this path used to) re-checked nothing the
/// equality check had not already pinned — it only put an O(instance)
/// rebuild on every request.
fn verify_frontier(
    shared: &Shared,
    id: InstanceId,
    frontier: &LambdaFrontier,
) -> Result<(), ServiceError> {
    let cached = shared
        .engine
        .instance(id)
        .ok_or(EngineError::UnknownInstance { id })?;
    let prep =
        Prepared::new(&cached.prepared.tree, &cached.prepared.costs).map_err(EngineError::from)?;
    let want = lambda_frontier_with(&prep, &cached.frontiers).map_err(EngineError::from)?;
    let agrees = want.breakpoints() == frontier.breakpoints()
        && [Lambda::ZERO, Lambda::HALF, Lambda::ONE]
            .iter()
            .all(|&l| want.objective_at(l) == frontier.objective_at(l));
    if !agrees {
        return Err(ServiceError::VerifyFailed { what: "frontier" });
    }
    Ok(())
}

/// The single-drainer loop: pops this tenant's pending deltas in
/// submission order until the queue is empty, then yields the drainer
/// role. Runs on whatever worker picked the job up; other tenants drain
/// concurrently on other workers. The queue lock is released before each
/// apply+solve (the `draining` flag already guarantees a single drainer),
/// so submitters keep enqueueing at full speed while this tenant solves.
fn drain_tenant(shared: &Shared, tenant: &Tenant) {
    loop {
        let next = {
            let mut q = tenant.queue.lock().expect("tenant queue poisoned");
            match q.pending.pop_front() {
                Some(item) => item,
                None => {
                    // Yield the drainer role *under the queue lock*: a
                    // submitter either sees `draining` still true (its
                    // item was popped above, or will be by the next
                    // iteration) or false (it schedules a fresh drain) —
                    // no item can be stranded in between.
                    q.draining = false;
                    return;
                }
            }
        };
        let (delta, lambda, slot, accepted) = next;
        let result = {
            let mut session = tenant.session.lock().expect("tenant session poisoned");
            apply_and_solve(shared, &mut session, &delta, lambda)
        };
        finish(shared, ReqKind::Delta, accepted, &slot, result);
    }
}

fn apply_and_solve(
    shared: &Shared,
    session: &mut Session,
    delta: &Delta,
    lambda: Lambda,
) -> Result<Reply, ServiceError> {
    let outcome = session.apply(delta).map_err(ServiceError::Apply)?;
    let solution = session.solve(lambda).map_err(ServiceError::Apply)?;
    if shared.verify {
        let prep = Prepared::new(&session.prepared().tree, session.costs())
            .map_err(ServiceError::Apply)?;
        let want = Expanded::default()
            .solve(&prep, lambda)
            .map_err(ServiceError::Apply)?;
        if want.objective != solution.objective || want.cut != solution.cut {
            return Err(ServiceError::VerifyFailed { what: "delta" });
        }
    }
    Ok(Reply::Applied { outcome, solution })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use hsa_workloads::paper_scenario;

    fn service(cfg: ServiceConfig) -> Service {
        Service::new(Arc::new(Engine::new(EngineConfig::default())), cfg)
    }

    #[test]
    fn solve_and_frontier_round_trip() {
        let sc = paper_scenario();
        let svc = service(ServiceConfig {
            verify: true,
            workers: 2,
            ..ServiceConfig::default()
        });
        let solve = svc.submit(Request::solve(&sc.tree, &sc.costs, Lambda::HALF));
        let frontier = svc.submit(Request::frontier(&sc.tree, &sc.costs));
        let Reply::Solution { id, solution: sol } = solve.wait().unwrap() else {
            panic!("expected a solution");
        };
        let Reply::Frontier {
            id: fid,
            frontier: fr,
        } = frontier.wait().unwrap()
        else {
            panic!("expected a frontier");
        };
        assert_eq!(id, fid, "one instance, one id");
        assert_eq!(fr.objective_at(Lambda::HALF), sol.objective);
        let stats = svc.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!((stats.solves, stats.frontiers, stats.failed), (1, 1, 0));
    }

    #[test]
    fn id_addressed_requests_round_trip_under_verify() {
        let sc = paper_scenario();
        let svc = service(ServiceConfig {
            verify: true,
            workers: 2,
            ..ServiceConfig::default()
        });
        let first = svc
            .submit(Request::solve(&sc.tree, &sc.costs, Lambda::HALF))
            .wait()
            .unwrap();
        let id = first.instance_id().unwrap();
        let sol = first.solution().unwrap();
        // Re-query by id at several λ: byte-identical to instance-carrying
        // requests, without shipping the instance again.
        for n in 0..=4u32 {
            let lambda = Lambda::new(n, 4).unwrap();
            let by_id = svc.submit(Request::solve_by_id(id, lambda)).wait().unwrap();
            let by_value = svc
                .submit(Request::solve(&sc.tree, &sc.costs, lambda))
                .wait()
                .unwrap();
            assert_eq!(by_id.instance_id(), Some(id));
            let (a, b) = (by_id.solution().unwrap(), by_value.solution().unwrap());
            assert_eq!(a.objective, b.objective);
            assert_eq!(a.cut, b.cut);
        }
        let Reply::Frontier { id: fid, frontier } =
            svc.submit(Request::frontier_by_id(id)).wait().unwrap()
        else {
            panic!("expected a frontier");
        };
        assert_eq!(fid, id);
        assert_eq!(frontier.objective_at(Lambda::HALF), sol.objective);
    }

    #[test]
    fn unknown_instance_id_is_an_error() {
        let svc = service(ServiceConfig::default());
        let bogus = crate::InstanceId::from_raw(0xdead_beef);
        let t = svc.submit(Request::solve_by_id(bogus, Lambda::HALF));
        assert!(matches!(
            t.wait(),
            Err(ServiceError::Engine(EngineError::UnknownInstance { id })) if id == bogus
        ));
        let t = svc.submit(Request::frontier_by_id(bogus));
        assert!(matches!(
            t.wait(),
            Err(ServiceError::Engine(EngineError::UnknownInstance { .. }))
        ));
    }

    #[test]
    fn tenant_deltas_apply_in_submission_order() {
        let sc = paper_scenario();
        let svc = service(ServiceConfig {
            verify: true,
            workers: 2,
            ..ServiceConfig::default()
        });
        let tenant = TenantId(1);
        svc.open_tenant(tenant, &sc.tree, &sc.costs).unwrap();
        let leaf = *sc.tree.leaves_in_order().first().unwrap();
        let tickets: Vec<Ticket> = (1..=6u64)
            .map(|step| {
                let delta =
                    Delta::new().set_satellite_time(leaf, hsa_graph::Cost::new(100 + 37 * step));
                svc.submit(Request::delta(tenant, delta, Lambda::HALF))
            })
            .collect();
        for t in tickets {
            let Reply::Applied { .. } = t.wait().unwrap() else {
                panic!("expected an apply outcome");
            };
        }
        let stats = svc.tenant_stats(tenant).unwrap();
        assert_eq!(stats.applies, 6);
        assert_eq!(svc.stats().deltas, 6);
        let closed = svc.close_tenant(tenant).unwrap();
        assert_eq!(closed.applies, 6);
        assert_eq!(svc.tenant_count(), 0);
    }

    #[test]
    fn unknown_and_duplicate_tenants_are_errors() {
        let sc = paper_scenario();
        let svc = service(ServiceConfig::default());
        let t = svc.submit(Request::delta(TenantId(9), Delta::new(), Lambda::HALF));
        assert!(matches!(
            t.wait(),
            Err(ServiceError::UnknownTenant(TenantId(9)))
        ));
        svc.open_tenant(TenantId(3), &sc.tree, &sc.costs).unwrap();
        assert_eq!(
            svc.open_tenant(TenantId(3), &sc.tree, &sc.costs),
            Err(ServiceError::TenantExists(TenantId(3)))
        );
        assert_eq!(
            svc.close_tenant(TenantId(9)),
            Err(ServiceError::UnknownTenant(TenantId(9)))
        );
    }

    #[test]
    fn try_submit_refuses_when_saturated() {
        let sc = paper_scenario();
        // One worker, one slot: occupy the slot with a held ticket, then
        // try_submit must refuse rather than block.
        let svc = service(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        // Saturate: the gate admits one request; whether it is mid-solve
        // or queued does not matter, the slot is taken until answered.
        let first = svc.submit(Request::solve(&sc.tree, &sc.costs, Lambda::HALF));
        let mut refused = 0;
        let second = loop {
            match svc.try_submit(Request::solve(&sc.tree, &sc.costs, Lambda::ZERO)) {
                Ok(t) => break t,
                Err(ServiceError::Saturated) => refused += 1,
                Err(other) => panic!("unexpected refusal: {other}"),
            }
            std::thread::yield_now();
        };
        assert!(first.wait().is_ok());
        assert!(second.wait().is_ok());
        // The refusal count is timing-dependent but the *accounting* is
        // exact: exactly two requests were ever accepted.
        assert_eq!(svc.stats().submitted, 2);
        let _ = refused;
    }

    #[test]
    fn backpressure_blocks_and_is_counted() {
        let sc = paper_scenario();
        let svc = Arc::new(service(ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServiceConfig::default()
        }));
        let tickets: Vec<Ticket> = (0..8u32)
            .map(|n| {
                svc.submit(Request::solve(
                    &sc.tree,
                    &sc.costs,
                    Lambda::new(n, 8).unwrap(),
                ))
            })
            .collect();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let stats = svc.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        assert!(
            stats.backpressure_waits > 0,
            "8 submissions through a 2-deep queue must stall at least once"
        );
    }

    #[test]
    fn latency_percentiles_cover_every_answered_request() {
        let sc = paper_scenario();
        let svc = service(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let tenant = TenantId(1);
        svc.open_tenant(tenant, &sc.tree, &sc.costs).unwrap();
        let leaf = *sc.tree.leaves_in_order().first().unwrap();
        let tickets: Vec<Ticket> = (0..4u64)
            .flat_map(|n| {
                let delta =
                    Delta::new().set_satellite_time(leaf, hsa_graph::Cost::new(100 + 7 * n));
                [
                    svc.submit(Request::solve(&sc.tree, &sc.costs, Lambda::HALF)),
                    svc.submit(Request::frontier(&sc.tree, &sc.costs)),
                    svc.submit(Request::delta(tenant, delta, Lambda::HALF)),
                ]
            })
            .collect();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let stats = svc.stats();
        let lat = stats.latency;
        // Every answered request of each kind was recorded…
        assert_eq!(lat.solve.count, stats.solves);
        assert_eq!(lat.frontier.count, stats.frontiers);
        assert_eq!(lat.delta.count, stats.deltas);
        assert_eq!(
            (lat.solve.count, lat.frontier.count, lat.delta.count),
            (4, 4, 4)
        );
        // …with sane, ordered percentiles (a solve takes > 0 ns).
        for kind in [lat.solve, lat.frontier, lat.delta] {
            assert!(kind.sum_ns > 0);
            assert!(kind.p50_ns <= kind.p90_ns && kind.p90_ns <= kind.p99_ns);
        }
    }

    #[test]
    fn dropping_the_service_answers_every_accepted_ticket() {
        let sc = paper_scenario();
        let svc = service(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let tickets: Vec<Ticket> = (0..16u32)
            .map(|n| {
                svc.submit(Request::solve(
                    &sc.tree,
                    &sc.costs,
                    Lambda::new(n, 16).unwrap(),
                ))
            })
            .collect();
        drop(svc); // graceful shutdown: drain, then join
        for t in tickets {
            assert!(t.wait().is_ok(), "accepted requests outlive the service");
        }
    }
}
