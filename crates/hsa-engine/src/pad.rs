//! Cache-line isolation for contended hot fields.
//!
//! Every modern x86/ARM server core owns cache lines of 64 bytes. Two
//! atomics that share a line **false-share**: a core bumping counter A
//! steals the line from the core bumping counter B even though the two
//! values are logically unrelated, and each increment degenerates into a
//! cross-core cache-line ping-pong. The engine's counter bank and the
//! sharded cache's locks are written from every worker thread at once, so
//! they are exactly the fields this bites (the `contended_counters`
//! example measures the effect on this machine).
//!
//! [`CachePadded`] is the fix: `#[repr(align(64))]` rounds the wrapper's
//! size and alignment up to one full line, so every wrapped value owns its
//! line outright. It derefs to the inner value, making the wrap invisible
//! at use sites.

/// Aligns (and thereby pads) `T` to a 64-byte cache line so adjacent
/// instances never false-share. Transparent via `Deref`/`DerefMut`.
#[derive(Clone, Copy, Default, Debug)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wraps a value onto its own cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded(value)
    }

    /// Unwraps the inner value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn padded_values_occupy_whole_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU64>>(), 64);
        // An array of padded atomics puts every element on its own line.
        let bank: [CachePadded<AtomicU64>; 4] = Default::default();
        let addrs: Vec<usize> = bank.iter().map(|c| &c.0 as *const _ as usize).collect();
        for w in addrs.windows(2) {
            assert!(w[1] - w[0] >= 64, "adjacent counters share a line");
        }
    }

    #[test]
    fn deref_makes_the_wrap_transparent() {
        let c = CachePadded::new(AtomicU64::new(41));
        c.fetch_add(1, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 42);
        assert_eq!(CachePadded::new(7u64).into_inner(), 7);
    }
}
