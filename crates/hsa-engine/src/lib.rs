//! # hsa-engine — the concurrent solving service layer
//!
//! The paper presents a one-shot solve: build the coloured assignment
//! graph, run the adapted SSB search, read off the cut. A production
//! deployment re-solves the *same* prepared instance under many λ
//! weightings, many instances per second, from many tenants at once. This
//! crate turns the solver stack into a service shaped for that traffic:
//!
//! * [`Engine`] is **shared-ownership**: every entry point works through
//!   `&self`, so one engine behind an [`Arc`] serves any
//!   number of threads. The instance cache is split across
//!   `RwLock`-sharded maps holding `Arc`'d entries (see [`CachedInstance`]),
//!   and the service counters are atomics — no global lock anywhere on
//!   the query path.
//! * [`Engine::prepare`] caches fully prepared instances
//!   ([`Prepared`]`<'static>` + the λ-independent [`FrontierSet`]) keyed by
//!   a content hash of the tree and cost model — preparing twice is a
//!   cache hit, and every later query reuses the colouring, σ/β labels,
//!   dual graph and Pareto frontiers without rebuilding anything.
//! * [`Engine::solve_batch`] fans a slice of `(instance, λ)` queries across
//!   a **persistent** [`WorkerPool`] (spawned once with the engine, fed
//!   through a channel, drained gracefully on drop), answering each from
//!   the cached frontiers **byte-identically** to a fresh
//!   [`Expanded`](hsa_assign::Expanded)`::solve` — same cut, same
//!   objective, same stats semantics.
//! * [`Engine::solve_batch_with`] runs any [`Solver`] instead, drawing
//!   reusable [`hsa_graph::SolveScratch`] workspaces from a pool so steady-state
//!   solving stays allocation-free.
//! * [`Engine::frontier`] exposes the full **λ-frontier** — the
//!   piecewise-linear lower envelope of optimal cuts over λ ∈ [0, 1] with
//!   exact rational breakpoints — so a λ-sweep costs one envelope pass
//!   instead of N independent solves.
//! * [`Service`] is the request-stream front-end: a bounded submission
//!   queue with backpressure, per-request λ, and a multi-tenant
//!   [`Session`] registry so delta streams apply concurrently across
//!   tenants while staying FIFO within each (DESIGN.md §10).
//! * [`Session`] holds one **drifting** instance open and re-solves it
//!   incrementally: [`Session::apply`] absorbs a [`hsa_tree::Delta`]
//!   (cost drift, capacity changes, sensor churn) and rebuilds only the
//!   per-colour frontiers the perturbation actually dirtied, falling back
//!   to a full rebuild past a configurable threshold (DESIGN.md §9).
//!
//! Per-query [`SolveStats`] aggregate into [`EngineStats`] via
//! [`SolveStats::merge`].
//!
//! ```
//! use hsa_engine::{Engine, EngineConfig};
//! use hsa_graph::Lambda;
//! use std::sync::Arc;
//!
//! let scenario = hsa_workloads::paper_scenario();
//! // `&self` everywhere: no `mut`, and the engine is Arc-shareable.
//! let engine = Arc::new(Engine::new(EngineConfig::default()));
//! let id = engine.prepare(&scenario.tree, &scenario.costs).unwrap();
//!
//! // A λ-sweep as one batch…
//! let queries: Vec<_> = (0..=4).map(|n| (id, Lambda::new(n, 4).unwrap())).collect();
//! let solutions = engine.solve_batch(&queries);
//! assert!(solutions.iter().all(|s| s.is_ok()));
//!
//! // …or as one frontier: every optimal cut for every λ at once. The
//! // scaled objective agrees with the per-query solve at the same λ.
//! let frontier = engine.frontier(id).unwrap();
//! assert_eq!(
//!     frontier.objective_at(Lambda::new(2, 4).unwrap()),
//!     solutions[2].as_ref().unwrap().objective,
//! );
//! ```

#![warn(missing_docs)]
// Denied crate-wide rather than forbidden: `net::sys` opts back in for
// the raw `poll(2)`/`epoll(7)` declarations the reactor multiplexes on.
// Every other module still rejects `unsafe`.
#![deny(unsafe_code)]

use hsa_assign::{
    lambda_frontier_with, solve_with_frontiers, AssignError, ExpandedConfig, FrontierSet,
    LambdaFrontier, Prepared, Solution, SolveStats, Solver,
};
use hsa_graph::Lambda;
use hsa_tree::{CostModel, CruTree};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

mod cache;
mod hist;
pub mod net;
mod pad;
mod pool;
mod portfolio;
mod service;
mod session;

pub use cache::CachedInstance;
pub use hist::{HistogramSnapshot, LatencyHistogram, LatencyStats, NUM_BUCKETS};
pub use pad::CachePadded;
pub use pool::{parallel_map, WorkerPool};
pub use portfolio::{AnytimeAnswer, AnytimeOutcome, ArmKind, Portfolio, PortfolioConfig};
pub use service::{
    AnswerExt, Reply, Request, RequestLatency, Service, ServiceConfig, ServiceError, ServiceStats,
    TenantId, Ticket,
};
pub use session::{ApplyOutcome, Session, SessionConfig, SessionStats};

/// Identifier of a cached instance: the 64-bit structural content hash of
/// its tree and cost model. Stable across engines and runs of the same
/// build.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstanceId(u64);

impl InstanceId {
    /// The raw content hash.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw hash — e.g. one a client persisted
    /// across reconnects. Presenting an id the engine does not know is
    /// answered with [`EngineError::UnknownInstance`], never aliased, so
    /// this cannot forge access to a different instance.
    pub fn from_raw(raw: u64) -> InstanceId {
        InstanceId(raw)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst-{:016x}", self.0)
    }
}

/// Errors raised by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A query referenced an instance id that was never prepared.
    UnknownInstance {
        /// The offending id.
        id: InstanceId,
    },
    /// Two distinct instances collided on the 64-bit content hash (the
    /// engine verifies equality on every cache hit rather than alias them).
    HashCollision {
        /// The colliding id.
        id: InstanceId,
    },
    /// A solver error on the underlying instance.
    Assign(AssignError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownInstance { id } => write!(f, "unknown instance {id}"),
            EngineError::HashCollision { id } => {
                write!(f, "content-hash collision on {id}; instances differ")
            }
            EngineError::Assign(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Assign(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AssignError> for EngineError {
    fn from(e: AssignError) -> Self {
        EngineError::Assign(e)
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// Worker threads of the engine's persistent pool (0, the default,
    /// means one per available core).
    pub threads: usize,
    /// Frontier caps for the cached full-expansion preparation.
    pub expanded: ExpandedConfig,
}

/// Aggregated service counters (see [`Engine::stats`]). This is a plain
/// snapshot struct; the live counters inside the engine are atomics, so
/// any thread may record or read without a lock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered successfully by the batch entry points.
    pub queries: u64,
    /// Queries that failed (unknown instance or solver error).
    pub failed: u64,
    /// `prepare` calls that found the instance already cached.
    pub cache_hits: u64,
    /// `prepare` calls that built a new cached instance (including the
    /// losers of a concurrent build race — they paid the preparation).
    pub cache_misses: u64,
    /// Per-query solver counters, merged via [`SolveStats::merge`].
    pub solve: SolveStats,
}

impl EngineStats {
    /// Fraction of `prepare` calls answered from the cache (0.0 when no
    /// call was made yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Total `prepare` calls observed.
    pub fn prepares(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }
}

/// The live, lock-free counter bank behind [`EngineStats`]. Every counter
/// is written from every worker thread on the batch path; [`CachePadded`]
/// keeps each on its own cache line so concurrent bumps of *different*
/// counters never false-share (see the `contended_counters` example for
/// the measured effect).
#[derive(Default)]
struct EngineCounters {
    queries: CachePadded<AtomicU64>,
    failed: CachePadded<AtomicU64>,
    cache_hits: CachePadded<AtomicU64>,
    cache_misses: CachePadded<AtomicU64>,
    // SolveStats, field by field.
    iterations: CachePadded<AtomicU64>,
    edges_removed: CachePadded<AtomicU64>,
    expansions: CachePadded<AtomicU64>,
    composites: CachePadded<AtomicU64>,
    branches: CachePadded<AtomicU64>,
    evaluated: CachePadded<AtomicU64>,
}

impl EngineCounters {
    fn snapshot(&self) -> EngineStats {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        EngineStats {
            queries: load(&self.queries),
            failed: load(&self.failed),
            cache_hits: load(&self.cache_hits),
            cache_misses: load(&self.cache_misses),
            solve: SolveStats {
                iterations: load(&self.iterations),
                edges_removed: load(&self.edges_removed),
                expansions: load(&self.expansions),
                composites: load(&self.composites),
                branches: load(&self.branches),
                evaluated: load(&self.evaluated),
            },
        }
    }

    fn reset(&self) {
        for c in [
            &self.queries,
            &self.failed,
            &self.cache_hits,
            &self.cache_misses,
            &self.iterations,
            &self.edges_removed,
            &self.expansions,
            &self.composites,
            &self.branches,
            &self.evaluated,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    fn record_solve(&self, s: &SolveStats) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.iterations.fetch_add(s.iterations, Ordering::Relaxed);
        self.edges_removed
            .fetch_add(s.edges_removed, Ordering::Relaxed);
        self.expansions.fetch_add(s.expansions, Ordering::Relaxed);
        self.composites.fetch_add(s.composites, Ordering::Relaxed);
        self.branches.fetch_add(s.branches, Ordering::Relaxed);
        self.evaluated.fetch_add(s.evaluated, Ordering::Relaxed);
    }
}

/// The concurrent batch-solving engine. All entry points take `&self`;
/// share one engine across threads behind an [`Arc`]. See the crate docs
/// for the full tour.
pub struct Engine {
    cfg: EngineConfig,
    /// RwLock-sharded content-hash → `Arc<CachedInstance>` maps.
    cache: cache::ShardedCache,
    /// Persistent channel-fed workers for batch fan-out.
    pool: WorkerPool,
    /// Reusable per-worker solver workspaces.
    scratch: Arc<pool::ScratchPool>,
    stats: EngineCounters,
}

impl Engine {
    /// Creates an engine with the given configuration, spawning its
    /// persistent worker pool.
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine {
            cfg,
            cache: cache::ShardedCache::new(),
            pool: WorkerPool::new(cfg.threads),
            scratch: Arc::new(pool::ScratchPool::new()),
            stats: EngineCounters::default(),
        }
    }

    /// The effective worker-thread count of the persistent pool.
    pub fn threads(&self) -> usize {
        self.pool.size()
    }

    /// Prepares (or re-finds) an instance and returns its id.
    ///
    /// First preparation pays the full pipeline — validation, colouring,
    /// σ/β labelling, dual-graph construction and the per-colour Pareto
    /// frontier DP — all of it **outside any lock**, so concurrent
    /// prepares never serialise on each other's DP. Subsequent calls with
    /// an equal instance are cache hits costing one allocation-free
    /// structural hash plus an equality check of the instance (so distinct
    /// instances can never alias — [`EngineError::HashCollision`]); hot
    /// paths should hold on to the returned [`InstanceId`] rather than
    /// re-present the instance. Two threads racing to prepare the same
    /// *new* instance both build; one inserts and the other adopts the
    /// incumbent (both count as misses — both paid the work).
    pub fn prepare(&self, tree: &CruTree, costs: &CostModel) -> Result<InstanceId, EngineError> {
        let id = InstanceId(instance_hash(tree, costs));
        if let Some(cached) = self.cache.get(id.0) {
            if &*cached.prepared.tree != tree || &*cached.prepared.costs != costs {
                return Err(EngineError::HashCollision { id });
            }
            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(id);
        }
        // Build with no lock held; insert (or adopt the race winner) after.
        let prepared = Prepared::new_owned(tree.clone(), costs.clone())?;
        let frontiers = FrontierSet::prepare(&prepared, &self.cfg.expanded)?;
        let entry = CachedInstance {
            prepared,
            frontiers,
        };
        let inserted = self.cache.insert_or_adopt(id.0, entry);
        if inserted.adopted {
            // Same hash does not prove same instance, even on a race.
            let incumbent = &inserted.entry;
            if &*incumbent.prepared.tree != tree || &*incumbent.prepared.costs != costs {
                return Err(EngineError::HashCollision { id });
            }
        }
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// The cached instance, if `id` is known: a shared handle to the
    /// prepared form and its frontiers (no lock held once returned).
    pub fn instance(&self, id: InstanceId) -> Option<Arc<CachedInstance>> {
        self.cache.get(id.0)
    }

    /// Number of cached instances.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, id: InstanceId) -> Result<Arc<CachedInstance>, EngineError> {
        self.cache
            .get(id.0)
            .ok_or(EngineError::UnknownInstance { id })
    }

    /// Answers a batch of `(instance, λ)` queries, fanned across the
    /// persistent worker pool, each from the instance's cached
    /// [`FrontierSet`].
    ///
    /// Results are in query order and **byte-identical** — same
    /// `Solution::objective`, same `Solution::cut` — to calling
    /// [`hsa_assign::Expanded`]`::solve` per query on a freshly prepared
    /// instance: the cached-frontier path runs the very same threshold
    /// sweep, it just skips re-deriving what cannot change.
    ///
    /// The query slice is only read (each query resolves to one `Arc`
    /// clone of its cache entry); it is never cloned wholesale.
    pub fn solve_batch(
        &self,
        queries: &[(InstanceId, Lambda)],
    ) -> Vec<Result<Solution, EngineError>> {
        let items: Vec<(Result<Arc<CachedInstance>, EngineError>, Lambda)> = queries
            .iter()
            .map(|&(id, lambda)| (self.lookup(id), lambda))
            .collect();
        let job = |(entry, lambda): (Result<Arc<CachedInstance>, EngineError>, Lambda)| {
            let entry = entry?;
            solve_with_frontiers(&entry.prepared, &entry.frontiers, lambda)
                .map_err(EngineError::from)
        };
        let results = if self.pool.size() <= 1 || items.len() <= 1 {
            // Nothing to fan out: answer in-line, skipping the channel trip.
            items.into_iter().map(job).collect()
        } else {
            self.pool.run_batch(items, job)
        };
        self.record(&results);
        results
    }

    /// Answers a batch of queries with an arbitrary [`Solver`], drawing
    /// reusable [`hsa_graph::SolveScratch`] workspaces from the engine's pool (one per
    /// in-flight query, recycled across the batch). The solver is shared
    /// across workers, so it arrives as an `Arc`.
    pub fn solve_batch_with(
        &self,
        queries: &[(InstanceId, Lambda)],
        solver: Arc<dyn Solver + Send + Sync>,
    ) -> Vec<Result<Solution, EngineError>> {
        let items: Vec<(Result<Arc<CachedInstance>, EngineError>, Lambda)> = queries
            .iter()
            .map(|&(id, lambda)| (self.lookup(id), lambda))
            .collect();
        let scratch = Arc::clone(&self.scratch);
        let job = move |(entry, lambda): (Result<Arc<CachedInstance>, EngineError>, Lambda)| {
            let entry = entry?;
            let mut ws = scratch.acquire();
            let out = solver
                .solve_in(&entry.prepared, lambda, &mut ws)
                .map_err(EngineError::from);
            scratch.release(ws);
            out
        };
        let results = if self.pool.size() <= 1 || items.len() <= 1 {
            items.into_iter().map(job).collect()
        } else {
            self.pool.run_batch(items, job)
        };
        self.record(&results);
        results
    }

    /// The λ-frontier of a cached instance: every optimal cut over
    /// λ ∈ [0, 1] as a piecewise-linear lower envelope with exact rational
    /// breakpoints. One pass over the cached frontiers answers any number
    /// of λ queries.
    pub fn frontier(&self, id: InstanceId) -> Result<LambdaFrontier, EngineError> {
        let cached = self.lookup(id)?;
        lambda_frontier_with(&cached.prepared, &cached.frontiers).map_err(EngineError::from)
    }

    /// A snapshot of the aggregated service counters.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot()
    }

    /// Resets the aggregated counters (e.g. between measured phases of a
    /// benchmark), leaving the instance cache intact.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn record(&self, results: &[Result<Solution, EngineError>]) {
        for r in results {
            match r {
                Ok(sol) => self.stats.record_solve(&sol.stats),
                Err(_) => {
                    self.stats.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Structural FNV-1a content hash of `(tree, costs)`.
///
/// Both structures carry a lazily-computed, mutation-invalidated content
/// hash ([`hsa_tree::HashCache`]), so after the first contact this is two
/// relaxed atomic loads mixed through the word-wise [`hsa_tree::Fnv1a`] —
/// not a traversal. Keyless, so instance ids are reproducible run to run
/// (for a given build).
fn instance_hash(tree: &CruTree, costs: &CostModel) -> u64 {
    let mut h = hsa_tree::Fnv1a::new();
    h.write_u64(tree.content_hash());
    h.write_u64(costs.content_hash());
    h.finish()
}

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        parallel_map, AnswerExt, AnytimeAnswer, AnytimeOutcome, ApplyOutcome, ArmKind, Engine,
        EngineConfig, EngineError, EngineStats, InstanceId, Portfolio, PortfolioConfig, Reply,
        Request, Service, ServiceConfig, ServiceError, ServiceStats, Session, SessionConfig,
        SessionStats, TenantId, Ticket, WorkerPool,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_assign::{Expanded, PaperSsb};
    use hsa_workloads::paper_scenario;

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_shareable<T: Send + Sync>() {}
        assert_shareable::<Engine>();
        assert_shareable::<Service>();
    }

    #[test]
    fn prepare_twice_hits_the_cache() {
        let sc = paper_scenario();
        let engine = Engine::new(EngineConfig::default());
        let a = engine.prepare(&sc.tree, &sc.costs).unwrap();
        let b = engine.prepare(&sc.tree, &sc.costs).unwrap();
        assert_eq!(a, b);
        assert_eq!(engine.len(), 1);
        let stats = engine.stats();
        assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
    }

    #[test]
    fn unknown_instance_is_an_error_not_a_panic() {
        let engine = Engine::new(EngineConfig::default());
        let bogus = InstanceId(42);
        let out = engine.solve_batch(&[(bogus, Lambda::HALF)]);
        assert!(matches!(
            out[0],
            Err(EngineError::UnknownInstance { id }) if id == bogus
        ));
        assert!(matches!(
            engine.frontier(bogus),
            Err(EngineError::UnknownInstance { .. })
        ));
        assert_eq!(engine.stats().failed, 1);
    }

    #[test]
    fn stats_expose_hit_rate_and_reset() {
        let sc = paper_scenario();
        let engine = Engine::new(EngineConfig::default());
        engine.prepare(&sc.tree, &sc.costs).unwrap();
        engine.prepare(&sc.tree, &sc.costs).unwrap();
        engine.prepare(&sc.tree, &sc.costs).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.prepares(), 3);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        engine.reset_stats();
        let stats = engine.stats();
        assert_eq!(stats.prepares(), 0);
        assert_eq!(stats.hit_rate(), 0.0);
        // The cache itself survives a stats reset.
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn batch_answers_match_fresh_solves() {
        let sc = paper_scenario();
        let engine = Engine::new(EngineConfig::default());
        let id = engine.prepare(&sc.tree, &sc.costs).unwrap();
        let queries: Vec<_> = (0..=8).map(|n| (id, Lambda::new(n, 8).unwrap())).collect();
        let batch = engine.solve_batch(&queries);
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        for ((_, lambda), got) in queries.iter().zip(&batch) {
            let got = got.as_ref().unwrap();
            let want = Expanded::default().solve(&prep, *lambda).unwrap();
            assert_eq!(got.objective, want.objective);
            assert_eq!(got.cut, want.cut);
        }
        assert_eq!(engine.stats().queries, 9);
    }

    #[test]
    fn custom_solver_batch_uses_the_scratch_pool() {
        let sc = paper_scenario();
        let engine = Engine::new(EngineConfig::default());
        let id = engine.prepare(&sc.tree, &sc.costs).unwrap();
        let queries = vec![(id, Lambda::HALF); 4];
        let batch = engine.solve_batch_with(&queries, Arc::new(PaperSsb::default()));
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let want = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
        for got in &batch {
            let got = got.as_ref().unwrap();
            assert_eq!(got.objective, want.objective);
            assert_eq!(got.cut, want.cut);
        }
        assert!(engine.stats().solve.iterations >= 4);
    }

    #[test]
    fn instance_hash_distinguishes_cost_changes() {
        let sc = paper_scenario();
        let mut other = sc.costs.clone();
        // Perturb one host time: the hash (and hence the id) must change.
        let root = sc.tree.root();
        let h = other.h(root);
        other.set_host_time(root, h + hsa_graph::Cost::new(1));
        assert_ne!(
            instance_hash(&sc.tree, &sc.costs),
            instance_hash(&sc.tree, &other)
        );
        let engine = Engine::new(EngineConfig::default());
        let a = engine.prepare(&sc.tree, &sc.costs).unwrap();
        let b = engine.prepare(&sc.tree, &other).unwrap();
        assert_ne!(a, b);
        assert_eq!(engine.len(), 2);
    }

    #[test]
    fn frontier_matches_batch_objectives() {
        let sc = paper_scenario();
        let engine = Engine::new(EngineConfig::default());
        let id = engine.prepare(&sc.tree, &sc.costs).unwrap();
        let fr = engine.frontier(id).unwrap();
        for n in 0..=10u32 {
            let lambda = Lambda::new(n, 10).unwrap();
            let sol = &engine.solve_batch(&[(id, lambda)])[0];
            assert_eq!(fr.objective_at(lambda), sol.as_ref().unwrap().objective);
        }
    }

    #[test]
    fn arc_shared_engine_serves_many_threads() {
        let sc = paper_scenario();
        let engine = Arc::new(Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        }));
        let id = engine.prepare(&sc.tree, &sc.costs).unwrap();
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let lambda = Lambda::new(t, 4).unwrap();
                    let out = engine.solve_batch(&[(id, lambda)]);
                    (lambda, out.into_iter().next().unwrap().unwrap())
                })
            })
            .collect();
        for h in handles {
            let (lambda, got) = h.join().unwrap();
            let want = Expanded::default().solve(&prep, lambda).unwrap();
            assert_eq!(got.objective, want.objective);
            assert_eq!(got.cut, want.cut);
        }
        assert_eq!(engine.stats().queries, 4);
    }

    #[test]
    fn concurrent_prepares_of_one_instance_share_an_entry() {
        let sc = paper_scenario();
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let tree = sc.tree.clone();
                let costs = sc.costs.clone();
                std::thread::spawn(move || engine.prepare(&tree, &costs).unwrap())
            })
            .collect();
        let ids: Vec<InstanceId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(engine.len(), 1, "racing prepares must share one entry");
        assert_eq!(engine.stats().prepares(), 4);
    }
}
