//! # hsa-engine — the batch solving service layer
//!
//! The paper presents a one-shot solve: build the coloured assignment
//! graph, run the adapted SSB search, read off the cut. A production
//! deployment re-solves the *same* prepared instance under many λ
//! weightings and many instances per second. This crate turns the solver
//! stack into a service shaped for that traffic:
//!
//! * [`Engine::prepare`] caches fully prepared instances
//!   ([`Prepared`]`<'static>` + the λ-independent [`FrontierSet`]) keyed by
//!   a content hash of the tree and cost model — preparing twice is a
//!   cache hit, and every later query reuses the colouring, σ/β labels,
//!   dual graph and Pareto frontiers without rebuilding anything;
//! * [`Engine::solve_batch`] fans a slice of `(instance, λ)` queries across
//!   worker threads via [`parallel_map`], answering each from the cached
//!   frontiers **byte-identically** to a fresh
//!   [`Expanded`](hsa_assign::Expanded)`::solve` — same cut, same
//!   objective, same stats semantics;
//! * [`Engine::solve_batch_with`] runs any [`Solver`] instead, drawing
//!   reusable [`hsa_graph::SolveScratch`] workspaces from a pool so steady-state
//!   solving stays allocation-free;
//! * [`Engine::frontier`] exposes the full **λ-frontier** — the
//!   piecewise-linear lower envelope of optimal cuts over λ ∈ [0, 1] with
//!   exact rational breakpoints — so a λ-sweep costs one envelope pass
//!   instead of N independent solves;
//! * [`Session`] holds one **drifting** instance open and re-solves it
//!   incrementally: [`Session::apply`] absorbs a [`hsa_tree::Delta`]
//!   (cost drift, capacity changes, sensor churn) and rebuilds only the
//!   per-colour frontiers the perturbation actually dirtied, falling back
//!   to a full rebuild past a configurable threshold (DESIGN.md §9).
//!
//! Per-query [`SolveStats`] aggregate into [`EngineStats`] via
//! [`SolveStats::merge`].
//!
//! ```
//! use hsa_engine::{Engine, EngineConfig};
//! use hsa_graph::Lambda;
//!
//! let scenario = hsa_workloads::paper_scenario();
//! let mut engine = Engine::new(EngineConfig::default());
//! let id = engine.prepare(&scenario.tree, &scenario.costs).unwrap();
//!
//! // A λ-sweep as one batch…
//! let queries: Vec<_> = (0..=4).map(|n| (id, Lambda::new(n, 4).unwrap())).collect();
//! let solutions = engine.solve_batch(&queries);
//! assert!(solutions.iter().all(|s| s.is_ok()));
//!
//! // …or as one frontier: every optimal cut for every λ at once. The
//! // scaled objective agrees with the per-query solve at the same λ.
//! let frontier = engine.frontier(id).unwrap();
//! assert_eq!(
//!     frontier.objective_at(Lambda::new(2, 4).unwrap()),
//!     solutions[2].as_ref().unwrap().objective,
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use hsa_assign::{
    lambda_frontier_with, solve_with_frontiers, AssignError, ExpandedConfig, FrontierSet,
    LambdaFrontier, Prepared, Solution, SolveStats, Solver,
};
use hsa_graph::Lambda;
use hsa_tree::{CostModel, CruTree};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

mod pool;
mod session;

pub use pool::parallel_map;
pub use session::{ApplyOutcome, Session, SessionConfig, SessionStats};

/// Identifier of a cached instance: the 64-bit structural content hash of
/// its tree and cost model. Stable across engines and runs of the same
/// build.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstanceId(u64);

impl InstanceId {
    /// The raw content hash.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst-{:016x}", self.0)
    }
}

/// Errors raised by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A query referenced an instance id that was never prepared.
    UnknownInstance {
        /// The offending id.
        id: InstanceId,
    },
    /// Two distinct instances collided on the 64-bit content hash (the
    /// engine verifies equality on every cache hit rather than alias them).
    HashCollision {
        /// The colliding id.
        id: InstanceId,
    },
    /// A solver error on the underlying instance.
    Assign(AssignError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownInstance { id } => write!(f, "unknown instance {id}"),
            EngineError::HashCollision { id } => {
                write!(f, "content-hash collision on {id}; instances differ")
            }
            EngineError::Assign(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Assign(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AssignError> for EngineError {
    fn from(e: AssignError) -> Self {
        EngineError::Assign(e)
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// Worker threads for batch fan-out (0, the default, means one per
    /// available core).
    pub threads: usize,
    /// Frontier caps for the cached full-expansion preparation.
    pub expanded: ExpandedConfig,
}

/// Aggregated service counters (see [`Engine::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered successfully by the batch entry points.
    pub queries: u64,
    /// Queries that failed (unknown instance or solver error).
    pub failed: u64,
    /// `prepare` calls that found the instance already cached.
    pub cache_hits: u64,
    /// `prepare` calls that built a new cached instance.
    pub cache_misses: u64,
    /// Per-query solver counters, merged via [`SolveStats::merge`].
    pub solve: SolveStats,
}

impl EngineStats {
    /// Fraction of `prepare` calls answered from the cache (0.0 when no
    /// call was made yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Total `prepare` calls observed.
    pub fn prepares(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }
}

/// One cached instance: the owned prepared form plus the λ-independent
/// frontier preparation of the full-expansion solver.
struct CachedInstance {
    prepared: Prepared<'static>,
    frontiers: FrontierSet,
}

/// The batch solving engine. See the crate docs for the full tour.
pub struct Engine {
    cfg: EngineConfig,
    /// Cache keyed by content hash; BTreeMap for deterministic iteration.
    instances: BTreeMap<u64, CachedInstance>,
    /// Reusable per-worker solver workspaces.
    scratch: pool::ScratchPool,
    stats: Mutex<EngineStats>,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine {
            cfg,
            instances: BTreeMap::new(),
            scratch: pool::ScratchPool::new(),
            stats: Mutex::new(EngineStats::default()),
        }
    }

    /// The effective worker-thread count.
    pub fn threads(&self) -> usize {
        if self.cfg.threads > 0 {
            self.cfg.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Prepares (or re-finds) an instance and returns its id.
    ///
    /// First preparation pays the full pipeline — validation, colouring,
    /// σ/β labelling, dual-graph construction and the per-colour Pareto
    /// frontier DP. Subsequent calls with an equal instance are cache hits
    /// costing one allocation-free structural hash plus an equality check
    /// of the instance (so distinct instances can never alias —
    /// [`EngineError::HashCollision`]); hot paths should hold on to the
    /// returned [`InstanceId`] rather than re-present the instance.
    pub fn prepare(
        &mut self,
        tree: &CruTree,
        costs: &CostModel,
    ) -> Result<InstanceId, EngineError> {
        let id = InstanceId(instance_hash(tree, costs));
        if let Some(cached) = self.instances.get(&id.0) {
            if &*cached.prepared.tree != tree || &*cached.prepared.costs != costs {
                return Err(EngineError::HashCollision { id });
            }
            self.stats.lock().expect("stats lock").cache_hits += 1;
            return Ok(id);
        }
        let prepared = Prepared::new_owned(tree.clone(), costs.clone())?;
        let frontiers = FrontierSet::prepare(&prepared, &self.cfg.expanded)?;
        self.instances.insert(
            id.0,
            CachedInstance {
                prepared,
                frontiers,
            },
        );
        self.stats.lock().expect("stats lock").cache_misses += 1;
        Ok(id)
    }

    /// The cached prepared instance, if `id` is known.
    pub fn prepared(&self, id: InstanceId) -> Option<&Prepared<'static>> {
        self.instances.get(&id.0).map(|c| &c.prepared)
    }

    /// Number of cached instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Answers a batch of `(instance, λ)` queries, fanned across worker
    /// threads, each from the instance's cached [`FrontierSet`].
    ///
    /// Results are in query order and **byte-identical** — same
    /// `Solution::objective`, same `Solution::cut` — to calling
    /// [`hsa_assign::Expanded`]`::solve` per query on a freshly prepared
    /// instance: the cached-frontier path runs the very same threshold
    /// sweep, it just skips re-deriving what cannot change.
    pub fn solve_batch(
        &self,
        queries: &[(InstanceId, Lambda)],
    ) -> Vec<Result<Solution, EngineError>> {
        let results = parallel_map(queries.to_vec(), self.threads(), |(id, lambda)| {
            let cached = self
                .instances
                .get(&id.0)
                .ok_or(EngineError::UnknownInstance { id })?;
            solve_with_frontiers(&cached.prepared, &cached.frontiers, lambda)
                .map_err(EngineError::from)
        });
        self.record(&results);
        results
    }

    /// Answers a batch of queries with an arbitrary [`Solver`], drawing
    /// reusable [`hsa_graph::SolveScratch`] workspaces from the engine's pool (one per
    /// in-flight query, recycled across the batch).
    pub fn solve_batch_with(
        &self,
        queries: &[(InstanceId, Lambda)],
        solver: &(dyn Solver + Sync),
    ) -> Vec<Result<Solution, EngineError>> {
        let results = parallel_map(queries.to_vec(), self.threads(), |(id, lambda)| {
            let cached = self
                .instances
                .get(&id.0)
                .ok_or(EngineError::UnknownInstance { id })?;
            let mut ws = self.scratch.acquire();
            let out = solver
                .solve_in(&cached.prepared, lambda, &mut ws)
                .map_err(EngineError::from);
            self.scratch.release(ws);
            out
        });
        self.record(&results);
        results
    }

    /// The λ-frontier of a cached instance: every optimal cut over
    /// λ ∈ [0, 1] as a piecewise-linear lower envelope with exact rational
    /// breakpoints. One pass over the cached frontiers answers any number
    /// of λ queries.
    pub fn frontier(&self, id: InstanceId) -> Result<LambdaFrontier, EngineError> {
        let cached = self
            .instances
            .get(&id.0)
            .ok_or(EngineError::UnknownInstance { id })?;
        lambda_frontier_with(&cached.prepared, &cached.frontiers).map_err(EngineError::from)
    }

    /// A snapshot of the aggregated service counters.
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock().expect("stats lock")
    }

    /// Resets the aggregated counters (e.g. between measured phases of a
    /// benchmark), leaving the instance cache intact.
    pub fn reset_stats(&self) {
        *self.stats.lock().expect("stats lock") = EngineStats::default();
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn record(&self, results: &[Result<Solution, EngineError>]) {
        let mut stats = self.stats.lock().expect("stats lock");
        for r in results {
            match r {
                Ok(sol) => {
                    stats.queries += 1;
                    stats.solve.merge(&sol.stats);
                }
                Err(_) => stats.failed += 1,
            }
        }
    }
}

/// A keyless FNV-1a [`std::hash::Hasher`]: unlike the std `DefaultHasher`
/// it has no per-process random state, so instance ids are reproducible
/// run to run (for a given build).
struct Fnv1a(u64);

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Structural FNV-1a content hash of `(tree, costs)`: one allocation-free
/// traversal, no serialization.
fn instance_hash(tree: &CruTree, costs: &CostModel) -> u64 {
    use std::hash::Hash as _;
    let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
    tree.hash(&mut h);
    costs.hash(&mut h);
    std::hash::Hasher::finish(&h)
}

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        parallel_map, ApplyOutcome, Engine, EngineConfig, EngineError, EngineStats, InstanceId,
        Session, SessionConfig, SessionStats,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_assign::{Expanded, PaperSsb};
    use hsa_workloads::paper_scenario;

    #[test]
    fn prepare_twice_hits_the_cache() {
        let sc = paper_scenario();
        let mut engine = Engine::new(EngineConfig::default());
        let a = engine.prepare(&sc.tree, &sc.costs).unwrap();
        let b = engine.prepare(&sc.tree, &sc.costs).unwrap();
        assert_eq!(a, b);
        assert_eq!(engine.len(), 1);
        let stats = engine.stats();
        assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
    }

    #[test]
    fn unknown_instance_is_an_error_not_a_panic() {
        let engine = Engine::new(EngineConfig::default());
        let bogus = InstanceId(42);
        let out = engine.solve_batch(&[(bogus, Lambda::HALF)]);
        assert!(matches!(
            out[0],
            Err(EngineError::UnknownInstance { id }) if id == bogus
        ));
        assert!(matches!(
            engine.frontier(bogus),
            Err(EngineError::UnknownInstance { .. })
        ));
        assert_eq!(engine.stats().failed, 1);
    }

    #[test]
    fn stats_expose_hit_rate_and_reset() {
        let sc = paper_scenario();
        let mut engine = Engine::new(EngineConfig::default());
        engine.prepare(&sc.tree, &sc.costs).unwrap();
        engine.prepare(&sc.tree, &sc.costs).unwrap();
        engine.prepare(&sc.tree, &sc.costs).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.prepares(), 3);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        engine.reset_stats();
        let stats = engine.stats();
        assert_eq!(stats.prepares(), 0);
        assert_eq!(stats.hit_rate(), 0.0);
        // The cache itself survives a stats reset.
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn batch_answers_match_fresh_solves() {
        let sc = paper_scenario();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.prepare(&sc.tree, &sc.costs).unwrap();
        let queries: Vec<_> = (0..=8).map(|n| (id, Lambda::new(n, 8).unwrap())).collect();
        let batch = engine.solve_batch(&queries);
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        for ((_, lambda), got) in queries.iter().zip(&batch) {
            let got = got.as_ref().unwrap();
            let want = Expanded::default().solve(&prep, *lambda).unwrap();
            assert_eq!(got.objective, want.objective);
            assert_eq!(got.cut, want.cut);
        }
        assert_eq!(engine.stats().queries, 9);
    }

    #[test]
    fn custom_solver_batch_uses_the_scratch_pool() {
        let sc = paper_scenario();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.prepare(&sc.tree, &sc.costs).unwrap();
        let queries = vec![(id, Lambda::HALF); 4];
        let batch = engine.solve_batch_with(&queries, &PaperSsb::default());
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let want = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
        for got in &batch {
            let got = got.as_ref().unwrap();
            assert_eq!(got.objective, want.objective);
            assert_eq!(got.cut, want.cut);
        }
        assert!(engine.stats().solve.iterations >= 4);
    }

    #[test]
    fn instance_hash_distinguishes_cost_changes() {
        let sc = paper_scenario();
        let mut other = sc.costs.clone();
        // Perturb one host time: the hash (and hence the id) must change.
        let root = sc.tree.root();
        let h = other.h(root);
        other.set_host_time(root, h + hsa_graph::Cost::new(1));
        assert_ne!(
            instance_hash(&sc.tree, &sc.costs),
            instance_hash(&sc.tree, &other)
        );
        let mut engine = Engine::new(EngineConfig::default());
        let a = engine.prepare(&sc.tree, &sc.costs).unwrap();
        let b = engine.prepare(&sc.tree, &other).unwrap();
        assert_ne!(a, b);
        assert_eq!(engine.len(), 2);
    }

    #[test]
    fn frontier_matches_batch_objectives() {
        let sc = paper_scenario();
        let mut engine = Engine::new(EngineConfig::default());
        let id = engine.prepare(&sc.tree, &sc.costs).unwrap();
        let fr = engine.frontier(id).unwrap();
        for n in 0..=10u32 {
            let lambda = Lambda::new(n, 10).unwrap();
            let sol = &engine.solve_batch(&[(id, lambda)])[0];
            assert_eq!(fr.objective_at(lambda), sol.as_ref().unwrap().objective);
        }
    }
}
