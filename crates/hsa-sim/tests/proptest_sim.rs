//! Property tests for the simulator: under the paper's timing model the
//! simulated end-to-end delay equals the analytic objective `S + B` for
//! *every* valid cut of random instances; the relaxed models are never
//! slower (experiment T4's invariants).

use hsa_assign::{evaluate_cut, Prepared};
use hsa_graph::Cost;
use hsa_sim::{simulate, simulate_periodic, SimConfig};
use hsa_tree::{for_each_cut, CostModel, CruId, CruNode, CruTree, SatelliteId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Instance {
    tree: CruTree,
    costs: CostModel,
}

fn arb_instance(max_nodes: usize, max_sats: u32) -> impl Strategy<Value = Instance> {
    (2usize..=max_nodes, 1u32..=max_sats).prop_flat_map(move |(n, k)| {
        let parents = proptest::collection::vec(0usize..n, n - 1);
        let costs = proptest::collection::vec((0u64..30, 0u64..30, 0u64..15, 0u64..15), n);
        let sats = proptest::collection::vec(0u32..k, n);
        (parents, costs, sats).prop_map(move |(parents, costvec, sats)| {
            let mut nodes: Vec<CruNode> = (0..n)
                .map(|i| CruNode {
                    parent: None,
                    children: Vec::new(),
                    name: format!("n{i}"),
                })
                .collect();
            for i in 1..n {
                let p = parents[i - 1] % i;
                nodes[i].parent = Some(CruId(p as u32));
                nodes[p].children.push(CruId(i as u32));
            }
            let tree = CruTree::from_parts(nodes, CruId(0)).unwrap();
            let mut m = CostModel::zeroed(&tree, k);
            for i in 0..n {
                let id = CruId(i as u32);
                let (h, s, cu, cr) = costvec[i];
                m.set_host_time(id, Cost::new(h));
                m.set_satellite_time(id, Cost::new(s));
                if i != 0 {
                    m.set_comm_up(id, Cost::new(cu));
                }
                if tree.is_leaf(id) {
                    m.pin_leaf(id, SatelliteId(sats[i] % k), Cost::new(cr));
                }
            }
            Instance { tree, costs: m }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// The headline validation: sim(paper model) ≡ S + B on every cut.
    #[test]
    fn paper_model_equals_analytic_delay(inst in arb_instance(10, 3)) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        for_each_cut(&inst.tree, &|e| prep.colouring.cuttable(e), &mut |cut| {
            let (_a, rep) = evaluate_cut(&prep, cut).unwrap();
            let sim = simulate(&prep, cut, &SimConfig::paper_model()).unwrap();
            assert_eq!(sim.end_to_end, rep.end_to_end, "cut {:?}", cut.edges());
            assert_eq!(sim.host_busy, rep.host_time);
            for (i, load) in rep.satellite_loads.iter().enumerate() {
                assert_eq!(sim.satellite_finish[i], load.total);
            }
        });
    }

    /// Relaxations never hurt: eager ≤ paper model, on every cut.
    #[test]
    fn eager_never_slower(inst in arb_instance(10, 3)) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        for_each_cut(&inst.tree, &|e| prep.colouring.cuttable(e), &mut |cut| {
            let paper = simulate(&prep, cut, &SimConfig::paper_model()).unwrap();
            let eager = simulate(&prep, cut, &SimConfig::eager()).unwrap();
            assert!(eager.end_to_end <= paper.end_to_end,
                "eager {} > paper {} on {:?}", eager.end_to_end, paper.end_to_end, cut.edges());
        });
    }

    /// Pipelining: first-frame latency is the single-frame delay; an
    /// interval at the bottleneck service keeps the tail flat.
    #[test]
    fn pipeline_first_frame_matches(inst in arb_instance(10, 3)) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        let cut = hsa_tree::Cut::max_offload(&inst.tree, &prep.colouring);
        let (_a, rep) = evaluate_cut(&prep, &cut).unwrap();
        let r = simulate_periodic(&prep, &cut, Cost::new(1_000_000), 3).unwrap();
        prop_assert_eq!(r.latencies[0], rep.end_to_end);
        if !r.bottleneck_service.is_zero() {
            let r2 = simulate_periodic(&prep, &cut, r.bottleneck_service, 20).unwrap();
            prop_assert!(!r2.saturated);
            let tail: Vec<_> = r2.latencies.iter().rev().take(3).collect();
            prop_assert!(tail.windows(2).all(|w| w[0] == w[1]));
        }
    }

    /// Determinism: two runs of the same simulation are identical.
    #[test]
    fn simulation_is_deterministic(inst in arb_instance(10, 3)) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        let cut = hsa_tree::Cut::max_offload(&inst.tree, &prep.colouring);
        let cfg = SimConfig { record_trace: true, ..SimConfig::eager() };
        let a = simulate(&prep, &cut, &cfg).unwrap();
        let b = simulate(&prep, &cut, &cfg).unwrap();
        prop_assert_eq!(a.end_to_end, b.end_to_end);
        prop_assert_eq!(a.trace, b.trace);
    }
}
