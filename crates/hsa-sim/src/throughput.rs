//! Periodic-frame (pipelined) execution — an extension of the paper's
//! single-frame model.
//!
//! The paper minimises the delay of one context frame; real monitoring
//! applications stream frames periodically (ECG at 256 Hz in the
//! tele-monitoring scenario). This module models the pipeline: each
//! resource (a satellite's CPU+uplink, the host CPU) serves frames FIFO
//! with the per-frame service times of the deployed cut. It reports
//! per-frame latencies, the steady-state latency, and whether the pipeline
//! saturates (a resource's service time exceeds the frame interval, making
//! latency grow without bound).

use crate::SimTime;
use hsa_assign::{evaluate_cut, AssignError, Prepared};
use hsa_graph::Cost;
use hsa_tree::Cut;
use serde::Serialize;

/// Result of a periodic-frame run.
#[derive(Clone, Debug, Serialize)]
pub struct ThroughputResult {
    /// Latency (completion − release) of every simulated frame.
    pub latencies: Vec<Cost>,
    /// Completion time of the last frame.
    pub makespan: SimTime,
    /// Frames per tick·10⁶ (scaled to avoid floats in the core type).
    pub frames_per_mega_tick: u64,
    /// True when some resource's service time exceeds the interval: the
    /// backlog — and hence latency — grows linearly with the frame index.
    pub saturated: bool,
    /// The service time of the slowest resource (the pipeline's capacity
    /// bound: sustainable interval ≥ this).
    pub bottleneck_service: Cost,
}

/// Simulates `n_frames` frames released every `interval` ticks through the
/// deployed cut, under the paper's per-frame timing model.
pub fn simulate_periodic(
    prep: &Prepared<'_>,
    cut: &Cut,
    interval: Cost,
    n_frames: usize,
) -> Result<ThroughputResult, AssignError> {
    let (_asg, rep) = evaluate_cut(prep, cut)?;
    // Per-frame service times: each satellite (CPU+uplink as one serial
    // station, per the paper's model), then the host.
    let sat_service: Vec<Cost> = rep.satellite_loads.iter().map(|l| l.total).collect();
    let host_service = rep.host_time;
    let bottleneck_service = sat_service.iter().copied().fold(host_service, Cost::max);

    let mut sat_free = vec![Cost::ZERO; sat_service.len()];
    let mut host_free = Cost::ZERO;
    let mut latencies = Vec::with_capacity(n_frames);
    let mut makespan = Cost::ZERO;
    for i in 0..n_frames {
        let release = interval.saturating_mul(i as u64);
        // All satellites process frame i in parallel stations.
        let mut stage_done = release;
        for (f, &svc) in sat_free.iter_mut().zip(&sat_service) {
            let start = (*f).max(release);
            let done = start + svc;
            *f = done;
            stage_done = stage_done.max(done);
        }
        // Host barrier (paper model), FIFO on the host CPU.
        let start = host_free.max(stage_done);
        let done = start + host_service;
        host_free = done;
        latencies.push(done - release);
        makespan = makespan.max(done);
    }
    let saturated = !interval.is_zero() && bottleneck_service > interval
        || interval.is_zero() && !bottleneck_service.is_zero();
    let frames_per_mega_tick = if makespan.is_zero() {
        0
    } else {
        (n_frames as u64).saturating_mul(1_000_000) / makespan.ticks()
    };
    Ok(ThroughputResult {
        latencies,
        makespan,
        frames_per_mega_tick,
        saturated,
        bottleneck_service,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_tree::figures::fig2_tree;

    fn setup() -> (hsa_tree::CruTree, hsa_tree::CostModel) {
        fig2_tree()
    }

    #[test]
    fn single_frame_latency_equals_analytic_delay() {
        let (t, m) = setup();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::max_offload(&t, &prep.colouring);
        let (_a, rep) = evaluate_cut(&prep, &cut).unwrap();
        let r = simulate_periodic(&prep, &cut, Cost::new(1_000_000), 1).unwrap();
        assert_eq!(r.latencies, vec![rep.end_to_end]);
    }

    #[test]
    fn wide_interval_keeps_latency_flat() {
        let (t, m) = setup();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::max_offload(&t, &prep.colouring);
        let r = simulate_periodic(&prep, &cut, Cost::new(1_000_000), 10).unwrap();
        assert!(!r.saturated);
        assert!(r.latencies.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn narrow_interval_saturates_and_latency_grows() {
        let (t, m) = setup();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::max_offload(&t, &prep.colouring);
        let r = simulate_periodic(&prep, &cut, Cost::new(1), 20).unwrap();
        assert!(r.saturated);
        let first = r.latencies.first().unwrap();
        let last = r.latencies.last().unwrap();
        assert!(last > first, "latency must grow under saturation");
    }

    #[test]
    fn boundary_interval_is_sustainable() {
        let (t, m) = setup();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::max_offload(&t, &prep.colouring);
        let r0 = simulate_periodic(&prep, &cut, Cost::new(1_000_000), 1).unwrap();
        // Interval exactly the bottleneck service: steady state, flat tail.
        let r = simulate_periodic(&prep, &cut, r0.bottleneck_service, 30).unwrap();
        assert!(!r.saturated);
        let tail: Vec<_> = r.latencies.iter().rev().take(5).collect();
        assert!(tail.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn throughput_counts_frames() {
        let (t, m) = setup();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::all_on_host(&t);
        let r = simulate_periodic(&prep, &cut, Cost::new(500), 8).unwrap();
        assert_eq!(r.latencies.len(), 8);
        assert!(r.frames_per_mega_tick > 0);
    }
}
