//! Frame payload modelling.
//!
//! The paper derives communication costs from "the amount of data exchanged
//! and the approximate characteristics of the communication link" (§5.3).
//! This module provides that derivation: synthetic sensor frames (ECG,
//! accelerometer …) as real byte buffers, link profiles with
//! bandwidth/latency, and the resulting per-message transfer times that the
//! workload generators feed into [`hsa_tree::CostModel`].

use bytes::{BufMut, Bytes, BytesMut};
use hsa_graph::Cost;
use serde::{Deserialize, Serialize};

/// A link profile: fixed per-message latency plus serialisation rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Per-message overhead in ticks (µs).
    pub latency_ticks: u64,
    /// Throughput in bytes per tick·10⁻³ (i.e. kB/s when a tick is 1 µs is
    /// `bytes_per_milli_tick`; 1 byte/ms ≡ 1).
    pub bytes_per_milli_tick: u64,
}

impl LinkProfile {
    /// A Bluetooth-1.2-class link (~700 kbit/s, ~10 ms setup): the sensor
    /// boxes of the MobiHealth scenario.
    pub const BLUETOOTH: LinkProfile = LinkProfile {
        latency_ticks: 10_000,
        bytes_per_milli_tick: 87,
    };
    /// A 2.5G/GPRS-class uplink (~40 kbit/s, ~300 ms RTT): PDA to back-end.
    pub const GPRS: LinkProfile = LinkProfile {
        latency_ticks: 300_000,
        bytes_per_milli_tick: 5,
    };
    /// An 802.11b-class link (~5 Mbit/s effective, ~2 ms).
    pub const WIFI: LinkProfile = LinkProfile {
        latency_ticks: 2_000,
        bytes_per_milli_tick: 625,
    };

    /// Transfer time of `len` bytes over this link.
    pub fn transfer_time(&self, len: usize) -> Cost {
        if self.bytes_per_milli_tick == 0 {
            return Cost::MAX;
        }
        // ticks = latency + bytes / (bytes per milli-tick) * 1000
        let ser = (len as u64).saturating_mul(1000) / self.bytes_per_milli_tick;
        Cost::new(self.latency_ticks.saturating_add(ser))
    }
}

/// Builds a synthetic multi-channel sensor frame: `samples` samples of
/// `channels` × 16-bit values with an 8-byte header — the shape of an ECG
/// or accelerometer frame in the tele-monitoring scenario.
pub fn sensor_frame(channels: usize, samples: usize, seq: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + channels * samples * 2);
    buf.put_u32(0x4652_414D); // "FRAM"
    buf.put_u32(seq);
    for i in 0..samples {
        for c in 0..channels {
            // Deterministic pseudo-signal: cheap, reproducible, non-constant.
            let v = ((i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(c as u32 * 97)
                & 0xFFFF) as u16;
            buf.put_u16(v);
        }
    }
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_has_expected_size_and_header() {
        let f = sensor_frame(3, 256, 7);
        assert_eq!(f.len(), 8 + 3 * 256 * 2);
        assert_eq!(&f[0..4], &0x4652_414Du32.to_be_bytes());
        assert_eq!(&f[4..8], &7u32.to_be_bytes());
    }

    #[test]
    fn frames_are_deterministic() {
        assert_eq!(sensor_frame(2, 10, 1), sensor_frame(2, 10, 1));
        assert_ne!(sensor_frame(2, 10, 1), sensor_frame(2, 10, 2));
    }

    #[test]
    fn transfer_time_scales_with_size_and_link() {
        let small = LinkProfile::BLUETOOTH.transfer_time(100);
        let large = LinkProfile::BLUETOOTH.transfer_time(10_000);
        assert!(large > small);
        // GPRS is slower than WiFi for the same payload.
        let p = 5_000;
        assert!(LinkProfile::GPRS.transfer_time(p) > LinkProfile::WIFI.transfer_time(p));
    }

    #[test]
    fn zero_rate_link_is_infinite() {
        let dead = LinkProfile {
            latency_ticks: 1,
            bytes_per_milli_tick: 0,
        };
        assert_eq!(dead.transfer_time(1), Cost::MAX);
    }

    #[test]
    fn ecg_frame_over_bluetooth_is_milliseconds() {
        // 1 s of 256 Hz single-channel ECG ≈ 520 bytes → ~16 ms incl. setup.
        let f = sensor_frame(1, 256, 0);
        let t = LinkProfile::BLUETOOTH.transfer_time(f.len());
        assert!(t > Cost::new(10_000) && t < Cost::new(30_000), "{t}");
    }
}
