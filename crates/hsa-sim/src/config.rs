//! Simulation configuration: the paper's timing model and its relaxations.

use serde::{Deserialize, Serialize};

/// When host-side CRUs may begin executing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HostStartPolicy {
    /// The paper's §3 assumption: "the CRUs placed on the host cannot start
    /// processing unless they receive the processed context information
    /// from all the precedent CRUs located on the satellites" — modelled
    /// conservatively as the host starting only after *every* satellite
    /// message has arrived. Under this policy the simulated end-to-end
    /// delay provably equals the analytic objective `S + B`.
    #[default]
    AfterAllSatellites,
    /// Relaxation (ablation, experiment T4): a host CRU starts as soon as
    /// *its own* inputs are ready. Never slower than the paper's model;
    /// the measured gap quantifies the model's conservatism.
    EagerPrecedence,
}

/// Whether a satellite may transmit a finished result while still
/// computing the next CRU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum UplinkModel {
    /// The paper's model: a satellite's time is `Σ s + Σ c` — compute
    /// first, then transmit everything (one serial resource).
    #[default]
    SerialAfterCompute,
    /// Relaxation: the uplink is a separate serial resource; each message
    /// is sent as soon as it is ready (FIFO). Never slower.
    OverlapCompute,
}

/// Full simulator configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Host start policy.
    pub host_policy: HostStartPolicy,
    /// Satellite uplink model.
    pub uplink: UplinkModel,
    /// Record a per-resource busy-interval trace (Gantt rendering).
    pub record_trace: bool,
}

impl SimConfig {
    /// The exact configuration of the paper's analytic model.
    pub fn paper_model() -> SimConfig {
        SimConfig::default()
    }

    /// The fully-overlapped relaxation (both knobs loosened).
    pub fn eager() -> SimConfig {
        SimConfig {
            host_policy: HostStartPolicy::EagerPrecedence,
            uplink: UplinkModel::OverlapCompute,
            record_trace: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_model() {
        let c = SimConfig::paper_model();
        assert_eq!(c.host_policy, HostStartPolicy::AfterAllSatellites);
        assert_eq!(c.uplink, UplinkModel::SerialAfterCompute);
        assert!(!c.record_trace);
    }

    #[test]
    fn serde_round_trip() {
        let c = SimConfig::eager();
        let s = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
