//! Deterministic discrete-event queue.
//!
//! Events fire in (time, sequence) order: ties resolve by insertion order,
//! so a simulation is a pure function of its inputs — no hash-map or thread
//! nondeterminism can leak into results.

use hsa_graph::Cost;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation clock value (ticks, same unit as [`Cost`]).
pub type SimTime = Cost;

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    payloads: Vec<Option<E>>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.payloads.len() as u64;
        self.payloads.push(Some(event));
        self.heap.push(Reverse((time, seq)));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((t, seq)) = self.heap.pop()?;
        let e = self.payloads[seq as usize]
            .take()
            .expect("event payload taken twice");
        Some((t, e))
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u64) -> SimTime {
        Cost::new(v)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "c");
        q.push(t(1), "a");
        q.push(t(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_resolve_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(2), 1);
        q.push(t(2), 2);
        q.push(t(2), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(t(10), "late");
        q.push(t(1), "early");
        assert_eq!(q.pop().unwrap(), (t(1), "early"));
        q.push(t(5), "mid");
        assert_eq!(q.pop().unwrap(), (t(5), "mid"));
        assert_eq!(q.pop().unwrap(), (t(10), "late"));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
