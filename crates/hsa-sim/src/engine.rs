//! The discrete-event engine: executes one context frame through a deployed
//! CRU tree on the star platform.
//!
//! Resources: one CPU per satellite, one uplink per satellite, one host CPU.
//! Work: the cut's satellite subtrees (computed in post-order on their
//! satellite, results transmitted up), raw sensor frames for host-side
//! leaves, then the host-side CRUs. Under the paper's timing model
//! ([`crate::SimConfig::paper_model`]) the simulated end-to-end delay is
//! *provably* the analytic objective `S + B`; the relaxed knobs quantify
//! the model's conservatism (experiment T4).

use crate::{EventQueue, HostStartPolicy, SimConfig, SimTime, UplinkModel};
use hsa_assign::{AssignError, Prepared};
use hsa_graph::Cost;
use hsa_tree::{CruId, Cut, SatelliteId, TreeEdge};
use serde::Serialize;

/// A resource in the Gantt trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Resource {
    /// The host CPU.
    HostCpu,
    /// A satellite's CPU.
    SatelliteCpu(SatelliteId),
    /// A satellite's uplink to the host.
    Uplink(SatelliteId),
}

/// A busy interval of a resource.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Busy {
    /// The resource.
    pub resource: Resource,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
    /// What it was doing (CRU name or message description).
    pub label: String,
}

/// Result of simulating one frame.
#[derive(Clone, Debug, Serialize)]
pub struct SimResult {
    /// Completion time of the root CRU — the end-to-end delay.
    pub end_to_end: SimTime,
    /// Per-satellite time of last activity (compute or transmit).
    pub satellite_finish: Vec<SimTime>,
    /// When the host executed its first CRU.
    pub host_start: SimTime,
    /// Total host compute time (Σ h over host CRUs).
    pub host_busy: Cost,
    /// Number of messages that crossed satellite uplinks.
    pub messages: usize,
    /// Busy intervals (only when `record_trace`).
    pub trace: Vec<Busy>,
}

#[derive(Debug)]
enum Event {
    /// A satellite finished computing one work item.
    SatItemDone { sat: u32, item: usize },
    /// A satellite's uplink finished transmitting one message.
    MsgArrived { sat: u32, item: usize },
    /// The host finished one CRU.
    HostDone { cru: CruId },
}

/// One unit of satellite work: an optional compute phase (a cut subtree in
/// post-order) followed by one uplink message.
#[derive(Clone, Debug)]
struct WorkItem {
    edge: TreeEdge,
    /// CRUs computed on the satellite for this item (empty for raw-sensor
    /// items).
    compute: Vec<CruId>,
    compute_time: Cost,
    msg_time: Cost,
    /// Host CRU that consumes this message: parent(c) for `Parent(c)` cuts,
    /// the leaf itself for `Sensor` cuts. `None` when the cut node is the
    /// root (single-node trees).
    consumer: Option<CruId>,
}

/// Simulates one frame of the deployed tree. The cut must be valid for the
/// prepared instance.
pub fn simulate(prep: &Prepared<'_>, cut: &Cut, cfg: &SimConfig) -> Result<SimResult, AssignError> {
    cut.validate(&prep.tree)?;
    let tree: &hsa_tree::CruTree = &prep.tree;
    let costs: &hsa_tree::CostModel = &prep.costs;
    let n_sats = prep.n_satellites() as usize;

    // ---- Partition work ----------------------------------------------
    let below = cut.below_mask(tree);
    // Satellite work items in cut (leaf-interval) order per satellite.
    let mut items: Vec<Vec<WorkItem>> = vec![Vec::new(); n_sats];
    for &edge in cut.edges() {
        let colour = prep
            .colouring
            .edge_colour(edge)
            .satellite()
            .ok_or_else(|| AssignError::Internal(format!("conflicted cut edge {edge}")))?;
        let item = match edge {
            TreeEdge::Parent(c) => {
                let compute: Vec<CruId> = postorder_of_subtree(tree, c);
                let compute_time: Cost = compute.iter().map(|&x| costs.s(x)).sum();
                WorkItem {
                    edge,
                    compute,
                    compute_time,
                    msg_time: costs.c_up(c),
                    consumer: tree.parent(c),
                }
            }
            TreeEdge::Sensor(l) => WorkItem {
                edge,
                compute: Vec::new(),
                compute_time: Cost::ZERO,
                msg_time: costs.c_raw(l),
                consumer: Some(l),
            },
        };
        items[colour.index()].push(item);
    }

    // Host CRUs in post-order (execution order).
    let host_order: Vec<CruId> = tree
        .postorder()
        .into_iter()
        .filter(|c| !below[c.index()])
        .collect();
    let host_busy: Cost = host_order.iter().map(|&c| costs.h(c)).sum();
    let host_rank: Vec<usize> = {
        let mut r = vec![usize::MAX; tree.len()];
        for (i, &c) in host_order.iter().enumerate() {
            r[c.index()] = i;
        }
        r
    };

    // ---- Satellite schedules (event-driven) ---------------------------
    let mut q: EventQueue<Event> = EventQueue::new();
    let mut trace: Vec<Busy> = Vec::new();
    let mut sat_cpu_free = vec![Cost::ZERO; n_sats];
    let mut sat_link_free = vec![Cost::ZERO; n_sats];
    let mut sat_items_done = vec![0usize; n_sats];
    let mut sat_finish = vec![Cost::ZERO; n_sats];
    let total_msgs: usize = items.iter().map(|v| v.len()).sum();

    // Kick off: first compute item per satellite (or straight to uplink
    // when the satellite model defers transmissions).
    for (s, sat_items) in items.iter().enumerate() {
        if sat_items.is_empty() {
            continue;
        }
        schedule_item_compute(
            &mut q,
            &mut trace,
            cfg,
            tree,
            sat_items,
            0,
            s,
            &mut sat_cpu_free,
        );
    }

    // ---- Host state ----------------------------------------------------
    // For each host CRU: number of unsatisfied prerequisites.
    let mut needs = vec![0u32; tree.len()];
    for &c in &host_order {
        let mut n = 0;
        if tree.is_leaf(c) {
            n += 1; // its raw sensor message
        }
        n += tree.children(c).len() as u32; // each child: a host CRU or a message
        needs[c.index()] = n;
    }
    let mut msgs_arrived = 0usize;
    let mut host_ready: Vec<CruId> = Vec::new();
    let mut host_free = Cost::ZERO;
    let mut host_idle = true;
    let mut host_start: Option<SimTime> = None;
    let mut end_to_end = Cost::ZERO;

    // Seed ready CRUs that need nothing (internal host CRUs whose children
    // are all... impossible: every child is a prerequisite; only possible
    // if the tree were empty of leaves — cannot happen).
    debug_assert!(host_order.iter().all(|&c| needs[c.index()] > 0));

    // ---- Event loop -----------------------------------------------------
    while let Some((t, ev)) = q.pop() {
        match ev {
            Event::SatItemDone { sat, item } => {
                let s = sat as usize;
                sat_items_done[s] += 1;
                // Uplink: either immediately (overlap) or after every
                // compute item is done (paper model).
                match cfg.uplink {
                    UplinkModel::OverlapCompute => {
                        schedule_msg(
                            &mut q,
                            &mut trace,
                            cfg,
                            &items[s],
                            item,
                            s,
                            t,
                            &mut sat_link_free,
                        );
                    }
                    UplinkModel::SerialAfterCompute => {
                        if sat_items_done[s] == items[s].len() {
                            // All compute done: flush messages in cut order.
                            for i in 0..items[s].len() {
                                schedule_msg(
                                    &mut q,
                                    &mut trace,
                                    cfg,
                                    &items[s],
                                    i,
                                    s,
                                    t,
                                    &mut sat_link_free,
                                );
                            }
                        }
                    }
                }
                // Next compute item.
                let next = item + 1;
                if next < items[s].len() {
                    schedule_item_compute(
                        &mut q,
                        &mut trace,
                        cfg,
                        tree,
                        &items[s],
                        next,
                        s,
                        &mut sat_cpu_free,
                    );
                }
            }
            Event::MsgArrived { sat, item } => {
                let s = sat as usize;
                msgs_arrived += 1;
                sat_finish[s] = sat_finish[s].max(t);
                let it = &items[s][item];
                if let Some(consumer) = it.consumer {
                    let slot = &mut needs[consumer.index()];
                    debug_assert!(*slot > 0);
                    *slot -= 1;
                    if *slot == 0 {
                        host_ready.push(consumer);
                    }
                }
                dispatch_host(
                    &mut q,
                    &mut trace,
                    cfg,
                    prep,
                    &host_rank,
                    &mut host_ready,
                    &mut host_free,
                    &mut host_idle,
                    &mut host_start,
                    t,
                    msgs_arrived,
                    total_msgs,
                );
            }
            Event::HostDone { cru } => {
                host_idle = true;
                if cru == tree.root() {
                    end_to_end = t;
                }
                if let Some(p) = tree.parent(cru) {
                    if !below[p.index()] {
                        let slot = &mut needs[p.index()];
                        debug_assert!(*slot > 0);
                        *slot -= 1;
                        if *slot == 0 {
                            host_ready.push(p);
                        }
                    }
                }
                dispatch_host(
                    &mut q,
                    &mut trace,
                    cfg,
                    prep,
                    &host_rank,
                    &mut host_ready,
                    &mut host_free,
                    &mut host_idle,
                    &mut host_start,
                    t,
                    msgs_arrived,
                    total_msgs,
                );
            }
        }
    }

    Ok(SimResult {
        end_to_end,
        satellite_finish: sat_finish,
        host_start: host_start.unwrap_or(Cost::ZERO),
        host_busy,
        messages: total_msgs,
        trace,
    })
}

#[allow(clippy::too_many_arguments)]
fn schedule_item_compute(
    q: &mut EventQueue<Event>,
    trace: &mut Vec<Busy>,
    cfg: &SimConfig,
    tree: &hsa_tree::CruTree,
    items: &[WorkItem],
    idx: usize,
    sat: usize,
    cpu_free: &mut [Cost],
) {
    let it = &items[idx];
    let start = cpu_free[sat];
    let end = start + it.compute_time;
    cpu_free[sat] = end;
    if cfg.record_trace && !it.compute.is_empty() {
        let names: Vec<&str> = it
            .compute
            .iter()
            .map(|&c| tree.node_unchecked(c).name.as_str())
            .collect();
        trace.push(Busy {
            resource: Resource::SatelliteCpu(SatelliteId(sat as u32)),
            start,
            end,
            label: names.join("+"),
        });
    }
    q.push(
        end,
        Event::SatItemDone {
            sat: sat as u32,
            item: idx,
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn schedule_msg(
    q: &mut EventQueue<Event>,
    trace: &mut Vec<Busy>,
    cfg: &SimConfig,
    items: &[WorkItem],
    idx: usize,
    sat: usize,
    ready: SimTime,
    link_free: &mut [Cost],
) {
    let it = &items[idx];
    let start = link_free[sat].max(ready);
    let end = start + it.msg_time;
    link_free[sat] = end;
    if cfg.record_trace {
        trace.push(Busy {
            resource: Resource::Uplink(SatelliteId(sat as u32)),
            start,
            end,
            label: format!("msg {}", it.edge),
        });
    }
    q.push(
        end,
        Event::MsgArrived {
            sat: sat as u32,
            item: idx,
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn dispatch_host(
    q: &mut EventQueue<Event>,
    trace: &mut Vec<Busy>,
    cfg: &SimConfig,
    prep: &Prepared<'_>,
    host_rank: &[usize],
    ready: &mut Vec<CruId>,
    host_free: &mut Cost,
    host_idle: &mut bool,
    host_start: &mut Option<SimTime>,
    now: SimTime,
    msgs_arrived: usize,
    total_msgs: usize,
) {
    if cfg.host_policy == HostStartPolicy::AfterAllSatellites && msgs_arrived < total_msgs {
        return; // the paper's barrier: no host work before the last message
    }
    if !*host_idle || ready.is_empty() {
        return;
    }
    // Deterministic pick: smallest post-order rank (a valid topological
    // order of the host subtree).
    ready.sort_by_key(|c| host_rank[c.index()]);
    let cru = ready.remove(0);
    let start = (*host_free).max(now);
    let end = start + prep.costs.h(cru);
    *host_free = end;
    *host_idle = false;
    host_start.get_or_insert(start);
    if cfg.record_trace {
        trace.push(Busy {
            resource: Resource::HostCpu,
            start,
            end,
            label: prep.tree.node_unchecked(cru).name.clone(),
        });
    }
    q.push(end, Event::HostDone { cru });
}

fn postorder_of_subtree(tree: &hsa_tree::CruTree, c: CruId) -> Vec<CruId> {
    fn rec(tree: &hsa_tree::CruTree, c: CruId, out: &mut Vec<CruId>) {
        for &ch in tree.children(c) {
            rec(tree, ch, out);
        }
        out.push(c);
    }
    let mut out = Vec::new();
    rec(tree, c, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_assign::evaluate_cut;
    use hsa_tree::figures::fig2_tree;

    #[test]
    fn paper_model_matches_analytic_delay_on_fig2() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let col = prep.colouring.clone();
        for cut in [Cut::all_on_host(&t), Cut::max_offload(&t, &col)] {
            let (_a, rep) = evaluate_cut(&prep, &cut).unwrap();
            let sim = simulate(&prep, &cut, &SimConfig::paper_model()).unwrap();
            assert_eq!(sim.end_to_end, rep.end_to_end, "cut {:?}", cut.edges());
            // Per-satellite finishes equal the analytic loads.
            for (i, load) in rep.satellite_loads.iter().enumerate() {
                assert_eq!(sim.satellite_finish[i], load.total, "sat {i}");
            }
            assert_eq!(sim.host_busy, rep.host_time);
        }
    }

    #[test]
    fn eager_is_never_slower() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::max_offload(&t, &prep.colouring);
        let paper = simulate(&prep, &cut, &SimConfig::paper_model()).unwrap();
        let eager = simulate(&prep, &cut, &SimConfig::eager()).unwrap();
        assert!(eager.end_to_end <= paper.end_to_end);
    }

    #[test]
    fn trace_is_recorded_and_non_overlapping_per_resource() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::max_offload(&t, &prep.colouring);
        let cfg = SimConfig {
            record_trace: true,
            ..SimConfig::paper_model()
        };
        let sim = simulate(&prep, &cut, &cfg).unwrap();
        assert!(!sim.trace.is_empty());
        // Per-resource intervals must not overlap.
        let mut by_resource: std::collections::BTreeMap<String, Vec<(Cost, Cost)>> =
            Default::default();
        for b in &sim.trace {
            by_resource
                .entry(format!("{:?}", b.resource))
                .or_default()
                .push((b.start, b.end));
        }
        for (res, mut iv) in by_resource {
            iv.sort();
            for w in iv.windows(2) {
                assert!(w[0].1 <= w[1].0, "{res} overlaps: {w:?}");
            }
        }
    }

    #[test]
    fn single_node_tree() {
        let t = hsa_tree::TreeBuilder::new("only").build();
        let mut m = hsa_tree::CostModel::zeroed(&t, 1);
        m.set_host_time(CruId(0), Cost::new(7));
        m.pin_leaf(CruId(0), SatelliteId(0), Cost::new(3));
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::all_on_host(&t);
        let sim = simulate(&prep, &cut, &SimConfig::paper_model()).unwrap();
        // Raw transfer 3, then host compute 7.
        assert_eq!(sim.end_to_end, Cost::new(10));
        assert_eq!(sim.messages, 1);
    }

    #[test]
    fn host_barrier_delays_start() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::max_offload(&t, &prep.colouring);
        let sim = simulate(&prep, &cut, &SimConfig::paper_model()).unwrap();
        let (_a, rep) = evaluate_cut(&prep, &cut).unwrap();
        assert_eq!(sim.host_start, rep.bottleneck);
    }
}
