//! # hsa-sim — discrete-event simulation of the host–satellites platform
//!
//! The paper evaluates analytically on per-CRU cost numbers; its intended
//! platform was the MobiHealth-style PDA + sensor-box testbed. This crate
//! is the substitute substrate (DESIGN.md §5): a deterministic
//! discrete-event simulator that executes a deployed CRU tree on the star
//! platform — one CPU per satellite, one uplink per satellite, one host CPU.
//!
//! * [`simulate`] runs one context frame. Under [`SimConfig::paper_model`]
//!   the measured end-to-end delay **equals** the analytic objective
//!   `S + B`, which is exactly the validation the reproduction needs; the
//!   [`HostStartPolicy::EagerPrecedence`] / [`UplinkModel::OverlapCompute`]
//!   relaxations quantify how conservative the paper's model is
//!   (experiment T4).
//! * [`simulate_periodic`] extends to streamed frames (pipelining,
//!   saturation, steady-state latency) — the regime the tele-monitoring
//!   scenario actually runs in.
//! * [`render_gantt`] / [`render_table`] visualise traces.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod engine;
mod payload;
mod queue;
mod throughput;
mod trace;

pub use config::{HostStartPolicy, SimConfig, UplinkModel};
pub use engine::{simulate, Busy, Resource, SimResult};
pub use payload::{sensor_frame, LinkProfile};
pub use queue::{EventQueue, SimTime};
pub use throughput::{simulate_periodic, ThroughputResult};
pub use trace::{render_gantt, render_table};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        render_gantt, simulate, simulate_periodic, HostStartPolicy, SimConfig, SimResult,
        UplinkModel,
    };
}
