//! Text Gantt rendering of simulation traces (used by examples and the
//! repro harness for the tele-monitoring scenario, experiment T8).

use crate::{Busy, Resource, SimResult};
use hsa_graph::Cost;
use std::fmt::Write as _;

/// Renders a proportional text Gantt chart of the trace, one resource per
/// row, `width` characters across the full makespan:
///
/// ```text
/// host     |····················▓▓▓▓▓▓▓▓▓▓|
/// sat0 cpu |▓▓▓▓▓▓▓▓······················|
/// sat0 up  |········▓▓▓···················|
/// ```
pub fn render_gantt(result: &SimResult, width: usize) -> String {
    let width = width.max(10);
    let span = result.end_to_end.max(Cost::new(1)).ticks();
    // Group intervals per resource, preserving first-seen order.
    let mut order: Vec<Resource> = Vec::new();
    for b in &result.trace {
        if !order.contains(&b.resource) {
            order.push(b.resource);
        }
    }
    order.sort_by_key(|r| match r {
        Resource::HostCpu => (0u32, 0u32),
        Resource::SatelliteCpu(s) => (1, s.0),
        Resource::Uplink(s) => (2, s.0),
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "end-to-end = {} ticks; {} messages",
        result.end_to_end, result.messages
    );
    for res in order {
        let mut row = vec!['·'; width];
        for b in result.trace.iter().filter(|b| b.resource == res) {
            let a = (b.start.ticks().saturating_mul(width as u64) / span) as usize;
            let z = (b.end.ticks().saturating_mul(width as u64) / span) as usize;
            let z = z.clamp(a.min(width - 1), width);
            for slot in row
                .iter_mut()
                .take(z.max(a + 1).min(width))
                .skip(a.min(width - 1))
            {
                *slot = '▓';
            }
        }
        let name = match res {
            Resource::HostCpu => "host    ".to_string(),
            Resource::SatelliteCpu(s) => format!("sat{} cpu", s.0),
            Resource::Uplink(s) => format!("sat{} up ", s.0),
        };
        let bar: String = row.into_iter().collect();
        let _ = writeln!(out, "{name} |{bar}|");
    }
    out
}

/// Lists the busy intervals as a table (resource, start, end, label).
pub fn render_table(trace: &[Busy]) -> String {
    let mut out = String::from("resource        start      end        what\n");
    for b in trace {
        let name = match b.resource {
            Resource::HostCpu => "host".to_string(),
            Resource::SatelliteCpu(s) => format!("sat{}-cpu", s.0),
            Resource::Uplink(s) => format!("sat{}-uplink", s.0),
        };
        let _ = writeln!(
            out,
            "{name:<15} {:>9} {:>9}  {}",
            b.start.ticks(),
            b.end.ticks(),
            b.label
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use hsa_assign::Prepared;
    use hsa_tree::figures::fig2_tree;
    use hsa_tree::Cut;

    fn traced() -> SimResult {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::max_offload(&t, &prep.colouring);
        let cfg = SimConfig {
            record_trace: true,
            ..SimConfig::paper_model()
        };
        simulate(&prep, &cut, &cfg).unwrap()
    }

    #[test]
    fn gantt_renders_every_resource() {
        let sim = traced();
        let g = render_gantt(&sim, 60);
        assert!(g.contains("host"));
        assert!(g.contains("sat0 cpu"));
        assert!(g.contains("sat0 up"));
        assert!(g.contains("▓"));
        // Every row has the same width between the bars.
        let widths: Vec<usize> = g
            .lines()
            .skip(1)
            .map(|l| l.chars().filter(|&c| c == '▓' || c == '·').count())
            .collect();
        assert!(widths.iter().all(|&w| w == widths[0]));
    }

    #[test]
    fn table_lists_all_intervals() {
        let sim = traced();
        let t = render_table(&sim.trace);
        assert_eq!(t.lines().count(), sim.trace.len() + 1);
        assert!(t.contains("msg"));
    }

    #[test]
    fn empty_trace_renders_header_only() {
        let mut sim = traced();
        sim.trace.clear();
        let g = render_gantt(&sim, 40);
        assert_eq!(g.lines().count(), 1);
    }
}
