//! Layout-equivalence oracle for the flat-arena [`FrontierSet`].
//!
//! The arena encoding (CSR point/edge arrays, DESIGN.md §11) is a pure
//! re-layout: it must hold *bit-identical* frontiers to the nested
//! `Vec<Frontier>` the cover DP emits — same points, same order, same
//! edges, same derived thetas — on every instance, including interleaved
//! colourings and along incremental `refresh_in_place` trajectories. The
//! reference implementation is [`colour_frontiers`], which still builds
//! the nested form directly; these properties pin the arena to it.

use hsa_assign::{
    colour_frontiers, dirty_colours, ExpandedConfig, Frontier, FrontierSet, Prepared,
};
use hsa_graph::Cost;
use hsa_tree::{CostModel, CruId, CruNode, CruTree, SatelliteId};
use hsa_workloads::{drift_trace, random_scenario, DriftConfig, RandomTreeParams};
use proptest::prelude::*;
use proptest::TestCaseError;

#[derive(Clone, Debug)]
struct Instance {
    tree: CruTree,
    costs: CostModel,
}

fn arb_instance(max_nodes: usize, max_sats: u32) -> impl Strategy<Value = Instance> {
    (2usize..=max_nodes, 1u32..=max_sats).prop_flat_map(move |(n, k)| {
        let parents = proptest::collection::vec(0usize..n, n - 1);
        let costs = proptest::collection::vec((0u64..50, 0u64..50, 0u64..25, 0u64..25), n);
        let sats = proptest::collection::vec(0u32..k, n);
        (parents, costs, sats).prop_map(move |(parents, costvec, sats)| {
            let mut nodes: Vec<CruNode> = (0..n)
                .map(|i| CruNode {
                    parent: None,
                    children: Vec::new(),
                    name: format!("n{i}"),
                })
                .collect();
            for i in 1..n {
                let p = parents[i - 1] % i;
                nodes[i].parent = Some(CruId(p as u32));
                nodes[p].children.push(CruId(i as u32));
            }
            let tree = CruTree::from_parts(nodes, CruId(0)).unwrap();
            let mut m = CostModel::zeroed(&tree, k);
            for i in 0..n {
                let id = CruId(i as u32);
                let (h, s, cu, cr) = costvec[i];
                m.set_host_time(id, Cost::new(h));
                m.set_satellite_time(id, Cost::new(s));
                if i != 0 {
                    m.set_comm_up(id, Cost::new(cu));
                }
                if tree.is_leaf(id) {
                    m.pin_leaf(id, SatelliteId(sats[i] % k), Cost::new(cr));
                }
            }
            Instance { tree, costs: m }
        })
    })
}

/// Asserts `fs` is byte-for-byte the arena form of `nested`: every point
/// field, every edge list, the derived θ ladder and the composite count.
fn assert_arena_matches(fs: &FrontierSet, nested: &[Frontier]) -> Result<(), TestCaseError> {
    prop_assert_eq!(fs.n_colours(), nested.len());
    prop_assert_eq!(
        &fs.to_nested(),
        nested,
        "to_nested must reproduce the reference"
    );
    let mut composites = 0u64;
    let mut thetas: Vec<Cost> = Vec::new();
    for (s, reference) in nested.iter().enumerate() {
        let f = fs.colour(s);
        prop_assert_eq!(f.len(), reference.len(), "colour {} point count", s);
        for (i, p) in reference.iter().enumerate() {
            prop_assert_eq!(f.sigma[i], p.sigma, "colour {} point {} sigma", s, i);
            prop_assert_eq!(f.beta[i], p.beta, "colour {} point {} beta", s, i);
            prop_assert_eq!(
                f.point_edges(i),
                &p.edges[..],
                "colour {} point {} edges",
                s,
                i
            );
            prop_assert_eq!(f.point(i), p.clone(), "colour {} point {} view", s, i);
            if i > 0 {
                // The invariant the threshold binary search leans on.
                prop_assert!(f.beta[i] > f.beta[i - 1], "betas strictly ascend");
                prop_assert!(f.sigma[i] < f.sigma[i - 1], "sigmas strictly descend");
            }
        }
        composites += reference.len() as u64;
        thetas.extend(reference.iter().map(|p| p.beta));
    }
    thetas.sort();
    thetas.dedup();
    prop_assert_eq!(&fs.thetas, &thetas, "theta ladder");
    prop_assert_eq!(fs.composites, composites, "composite count");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Freshly prepared arenas hold exactly the nested reference frontiers.
    #[test]
    fn arena_prepare_matches_nested_reference(inst in arb_instance(14, 4)) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        let cfg = ExpandedConfig::default();
        let fs = FrontierSet::prepare(&prep, &cfg).unwrap();
        let nested = colour_frontiers(&prep, &cfg).unwrap();
        assert_arena_matches(&fs, &nested)?;
    }

    /// Same oracle restricted to *interleaved* colourings, where a colour's
    /// top nodes come from several bands and the CSR grouping in
    /// `ColourTops` actually reorders work relative to a preorder scan.
    #[test]
    fn arena_matches_reference_on_interleaved_instances(inst in arb_instance(14, 3)) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        prop_assume!(!prep.colouring.is_contiguous());
        let cfg = ExpandedConfig::default();
        let fs = FrontierSet::prepare(&prep, &cfg).unwrap();
        let nested = colour_frontiers(&prep, &cfg).unwrap();
        assert_arena_matches(&fs, &nested)?;
    }

    /// Along a drift trace, `refresh_in_place` (dirty-colour splice into the
    /// live arenas) stays bit-identical to a from-scratch prepare *and* to
    /// the nested reference at every step.
    #[test]
    fn refresh_in_place_matches_reference_along_drift(
        seed in 0u64..1024,
        drift_seed in 0u64..1024,
        n_crus in 6usize..24,
        n_satellites in 2u32..5,
        magnitude_permille in 50u32..400,
        churn_permille in 0u32..500,
    ) {
        let params = RandomTreeParams {
            n_crus,
            n_satellites,
            ..RandomTreeParams::default()
        };
        let base = random_scenario(&params, seed);
        let drift = drift_trace(&base, &DriftConfig {
            steps: 8,
            magnitude_permille,
            touched_per_step: 2,
            subtree_permille: 200,
            churn_permille,
            seed: drift_seed,
        });
        let cfg = ExpandedConfig::default();
        let mut costs = base.costs.clone();
        let mut prep = Prepared::new_owned(base.tree.clone(), costs.clone()).unwrap();
        let mut fs = FrontierSet::prepare(&prep, &cfg).unwrap();
        for (i, delta) in drift.deltas.iter().enumerate() {
            delta.apply(&base.tree, &mut costs).unwrap();
            let next = Prepared::new_owned(base.tree.clone(), costs.clone()).unwrap();
            let dirty = dirty_colours(&prep, &next);
            fs.refresh_in_place(&next, &cfg, &dirty.dirty).unwrap();
            let scratch = FrontierSet::prepare(&next, &cfg).unwrap();
            prop_assert_eq!(&fs, &scratch, "step {}: refreshed arenas must equal scratch", i);
            let nested = colour_frontiers(&next, &cfg).unwrap();
            assert_arena_matches(&fs, &nested)?;
            prep = next;
        }
        prop_assert_eq!(&costs, &drift.final_costs, "trace replay must land on final_costs");
    }
}
