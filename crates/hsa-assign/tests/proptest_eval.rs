//! Byte-identity of the allocation-free answer path: [`evaluate_cut_in`]
//! (σ/β labels + pre-order index, reused scratch) must reproduce
//! [`evaluate_cut`] (the walking oracle) *exactly* — same `Assignment`
//! vectors in the same order, same `DelayReport` down to every tick — on
//! every valid cut of random instances. This identity is what lets the
//! service hand out fast-path answers under verify mode without a
//! re-derivation.
//!
//! Green under `PROPTEST_SEED` 1–3 (and the default stream).

use hsa_assign::{evaluate_cut, evaluate_cut_in, EvalScratch, Prepared, Solution, SolveStats};
use hsa_graph::{Cost, Lambda};
use hsa_tree::{for_each_cut, CostModel, CruId, CruNode, CruTree, SatelliteId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Instance {
    tree: CruTree,
    costs: CostModel,
}

fn arb_instance(max_nodes: usize, max_sats: u32) -> impl Strategy<Value = Instance> {
    (2usize..=max_nodes, 1u32..=max_sats).prop_flat_map(move |(n, k)| {
        let parents = proptest::collection::vec(0usize..n, n - 1);
        let costs = proptest::collection::vec((0u64..50, 0u64..50, 0u64..25, 0u64..25), n);
        let sats = proptest::collection::vec(0u32..k, n);
        (parents, costs, sats).prop_map(move |(parents, costvec, sats)| {
            let mut nodes: Vec<CruNode> = (0..n)
                .map(|i| CruNode {
                    parent: None,
                    children: Vec::new(),
                    name: format!("n{i}"),
                })
                .collect();
            for i in 1..n {
                let p = parents[i - 1] % i;
                nodes[i].parent = Some(CruId(p as u32));
                nodes[p].children.push(CruId(i as u32));
            }
            let tree = CruTree::from_parts(nodes, CruId(0)).unwrap();
            let mut m = CostModel::zeroed(&tree, k);
            for i in 0..n {
                let id = CruId(i as u32);
                let (h, s, cu, cr) = costvec[i];
                m.set_host_time(id, Cost::new(h));
                m.set_satellite_time(id, Cost::new(s));
                if i != 0 {
                    m.set_comm_up(id, Cost::new(cu));
                }
                if tree.is_leaf(id) {
                    m.pin_leaf(id, SatelliteId(sats[i] % k), Cost::new(cr));
                }
            }
            Instance { tree, costs: m }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Walk-free == walking oracle on *every* valid coloured cut, with one
    /// scratch reused across the whole enumeration (steady-state shape).
    #[test]
    fn eval_in_is_byte_identical_on_every_cut(inst in arb_instance(10, 4)) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        let mut scratch = EvalScratch::new();
        let mut checked = 0u32;
        for_each_cut(&inst.tree, &|e| prep.colouring.cuttable(e), &mut |cut| {
            let oracle = evaluate_cut(&prep, cut).unwrap();
            let fast = evaluate_cut_in(&prep, cut, &mut scratch).unwrap();
            assert_eq!(fast.0, oracle.0, "assignment diverges on cut {:?}", cut.edges());
            assert_eq!(fast.1, oracle.1, "report diverges on cut {:?}", cut.edges());
            checked += 1;
        });
        prop_assert!(checked >= 1);
    }

    /// `Solution::from_cut_in` carries the identity through to the objective
    /// and stats for the extreme cuts at arbitrary λ.
    #[test]
    fn from_cut_in_matches_from_cut(
        inst in arb_instance(10, 4),
        num in 0u32..=4,
    ) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        let lambda = Lambda::new(num, 4).unwrap();
        let mut scratch = EvalScratch::new();
        for cut in [
            hsa_tree::Cut::all_on_host(&inst.tree),
            hsa_tree::Cut::max_offload(&inst.tree, &prep.colouring),
        ] {
            let a = Solution::from_cut(&prep, cut.clone(), lambda, SolveStats::default()).unwrap();
            let b = Solution::from_cut_in(&prep, cut, lambda, SolveStats::default(), &mut scratch)
                .unwrap();
            prop_assert_eq!(a.objective, b.objective);
            prop_assert_eq!(a.report, b.report);
            prop_assert_eq!(a.assignment, b.assignment);
            prop_assert_eq!(&a.cut, &b.cut);
        }
    }

    /// The identity survives a costs swap + restore on the same `Prepared`
    /// (the incremental re-solve path): after `restore`, the walk-free
    /// evaluation still matches the oracle on the rolled-back instance.
    #[test]
    fn eval_in_survives_update_and_restore(
        inst in arb_instance(9, 3),
        scale in 2u64..5,
    ) {
        let mut prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        let mut bumped = inst.costs.clone();
        for i in 0..inst.tree.len() {
            let c = CruId(i as u32);
            let h = bumped.h(c);
            bumped.set_host_time(c, h.saturating_mul(scale));
        }
        let (parts, _dirty) = prep.update_costs(bumped).unwrap();
        let cut = hsa_tree::Cut::max_offload(&prep.tree, &prep.colouring);
        let mut scratch = EvalScratch::new();
        let (a1, r1) = evaluate_cut_in(&prep, &cut, &mut scratch).unwrap();
        let (a2, r2) = evaluate_cut(&prep, &cut).unwrap();
        prop_assert_eq!(a1, a2);
        prop_assert_eq!(r1, r2);
        prep.restore(parts);
        let cut = hsa_tree::Cut::max_offload(&prep.tree, &prep.colouring);
        let (b1, s1) = evaluate_cut_in(&prep, &cut, &mut scratch).unwrap();
        let (b2, s2) = evaluate_cut(&prep, &cut).unwrap();
        prop_assert_eq!(b1, b2);
        prop_assert_eq!(s1, s2);
    }

    /// Error parity: a cut that the oracle rejects (host-forced node below
    /// the cut) is rejected identically by the walk-free path.
    #[test]
    fn eval_in_matches_oracle_errors(inst in arb_instance(10, 4)) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        let mut scratch = EvalScratch::new();
        for_each_cut(&inst.tree, &|_| true, &mut |cut| {
            let oracle = evaluate_cut(&prep, cut);
            let fast = evaluate_cut_in(&prep, cut, &mut scratch);
            match (oracle, fast) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(ea), Err(eb)) => assert_eq!(format!("{ea}"), format!("{eb}")),
                (a, b) => panic!("divergent outcomes: {a:?} vs {b:?}"),
            }
        });
    }
}
