//! The central correctness property of the reproduction: on random costed
//! trees, the paper's adapted SSB algorithm, the full-expansion solver and
//! exhaustive brute force all find the same optimum, for arbitrary λ —
//! including instances with interleaved colours, where the branch-completed
//! expansion is required (DESIGN.md §2).

use hsa_assign::{
    all_solvers, BruteForce, Expanded, PaperSsb, Prepared, SbObjective, Solution, Solver,
};
use hsa_graph::{Cost, Lambda};
use hsa_tree::{CostModel, CruId, CruNode, CruTree, SatelliteId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Instance {
    tree: CruTree,
    costs: CostModel,
}

fn arb_instance(max_nodes: usize, max_sats: u32) -> impl Strategy<Value = Instance> {
    (2usize..=max_nodes, 1u32..=max_sats).prop_flat_map(move |(n, k)| {
        let parents = proptest::collection::vec(0usize..n, n - 1);
        let costs = proptest::collection::vec((0u64..50, 0u64..50, 0u64..25, 0u64..25), n);
        let sats = proptest::collection::vec(0u32..k, n);
        (parents, costs, sats).prop_map(move |(parents, costvec, sats)| {
            let mut nodes: Vec<CruNode> = (0..n)
                .map(|i| CruNode {
                    parent: None,
                    children: Vec::new(),
                    name: format!("n{i}"),
                })
                .collect();
            for i in 1..n {
                let p = parents[i - 1] % i;
                nodes[i].parent = Some(CruId(p as u32));
                nodes[p].children.push(CruId(i as u32));
            }
            let tree = CruTree::from_parts(nodes, CruId(0)).unwrap();
            let mut m = CostModel::zeroed(&tree, k);
            for i in 0..n {
                let id = CruId(i as u32);
                let (h, s, cu, cr) = costvec[i];
                m.set_host_time(id, Cost::new(h));
                m.set_satellite_time(id, Cost::new(s));
                if i != 0 {
                    m.set_comm_up(id, Cost::new(cu));
                }
                if tree.is_leaf(id) {
                    m.pin_leaf(id, SatelliteId(sats[i] % k), Cost::new(cr));
                }
            }
            Instance { tree, costs: m }
        })
    })
}

fn arb_lambda() -> impl Strategy<Value = Lambda> {
    (0u32..=5, 1u32..=5).prop_map(|(a, b)| {
        let den = b.max(1);
        Lambda::new(a.min(den), den).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// paper-ssb ≡ expanded ≡ brute force, any λ, any instance.
    #[test]
    fn all_exact_solvers_agree(inst in arb_instance(11, 4), lambda in arb_lambda()) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        let brute = BruteForce::default().solve(&prep, lambda).unwrap();
        let expanded = Expanded::default().solve(&prep, lambda).unwrap();
        let paper = PaperSsb::default().solve(&prep, lambda).unwrap();
        prop_assert_eq!(brute.objective, expanded.objective,
            "expanded disagrees with brute force (λ={})", lambda);
        prop_assert_eq!(brute.objective, paper.objective,
            "paper-ssb disagrees with brute force (λ={})", lambda);
    }

    /// Exactness specifically on *interleaved* instances (colour appears in
    /// ≥2 bands) — the regime the paper's contiguous expansion alone cannot
    /// handle.
    #[test]
    fn exact_on_interleaved_instances(inst in arb_instance(11, 3), lambda in arb_lambda()) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        prop_assume!(!prep.colouring.is_contiguous());
        let brute = BruteForce::default().solve(&prep, lambda).unwrap();
        let paper = PaperSsb::default().solve(&prep, lambda).unwrap();
        prop_assert_eq!(brute.objective, paper.objective);
    }

    /// Every solver returns a *valid* solution whose reported numbers match
    /// an independent re-evaluation.
    #[test]
    fn solutions_are_internally_consistent(inst in arb_instance(10, 3)) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        for solver in all_solvers() {
            let sol = solver.solve(&prep, Lambda::HALF).unwrap();
            sol.cut.validate(&inst.tree).unwrap();
            let re = Solution::from_cut(&prep, sol.cut.clone(), Lambda::HALF,
                hsa_assign::SolveStats::default()).unwrap();
            prop_assert_eq!(re.objective, sol.objective, "{} mis-reports", solver.name());
            prop_assert_eq!(re.report, sol.report.clone());
        }
    }

    /// Baselines never beat the optimum; the optimum never exceeds either
    /// extreme cut.
    #[test]
    fn optimum_dominates_baselines(inst in arb_instance(10, 3), lambda in arb_lambda()) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        let opt = Expanded::default().solve(&prep, lambda).unwrap();
        for solver in all_solvers() {
            let sol = solver.solve(&prep, lambda).unwrap();
            prop_assert!(sol.objective >= opt.objective, "{} beat the optimum", solver.name());
        }
    }

    /// Bokhari's SB optimum is a true lower bound on max(S,B) over all cuts,
    /// and the delay-optimal cut's max(S,B) is an upper bound witness.
    #[test]
    fn sb_optimum_is_bottleneck_minimal(inst in arb_instance(10, 3)) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        let sb = hsa_assign::sb_optimum(&prep).unwrap();
        // Brute-force the SB objective.
        let mut best = Cost::MAX;
        hsa_tree::for_each_cut(&inst.tree, &|e| prep.colouring.cuttable(e), &mut |cut| {
            let s = hsa_tree::host_time_of_cut(&inst.tree, &inst.costs, cut.edges());
            let b = hsa_tree::bottleneck_of_cut(&inst.tree, &inst.costs,
                |e| prep.colouring.edge_colour(e).satellite(), cut.edges());
            best = best.min(s.max(b));
        });
        prop_assert_eq!(sb, best);
        // And the SB-objective solver's reported partition achieves it.
        let sol = SbObjective::default().solve(&prep, Lambda::HALF).unwrap();
        prop_assert!(sol.report.host_time.max(sol.report.bottleneck) >= sb);
    }

    /// Path↔cut bijection on the assignment graph.
    #[test]
    fn path_cut_bijection(inst in arb_instance(10, 3)) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        hsa_tree::for_each_cut(&inst.tree, &|e| prep.colouring.cuttable(e), &mut |cut| {
            let path = prep.graph.cut_to_path(cut).unwrap();
            path.validate(&prep.graph.dwg, prep.graph.source, prep.graph.target).unwrap();
            let back = prep.graph.path_to_cut(&inst.tree, &path).unwrap();
            assert_eq!(&back, cut);
            // The coloured measure of the path equals the direct evaluation.
            let mea = hsa_assign::ColouredMeasure::of_edges(
                &prep.graph, &path.edges, inst.costs.n_satellites());
            let (_a, rep) = hsa_assign::evaluate_cut(&prep, cut).unwrap();
            assert_eq!(mea.s, rep.host_time);
            assert_eq!(mea.b, rep.bottleneck);
        });
    }

    /// λ monotonicity sanity: as λ grows, the optimal S weight can only
    /// shrink or stay (host time is weighted more heavily).
    #[test]
    fn lambda_monotonicity(inst in arb_instance(10, 3)) {
        let prep = Prepared::new(&inst.tree, &inst.costs).unwrap();
        let lambdas = [Lambda::new(0,1).unwrap(), Lambda::new(1,4).unwrap(),
                       Lambda::new(1,2).unwrap(), Lambda::new(3,4).unwrap(),
                       Lambda::new(1,1).unwrap()];
        let mut prev_s: Option<Cost> = None;
        for l in lambdas {
            let sol = Expanded::default().solve(&prep, l).unwrap();
            if let Some(p) = prev_s {
                prop_assert!(sol.report.host_time <= p,
                    "S must be non-increasing in λ: {} then {}", p, sol.report.host_time);
            }
            prev_s = Some(sol.report.host_time);
        }
    }
}
