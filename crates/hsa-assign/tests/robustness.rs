//! Robustness and sensitivity: solver behaviour under cost perturbations,
//! degenerate instances, and invalid input (errors, not panics).

use hsa_assign::{
    AssignError, BruteForce, Expanded, ExpandedConfig, PaperSsb, Prepared, Solution, Solver,
};
use hsa_graph::{Cost, Lambda};
use hsa_tree::{CostModel, CruId, SatelliteId, TreeBuilder};
use hsa_workloads::{random_instance, Placement, RandomTreeParams};

fn params(seed: u32) -> RandomTreeParams {
    RandomTreeParams {
        n_crus: 10,
        n_satellites: 3,
        placement: match seed % 3 {
            0 => Placement::Blocked,
            1 => Placement::Interleaved,
            _ => Placement::Random,
        },
        ..RandomTreeParams::default()
    }
}

/// Raising any single cost can never *decrease* the optimal objective.
#[test]
fn optimum_is_monotone_in_costs() {
    for seed in 0..8u64 {
        let (tree, costs) = random_instance(&params(seed as u32), seed);
        let prep = Prepared::new(&tree, &costs).unwrap();
        let base = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        // Bump every cost table entry (one at a time on a few indices).
        for i in (0..tree.len()).step_by(3) {
            let c = CruId(i as u32);
            for field in 0..3 {
                let mut m2 = costs.clone();
                match field {
                    0 => {
                        m2.set_host_time(c, costs.h(c) + Cost::new(500));
                    }
                    1 => {
                        m2.set_satellite_time(c, costs.s(c) + Cost::new(500));
                    }
                    _ => {
                        if tree.parent(c).is_some() {
                            m2.set_comm_up(c, costs.c_up(c) + Cost::new(500));
                        }
                    }
                }
                let prep2 = Prepared::new(&tree, &m2).unwrap();
                let bumped = Expanded::default().solve(&prep2, Lambda::HALF).unwrap();
                assert!(
                    bumped.objective >= base.objective,
                    "seed {seed}, node {i}, field {field}: raising a cost improved the optimum"
                );
            }
        }
    }
}

/// Scaling *all* costs by a constant scales the optimum by the same
/// constant (the objective is homogeneous).
#[test]
fn optimum_is_homogeneous() {
    for seed in 0..8u64 {
        let (tree, costs) = random_instance(&params(seed as u32), seed);
        let prep = Prepared::new(&tree, &costs).unwrap();
        let base = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let mut m2 = costs.clone();
        for i in 0..tree.len() {
            let c = hsa_tree::CruId(i as u32);
            let (h, sv, up, raw) = (m2.h(c), m2.s(c), m2.c_up(c), m2.c_raw(c));
            m2.set_host_time(c, h.saturating_mul(3));
            m2.set_satellite_time(c, sv.saturating_mul(3));
            m2.set_comm_up(c, up.saturating_mul(3));
            m2.set_comm_raw(c, raw.saturating_mul(3));
        }
        let prep2 = Prepared::new(&tree, &m2).unwrap();
        let scaled = Expanded::default().solve(&prep2, Lambda::HALF).unwrap();
        assert_eq!(scaled.objective, base.objective * 3, "seed {seed}");
    }
}

/// Degenerate platforms: a single satellite, a chain tree, a star tree —
/// all three exact solvers still agree.
#[test]
fn degenerate_shapes() {
    // Chain.
    let mut b = TreeBuilder::new("r");
    let mut at = b.root();
    for i in 0..6 {
        at = b.add_child(at, format!("c{i}"));
    }
    let chain = b.build();
    let mut m = CostModel::zeroed(&chain, 1);
    for (i, c) in chain.preorder().into_iter().enumerate() {
        m.set_host_time(c, Cost::new(10 + i as u64));
        m.set_satellite_time(c, Cost::new(5 + i as u64));
        if c != chain.root() {
            m.set_comm_up(c, Cost::new(3));
        }
    }
    m.pin_leaf(at, SatelliteId(0), Cost::new(20));
    check_agreement(&chain, &m);

    // Star.
    let mut b = TreeBuilder::new("hub");
    let root = b.root();
    for i in 0..6 {
        b.add_child(root, format!("l{i}"));
    }
    let star = b.build();
    let mut m = CostModel::zeroed(&star, 3);
    for (i, c) in star.preorder().into_iter().enumerate() {
        m.set_host_time(c, Cost::new(7 + i as u64));
        m.set_satellite_time(c, Cost::new(4 + i as u64));
        if c != star.root() {
            m.set_comm_up(c, Cost::new(2));
            m.pin_leaf(c, SatelliteId(i as u32 % 3), Cost::new(9));
        }
    }
    check_agreement(&star, &m);
}

fn check_agreement(tree: &hsa_tree::CruTree, costs: &CostModel) {
    let prep = Prepared::new(tree, costs).unwrap();
    let a = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
    let b = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
    let c = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
    assert_eq!(a.objective, b.objective);
    assert_eq!(a.objective, c.objective);
}

/// Invalid input surfaces as typed errors, never panics.
#[test]
fn invalid_input_errors_cleanly() {
    let (tree, mut costs) = random_instance(&params(0), 0);
    // Unpin a leaf.
    let leaf = tree.leaves_in_order()[0];
    costs.set_pinning(leaf, None);
    assert!(matches!(
        Prepared::new(&tree, &costs),
        Err(AssignError::Tree(_))
    ));

    // Frontier cap too small on a real instance.
    let (tree, costs) = random_instance(&params(2), 3);
    let prep = Prepared::new(&tree, &costs).unwrap();
    let tiny = Expanded {
        config: ExpandedConfig { frontier_cap: 1 },
    };
    match tiny.solve(&prep, Lambda::HALF) {
        Err(AssignError::FrontierOverflow { cap: 1 }) => {}
        other => panic!("expected FrontierOverflow, got {other:?}"),
    }
}

/// A cut evaluated through `Solution::from_cut` always reports a delay
/// bounded by the sum of all costs — a cheap sanity invariant under any
/// cut choice.
#[test]
fn delay_is_bounded_by_total_work() {
    for seed in 0..10u64 {
        let (tree, costs) = random_instance(&params(seed as u32), seed);
        let prep = Prepared::new(&tree, &costs).unwrap();
        let total: Cost = costs
            .host_times()
            .iter()
            .chain(costs.satellite_times().iter())
            .chain(costs.comm_ups().iter())
            .chain(costs.comm_raws().iter())
            .copied()
            .sum();
        for solver in hsa_assign::all_solvers() {
            let sol = solver.solve(&prep, Lambda::HALF).unwrap();
            assert!(sol.delay() <= total, "{}", solver.name());
            let re = Solution::from_cut(
                &prep,
                sol.cut.clone(),
                Lambda::HALF,
                hsa_assign::SolveStats::default(),
            )
            .unwrap();
            assert_eq!(re.delay(), sol.delay());
        }
    }
}
