//! A fully labelled, coloured problem instance shared by all solvers.

use crate::{AssignError, AssignmentGraph};
use hsa_tree::{BetaLabels, Colour, Colouring, CostModel, CruId, CruTree, SigmaLabels};
use std::borrow::Cow;

/// The **top nodes** of every colour in CSR form: uniformly coloured nodes
/// whose parent is conflicted (or absent), colour-major, pre-order within
/// each colour. Their subtrees partition all satellite-bound work — the
/// per-colour frontiers of the full-expansion solver are Minkowski sums
/// over exactly these regions, and the incremental re-solver's
/// invalidation unit ([`crate::dirty_colours`]) is defined over the same
/// regions. Computed once per preparation so every frontier (re)build
/// starts from the cached region roots instead of re-scanning the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColourTops {
    /// Region roots, colour-major (colour `s`'s tops are contiguous).
    tops: Vec<CruId>,
    /// Colour `s`'s tops occupy `tops[starts[s]..starts[s+1]]`.
    starts: Vec<u32>,
}

impl ColourTops {
    fn compute(tree: &CruTree, colouring: &Colouring, n_satellites: u32) -> ColourTops {
        let n = n_satellites as usize;
        let mut pairs: Vec<(u32, CruId)> = Vec::new();
        for c in tree.preorder() {
            let Colour::Satellite(s) = colouring.node_colour[c.index()] else {
                continue;
            };
            let parent_uniform = tree
                .parent(c)
                .map(|p| colouring.node_colour[p.index()] != Colour::Conflict)
                .unwrap_or(false);
            if parent_uniform {
                continue; // interior of a colour region; handled by its top node
            }
            pairs.push((s.index() as u32, c));
        }
        let mut starts = vec![0u32; n + 1];
        for &(s, _) in &pairs {
            starts[s as usize + 1] += 1;
        }
        for s in 0..n {
            let carry = starts[s];
            starts[s + 1] += carry;
        }
        // Counting sort by colour; preorder is preserved within a colour.
        let mut cursor = starts.clone();
        let mut tops = vec![CruId(0); pairs.len()];
        for (s, c) in pairs {
            tops[cursor[s as usize] as usize] = c;
            cursor[s as usize] += 1;
        }
        ColourTops { tops, starts }
    }

    /// Number of colours covered.
    pub fn n_colours(&self) -> usize {
        self.starts.len() - 1
    }

    /// Colour `s`'s region roots, in pre-order.
    pub fn of(&self, s: usize) -> &[CruId] {
        &self.tops[self.starts[s] as usize..self.starts[s + 1] as usize]
    }
}

/// The pre-order index of the tree, computed once per preparation so the
/// per-answer evaluation ([`crate::evaluate_cut_in`]) can turn a cut edge
/// into the contiguous pre-order *range* of its below-subtree instead of
/// re-walking the tree: in a pre-order traversal the subtree of `c`
/// occupies exactly `preorder[pos[c] .. pos[c] + size[c]]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalIndex {
    /// All CRUs in pre-order (root first, subtrees left to right).
    pub preorder: Vec<CruId>,
    /// `pos[c]` — position of `c` in [`EvalIndex::preorder`].
    pub pos: Vec<u32>,
    /// `size[c]` — number of nodes in the subtree of `c` (incl. `c`).
    pub size: Vec<u32>,
}

impl EvalIndex {
    fn compute(tree: &CruTree) -> EvalIndex {
        let preorder = tree.preorder();
        let mut pos = vec![0u32; tree.len()];
        for (i, &c) in preorder.iter().enumerate() {
            pos[c.index()] = i as u32;
        }
        let mut size = vec![1u32; tree.len()];
        for c in tree.postorder() {
            for &ch in tree.children(c) {
                size[c.index()] += size[ch.index()];
            }
        }
        EvalIndex {
            preorder,
            pos,
            size,
        }
    }
}

/// Everything the solvers need, computed once per instance:
/// colouring (§5.1), σ/β labels (§5.3) and the coloured assignment graph
/// (§5.2).
///
/// The tree and cost model are held as [`Cow`]s: [`Prepared::new`] borrows
/// the caller's instance (zero-copy, the common one-shot case), while
/// [`Prepared::new_owned`] produces a self-contained `Prepared<'static>`
/// that batch services (the `hsa-engine` crate) can cache and share across
/// queries without rebuilding or re-labelling anything.
#[derive(Clone, Debug)]
pub struct Prepared<'a> {
    /// The CRU tree.
    pub tree: Cow<'a, CruTree>,
    /// Its cost model.
    pub costs: Cow<'a, CostModel>,
    /// The §5.1 colouring.
    pub colouring: Colouring,
    /// The Figure 8 σ labelling.
    pub sigma: SigmaLabels,
    /// The §5.3 β labelling.
    pub beta: BetaLabels,
    /// The coloured assignment graph (dual of the closed tree).
    pub graph: AssignmentGraph,
    /// The per-colour region roots (CSR), fed to every frontier build.
    pub tops: ColourTops,
    /// The pre-order index powering the walk-free answer path.
    pub eval: EvalIndex,
}

/// The derived (λ-independent) parts of an instance.
type Derived = (
    Colouring,
    SigmaLabels,
    BetaLabels,
    AssignmentGraph,
    ColourTops,
    EvalIndex,
);

fn derive(tree: &CruTree, costs: &CostModel) -> Result<Derived, AssignError> {
    tree.validate()?;
    costs.validate(tree)?;
    let colouring = Colouring::compute(tree, costs)?;
    let sigma = SigmaLabels::compute(tree, costs)?;
    let beta = BetaLabels::compute(tree, costs)?;
    let graph = AssignmentGraph::build(tree, &colouring, &sigma, &beta)?;
    let tops = ColourTops::compute(tree, &colouring, costs.n_satellites());
    let eval = EvalIndex::compute(tree);
    Ok((colouring, sigma, beta, graph, tops, eval))
}

impl<'a> Prepared<'a> {
    /// Prepares an instance borrowed from the caller: validates the cost
    /// model, colours the tree, labels the edges, and builds the dual
    /// graph.
    pub fn new(tree: &'a CruTree, costs: &'a CostModel) -> Result<Self, AssignError> {
        let (colouring, sigma, beta, graph, tops, eval) = derive(tree, costs)?;
        Ok(Prepared {
            tree: Cow::Borrowed(tree),
            costs: Cow::Borrowed(costs),
            colouring,
            sigma,
            beta,
            graph,
            tops,
            eval,
        })
    }

    /// Prepares an instance that *owns* its tree and cost model, severing
    /// every borrow: the result can be stored, cached, and shared across
    /// threads for repeated solving.
    pub fn new_owned(tree: CruTree, costs: CostModel) -> Result<Prepared<'static>, AssignError> {
        let (colouring, sigma, beta, graph, tops, eval) = derive(&tree, &costs)?;
        Ok(Prepared {
            tree: Cow::Owned(tree),
            costs: Cow::Owned(costs),
            colouring,
            sigma,
            beta,
            graph,
            tops,
            eval,
        })
    }

    /// Converts into a self-contained instance, cloning the tree and cost
    /// model if they were borrowed. Derived data is moved, never recomputed.
    pub fn into_owned(self) -> Prepared<'static> {
        Prepared {
            tree: Cow::Owned(self.tree.into_owned()),
            costs: Cow::Owned(self.costs.into_owned()),
            colouring: self.colouring,
            sigma: self.sigma,
            beta: self.beta,
            graph: self.graph,
            tops: self.tops,
            eval: self.eval,
        }
    }

    /// Number of satellites in the platform.
    pub fn n_satellites(&self) -> u32 {
        self.costs.n_satellites()
    }

    /// Re-costs this prepared instance **in place**: re-derives colouring,
    /// σ/β labels and the dual graph for `costs` (the tree is reused, not
    /// cloned — this is the incremental re-solve hot path) and reports
    /// which colours' frontier regions the change dirtied
    /// ([`crate::dirty_colours_of_labels`]).
    ///
    /// On error nothing is mutated. On success the displaced cost model
    /// and labels are returned as a [`ReplacedParts`] so a caller keeping
    /// derived caches (e.g. the engine's `Session` with its frontier set)
    /// can roll back via [`Prepared::restore`] when *its* dependent
    /// rebuild fails mid-way.
    pub fn update_costs(
        &mut self,
        costs: CostModel,
    ) -> Result<(ReplacedParts<'a>, crate::DirtyColours), AssignError> {
        let (colouring, sigma, beta, graph, tops, eval) = derive(&self.tree, &costs)?;
        // A platform-size change invalidates every colour of the new
        // platform; otherwise the single-pass label diff decides.
        let dirty = if costs.n_satellites() != self.costs.n_satellites() {
            crate::DirtyColours {
                dirty: vec![true; costs.n_satellites() as usize],
            }
        } else {
            crate::dirty_colours_of_labels(
                &self.tree,
                costs.n_satellites(),
                (&self.colouring, &self.sigma, &self.beta),
                (&colouring, &sigma, &beta),
            )
        };
        let replaced = ReplacedParts {
            costs: std::mem::replace(&mut self.costs, Cow::Owned(costs)),
            colouring: std::mem::replace(&mut self.colouring, colouring),
            sigma: std::mem::replace(&mut self.sigma, sigma),
            beta: std::mem::replace(&mut self.beta, beta),
            graph: std::mem::replace(&mut self.graph, graph),
            tops: std::mem::replace(&mut self.tops, tops),
            eval: std::mem::replace(&mut self.eval, eval),
        };
        Ok((replaced, dirty))
    }

    /// Undoes an [`Prepared::update_costs`], restoring the displaced cost
    /// model and derived labels.
    pub fn restore(&mut self, parts: ReplacedParts<'a>) {
        self.costs = parts.costs;
        self.colouring = parts.colouring;
        self.sigma = parts.sigma;
        self.beta = parts.beta;
        self.graph = parts.graph;
        self.tops = parts.tops;
        self.eval = parts.eval;
    }
}

/// The state an [`Prepared::update_costs`] displaced — an opaque rollback
/// token for [`Prepared::restore`].
pub struct ReplacedParts<'a> {
    costs: Cow<'a, CostModel>,
    colouring: Colouring,
    sigma: SigmaLabels,
    beta: BetaLabels,
    graph: AssignmentGraph,
    tops: ColourTops,
    eval: EvalIndex,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_tree::figures::fig2_tree;

    #[test]
    fn prepares_the_paper_instance() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        assert_eq!(prep.n_satellites(), 4);
        assert_eq!(prep.colouring.host_forced.len(), 3);
        assert!(prep.graph.dwg.num_edges() > 0);
    }

    #[test]
    fn owned_instance_matches_borrowed_preparation() {
        let (t, m) = fig2_tree();
        let borrowed = Prepared::new(&t, &m).unwrap();
        let owned: Prepared<'static> = Prepared::new_owned(t.clone(), m.clone()).unwrap();
        assert_eq!(owned.n_satellites(), borrowed.n_satellites());
        assert_eq!(
            owned.colouring.host_forced, borrowed.colouring.host_forced,
            "derived data must be identical"
        );
        assert_eq!(owned.graph.n_edges(), borrowed.graph.n_edges());
        // into_owned moves derived data without recomputation.
        let converted = borrowed.into_owned();
        assert_eq!(converted.graph.n_edges(), owned.graph.n_edges());
        assert_eq!(&*converted.tree, &t);
    }
}
