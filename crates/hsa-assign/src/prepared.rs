//! A fully labelled, coloured problem instance shared by all solvers.

use crate::{AssignError, AssignmentGraph};
use hsa_tree::{BetaLabels, Colouring, CostModel, CruTree, SigmaLabels};

/// Everything the solvers need, computed once per instance:
/// colouring (§5.1), σ/β labels (§5.3) and the coloured assignment graph
/// (§5.2).
#[derive(Clone, Debug)]
pub struct Prepared<'a> {
    /// The CRU tree.
    pub tree: &'a CruTree,
    /// Its cost model.
    pub costs: &'a CostModel,
    /// The §5.1 colouring.
    pub colouring: Colouring,
    /// The Figure 8 σ labelling.
    pub sigma: SigmaLabels,
    /// The §5.3 β labelling.
    pub beta: BetaLabels,
    /// The coloured assignment graph (dual of the closed tree).
    pub graph: AssignmentGraph,
}

impl<'a> Prepared<'a> {
    /// Prepares an instance: validates the cost model, colours the tree,
    /// labels the edges, and builds the dual graph.
    pub fn new(tree: &'a CruTree, costs: &'a CostModel) -> Result<Self, AssignError> {
        tree.validate()?;
        costs.validate(tree)?;
        let colouring = Colouring::compute(tree, costs)?;
        let sigma = SigmaLabels::compute(tree, costs)?;
        let beta = BetaLabels::compute(tree, costs)?;
        let graph = AssignmentGraph::build(tree, &colouring, &sigma, &beta)?;
        Ok(Prepared {
            tree,
            costs,
            colouring,
            sigma,
            beta,
            graph,
        })
    }

    /// Number of satellites in the platform.
    pub fn n_satellites(&self) -> u32 {
        self.costs.n_satellites
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_tree::figures::fig2_tree;

    #[test]
    fn prepares_the_paper_instance() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        assert_eq!(prep.n_satellites(), 4);
        assert_eq!(prep.colouring.host_forced.len(), 3);
        assert!(prep.graph.dwg.num_edges() > 0);
    }
}
