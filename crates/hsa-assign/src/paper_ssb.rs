//! The paper's **adapted SSB algorithm** for the coloured assignment graph
//! (§5.4, Figure 10), implemented faithfully and completed so that it is
//! exact on *every* instance:
//!
//! * the coloured assignment graph is a DAG over leaf gaps, so the min-S
//!   path of each iteration is a linear-time DP over gap indexes (the
//!   paper's "the path with minimum S weight is always on the top of the
//!   assignment graph" observation — no Dijkstra needed);
//! * candidate tracking and the elimination of edges whose β reaches the
//!   current path's B weight, exactly as in the uncoloured SSB algorithm
//!   (`β(e) ≥ B(Pᵢ)` is safe: any path through such an edge has
//!   `B ≥ β(e) ≥ B(Pᵢ)` and `S ≥ S(Pᵢ)`);
//! * **expansion** (Figure 9): when B(Pᵢ) is a *sum* of several
//!   same-coloured β values, no single edge qualifies for elimination and
//!   the loop stalls. The stalling colour's contiguous **bands** (maximal
//!   same-colour leaf runs — every edge between a band's boundary gaps
//!   belongs to that colour, because anything wider would be conflicted)
//!   are then replaced by Pareto-pruned *composite* edges, one per way of
//!   traversing the band, after which the composite carrying the band's
//!   full load is eliminable and progress resumes;
//! * **joint branching** (our completion, DESIGN.md §2): the paper's own
//!   example pins one satellite's sensors under two different subtrees, so
//!   a colour can occupy several disjoint bands whose loads still add up.
//!   Contiguous expansion cannot couple them. When a stalling colour is
//!   already expanded, we branch over the joint Pareto combinations of its
//!   per-band composites (one composite per band, dominated combinations
//!   skipped — their substitution never helps any objective component),
//!   pinning the colour in each branch. A stall on a *pinned* colour
//!   terminates the branch: every remaining path carries the same pinned
//!   load, so the branch candidate is optimal.
//!
//! Exactness is property-tested against brute force and the full-expansion
//! solver over thousands of random instances (see `tests/`).

use crate::{AssignError, EvalScratch, Prepared, Solution, SolveStats, Solver};
use hsa_graph::{Cost, Lambda, ScaledSsb, SolveScratch, SSB_INFINITY};
use hsa_tree::{Band, Cut, SatelliteId, TreeEdge};
use std::collections::BTreeSet;

/// Configuration of the adapted coloured SSB solver.
#[derive(Clone, Copy, Debug)]
pub struct PaperSsbConfig {
    /// Cap on any band's composite frontier.
    pub frontier_cap: usize,
    /// Cap on explored branches (defence against pathological instances).
    pub max_branches: usize,
    /// Record a human-readable event trace (Figure 9/10 repro).
    pub record_trace: bool,
}

impl Default for PaperSsbConfig {
    fn default() -> Self {
        PaperSsbConfig {
            frontier_cap: 1_000_000,
            max_branches: 1_000_000,
            record_trace: false,
        }
    }
}

/// One recorded event of the adapted algorithm.
#[derive(Clone, Debug)]
pub enum SsbEvent {
    /// A candidate/eliminate iteration.
    Iteration {
        /// S weight of the iteration's min-S path.
        s: Cost,
        /// Coloured B weight of the path.
        b: Cost,
        /// Scaled SSB weight.
        ssb: ScaledSsb,
        /// Whether the candidate improved.
        improved: bool,
        /// How many edges were eliminated.
        removed: usize,
    },
    /// A stall resolved by expanding a colour's bands (Figure 9).
    Expansion {
        /// The stalling colour.
        colour: SatelliteId,
        /// Number of bands expanded.
        bands: usize,
        /// Composite edges created.
        composites: usize,
    },
    /// A stall on a multi-band colour resolved by joint branching.
    Branch {
        /// The pinned colour.
        colour: SatelliteId,
        /// Number of joint combinations explored.
        combos: usize,
    },
}

/// The adapted coloured SSB solver (paper §5.4).
#[derive(Clone, Copy, Debug, Default)]
pub struct PaperSsb {
    /// Configuration.
    pub config: PaperSsbConfig,
}

impl Solver for PaperSsb {
    fn name(&self) -> &'static str {
        "paper-ssb"
    }

    fn solve_in(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        scratch: &mut SolveScratch,
    ) -> Result<Solution, AssignError> {
        let (sol, _trace) = solve_with_trace_in(prep, lambda, &self.config, scratch)?;
        Ok(sol)
    }
}

/// Runs the adapted algorithm and returns the solution together with its
/// event trace (empty unless `record_trace`).
pub fn solve_with_trace(
    prep: &Prepared<'_>,
    lambda: Lambda,
    config: &PaperSsbConfig,
) -> Result<(Solution, Vec<SsbEvent>), AssignError> {
    solve_with_trace_in(prep, lambda, config, &mut SolveScratch::new())
}

/// [`solve_with_trace`] running in a reusable workspace: the per-iteration
/// min-S DP and the per-colour load sums reuse the scratch buffers.
pub fn solve_with_trace_in(
    prep: &Prepared<'_>,
    lambda: Lambda,
    config: &PaperSsbConfig,
    ws: &mut SolveScratch,
) -> Result<(Solution, Vec<SsbEvent>), AssignError> {
    let graph = SearchGraph::from_prepared(prep);
    let mut ctx = Ctx {
        prep,
        lambda,
        config,
        best: None,
        best_ssb: SSB_INFINITY,
        stats: SolveStats::default(),
        trace: Vec::new(),
    };
    search(&mut ctx, graph, &BTreeSet::new(), ws)?;
    let best = ctx.best.ok_or(AssignError::NoFeasibleAssignment)?;
    let cut = Cut::new(&prep.tree, best)?;
    let sol = EvalScratch::with_thread_local(|es| {
        Solution::from_cut_in(prep, cut, lambda, ctx.stats, es)
    })?;
    Ok((sol, ctx.trace))
}

// ---------------------------------------------------------------------------
// Search graph: a gap-indexed DAG supporting elimination, composite edges
// and cheap cloning for branches.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct SearchEdge {
    from: u32,
    to: u32,
    sigma: Cost,
    beta: Cost,
    colour: SatelliteId,
    /// Closed-tree edges this (possibly composite) edge stands for.
    members: Vec<TreeEdge>,
    alive: bool,
}

#[derive(Clone, Debug)]
struct SearchGraph {
    n_gaps: usize, // nodes are 0..=n_gaps (n_gaps = #leaves)
    edges: Vec<SearchEdge>,
    out: Vec<Vec<usize>>,
    /// Colours whose bands have been expanded.
    expanded: BTreeSet<u32>,
}

impl SearchGraph {
    fn from_prepared(prep: &Prepared<'_>) -> SearchGraph {
        let k = prep.graph.n_leaves;
        let mut g = SearchGraph {
            n_gaps: k,
            edges: Vec::with_capacity(prep.graph.edges.len()),
            out: vec![Vec::new(); k + 1],
            expanded: BTreeSet::new(),
        };
        for meta in &prep.graph.edges {
            g.push_edge(SearchEdge {
                from: meta.from_gap,
                to: meta.to_gap,
                sigma: meta.sigma,
                beta: meta.beta,
                colour: meta.colour,
                members: vec![meta.tree_edge],
                alive: true,
            });
        }
        g
    }

    fn push_edge(&mut self, e: SearchEdge) -> usize {
        let idx = self.edges.len();
        self.out[e.from as usize].push(idx);
        self.edges.push(e);
        idx
    }

    /// Min-S path via DP over the gap order, run inside the reusable
    /// workspace (the DAG analogue of the scratch-threaded Dijkstra).
    /// Returns edge indexes.
    fn min_s_path(&self, ws: &mut SolveScratch) -> Option<Vec<usize>> {
        let n = self.n_gaps + 1;
        debug_assert!(self.edges.len() < u32::MAX as usize);
        ws.begin(n);
        ws.seed(0, Cost::ZERO);
        for g in 0..self.n_gaps {
            let dg = ws.dist(g);
            if dg == Cost::MAX {
                continue;
            }
            for &ei in &self.out[g] {
                let e = &self.edges[ei];
                if !e.alive {
                    continue;
                }
                ws.improve(e.to as usize, dg + e.sigma, ei as u32);
            }
        }
        if ws.dist(self.n_gaps) == Cost::MAX {
            return None;
        }
        let mut path = Vec::new();
        let mut at = self.n_gaps;
        while at != 0 {
            let ei = ws.pred(at)? as usize;
            path.push(ei);
            at = self.edges[ei].from as usize;
        }
        path.reverse();
        Some(path)
    }

    /// S of a path, with the per-colour β sums written into `per`.
    fn measure_into(&self, path: &[usize], n_sats: u32, per: &mut Vec<Cost>) -> Cost {
        per.clear();
        per.resize(n_sats as usize, Cost::ZERO);
        let mut s = Cost::ZERO;
        for &ei in path {
            let e = &self.edges[ei];
            s += e.sigma;
            per[e.colour.index()] += e.beta;
        }
        s
    }

    /// Expands every band of `colour` into Pareto-pruned composites.
    /// Returns the number of composites created.
    fn expand_colour(
        &mut self,
        colour: SatelliteId,
        bands: &[Band],
        cap: usize,
    ) -> Result<usize, AssignError> {
        debug_assert!(!self.expanded.contains(&colour.0));
        let mut created = 0usize;
        for band in bands.iter().filter(|b| b.satellite == colour) {
            created += self.expand_band(colour, band.lo as usize, band.hi as usize, cap)?;
        }
        self.expanded.insert(colour.0);
        Ok(created)
    }

    /// Replaces alive edges inside gap interval [lo, hi] by composites.
    fn expand_band(
        &mut self,
        colour: SatelliteId,
        lo: usize,
        hi: usize,
        cap: usize,
    ) -> Result<usize, AssignError> {
        // DP over gaps lo..=hi: Pareto states (σ, β, members).
        #[derive(Clone)]
        struct State {
            sigma: Cost,
            beta: Cost,
            members: Vec<TreeEdge>,
            ids: Vec<usize>,
        }
        let mut states: Vec<Vec<State>> = vec![Vec::new(); hi - lo + 1];
        states[0].push(State {
            sigma: Cost::ZERO,
            beta: Cost::ZERO,
            members: Vec::new(),
            ids: Vec::new(),
        });
        let mut band_edges: Vec<usize> = Vec::new();
        for g in lo..hi {
            // Collect alive edges leaving g within the band once, so we can
            // kill them afterwards.
            let outs: Vec<usize> = self.out[g]
                .iter()
                .copied()
                .filter(|&ei| {
                    let e = &self.edges[ei];
                    e.alive && (e.to as usize) <= hi
                })
                .collect();
            band_edges.extend(outs.iter().copied());
            let from_states = std::mem::take(&mut states[g - lo]);
            for st in &from_states {
                for &ei in &outs {
                    let e = &self.edges[ei];
                    debug_assert_eq!(e.colour, colour, "band edge of foreign colour");
                    let mut members = st.members.clone();
                    members.extend_from_slice(&e.members);
                    let mut ids = st.ids.clone();
                    ids.push(ei);
                    states[e.to as usize - lo].push(State {
                        sigma: st.sigma + e.sigma,
                        beta: st.beta + e.beta,
                        members,
                        ids,
                    });
                }
            }
            states[g - lo] = from_states;
            // Pareto-prune intermediate states at every gap.
            for slot in states.iter_mut().skip(1) {
                prune_states(slot, cap)?;
            }
        }
        let finals = std::mem::take(&mut states[hi - lo]);
        // Kill originals, add composites.
        for ei in band_edges {
            self.edges[ei].alive = false;
        }
        let n = finals.len();
        for st in finals {
            self.push_edge(SearchEdge {
                from: lo as u32,
                to: hi as u32,
                sigma: st.sigma,
                beta: st.beta,
                colour,
                members: st.members,
                alive: true,
            });
        }
        fn prune_states<S>(slot: &mut Vec<S>, cap: usize) -> Result<(), AssignError>
        where
            S: HasSigmaBeta,
        {
            slot.sort_by(|a, b| a.beta().cmp(&b.beta()).then(a.sigma().cmp(&b.sigma())));
            let mut out: Vec<S> = Vec::with_capacity(slot.len().min(16));
            for s in slot.drain(..) {
                match out.last() {
                    Some(last) if s.sigma() >= last.sigma() => {}
                    _ => out.push(s),
                }
            }
            if out.len() > cap {
                return Err(AssignError::FrontierOverflow { cap });
            }
            *slot = out;
            Ok(())
        }
        trait HasSigmaBeta {
            fn sigma(&self) -> Cost;
            fn beta(&self) -> Cost;
        }
        impl HasSigmaBeta for State {
            fn sigma(&self) -> Cost {
                self.sigma
            }
            fn beta(&self) -> Cost {
                self.beta
            }
        }
        Ok(n)
    }

    /// Alive composite/original edges of `colour` within a band interval.
    fn band_alive_edges(&self, lo: u32, hi: u32) -> Vec<usize> {
        (0..self.edges.len())
            .filter(|&ei| {
                let e = &self.edges[ei];
                e.alive && e.from == lo && e.to == hi
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The candidate/eliminate/expand/branch loop.
// ---------------------------------------------------------------------------

struct Ctx<'p, 'a> {
    prep: &'p Prepared<'a>,
    lambda: Lambda,
    config: &'p PaperSsbConfig,
    best: Option<Vec<TreeEdge>>,
    best_ssb: ScaledSsb,
    stats: SolveStats,
    trace: Vec<SsbEvent>,
}

fn search(
    ctx: &mut Ctx<'_, '_>,
    mut graph: SearchGraph,
    pinned: &BTreeSet<u32>,
    ws: &mut SolveScratch,
) -> Result<(), AssignError> {
    let n_sats = ctx.prep.n_satellites();
    loop {
        let Some(path) = graph.min_s_path(ws) else {
            return Ok(()); // disconnected: candidate (if any) is optimal here
        };
        ctx.stats.iterations += 1;
        let mut per = std::mem::take(&mut ws.cost_buf);
        let s = graph.measure_into(&path, n_sats, &mut per);
        let (b, argmax) =
            per.iter()
                .enumerate()
                .fold((Cost::ZERO, None), |(best, who), (i, &l)| {
                    if l > best {
                        (l, Some(i as u32))
                    } else {
                        (best, who)
                    }
                });
        ws.cost_buf = per;
        let ssb = ctx.lambda.ssb_scaled(s, b);
        let improved = ssb < ctx.best_ssb;
        if improved {
            ctx.best_ssb = ssb;
            let members: Vec<TreeEdge> = path
                .iter()
                .flat_map(|&ei| graph.edges[ei].members.iter().copied())
                .collect();
            ctx.best = Some(members);
        }

        // Termination on the S bound (paper Figure 3/10).
        if ctx.lambda.s_scaled(s) >= ctx.best_ssb {
            if ctx.config.record_trace {
                ctx.trace.push(SsbEvent::Iteration {
                    s,
                    b,
                    ssb,
                    improved,
                    removed: 0,
                });
            }
            return Ok(());
        }

        // Elimination: every edge whose β alone reaches B(P).
        let removable: Vec<usize> = graph
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive && e.beta >= b)
            .map(|(i, _)| i)
            .collect();
        if !removable.is_empty() {
            for &ei in &removable {
                graph.edges[ei].alive = false;
            }
            ctx.stats.edges_removed += removable.len() as u64;
            if ctx.config.record_trace {
                ctx.trace.push(SsbEvent::Iteration {
                    s,
                    b,
                    ssb,
                    improved,
                    removed: removable.len(),
                });
            }
            continue;
        }

        // Stall: B(P) is a multi-edge colour sum. Record the iteration
        // before resolving the stall so traces show the full loop.
        if ctx.config.record_trace {
            ctx.trace.push(SsbEvent::Iteration {
                s,
                b,
                ssb,
                improved,
                removed: 0,
            });
        }
        let colour = SatelliteId(
            argmax.ok_or_else(|| AssignError::Internal("stalled with zero B weight".into()))?,
        );

        if pinned.contains(&colour.0) {
            // Every path in this branch carries the same pinned load for
            // `colour`; with S already minimal the candidate is optimal.
            return Ok(());
        }

        if !graph.expanded.contains(&colour.0) {
            // Figure 9 expansion of the stalling colour's bands.
            let bands: Vec<Band> = ctx
                .prep
                .colouring
                .bands
                .iter()
                .copied()
                .filter(|bd| bd.satellite == colour)
                .collect();
            let composites =
                graph.expand_colour(colour, &ctx.prep.colouring.bands, ctx.config.frontier_cap)?;
            ctx.stats.expansions += 1;
            ctx.stats.composites += composites as u64;
            if ctx.config.record_trace {
                ctx.trace.push(SsbEvent::Expansion {
                    colour,
                    bands: bands.len(),
                    composites,
                });
            }
            continue;
        }

        // Already expanded and still stalling: the colour spans several
        // bands. Branch over joint Pareto combinations.
        let bands: Vec<(u32, u32)> = ctx
            .prep
            .colouring
            .bands
            .iter()
            .filter(|bd| bd.satellite == colour)
            .map(|bd| (bd.lo, bd.hi))
            .collect();
        debug_assert!(bands.len() >= 2, "single-band colours cannot re-stall");
        let per_band: Vec<Vec<usize>> = bands
            .iter()
            .map(|&(lo, hi)| graph.band_alive_edges(lo, hi))
            .collect();
        // Joint Pareto over the product of per-band composites.
        let mut combos: Vec<(Cost, Cost, Vec<usize>)> = vec![(Cost::ZERO, Cost::ZERO, Vec::new())];
        for options in &per_band {
            let mut next = Vec::with_capacity(combos.len() * options.len());
            for (cs, cb, ids) in &combos {
                for &ei in options {
                    let e = &graph.edges[ei];
                    let mut ids2 = ids.clone();
                    ids2.push(ei);
                    next.push((*cs + e.sigma, *cb + e.beta, ids2));
                }
            }
            // Pareto prune jointly.
            next.sort_by(|a, b| {
                a.1.cmp(&b.1)
                    .then(a.0.cmp(&b.0))
                    .then_with(|| a.2.cmp(&b.2))
            });
            let mut pruned: Vec<(Cost, Cost, Vec<usize>)> = Vec::new();
            for cand in next {
                match pruned.last() {
                    Some(last) if cand.0 >= last.0 => {}
                    _ => pruned.push(cand),
                }
            }
            combos = pruned;
            if combos.len() > ctx.config.frontier_cap {
                return Err(AssignError::FrontierOverflow {
                    cap: ctx.config.frontier_cap,
                });
            }
        }
        ctx.stats.branches += combos.len() as u64;
        if ctx.stats.branches > ctx.config.max_branches as u64 {
            return Err(AssignError::Internal(format!(
                "branch budget of {} exceeded",
                ctx.config.max_branches
            )));
        }
        if ctx.config.record_trace {
            ctx.trace.push(SsbEvent::Branch {
                colour,
                combos: combos.len(),
            });
        }
        let mut pinned2 = pinned.clone();
        pinned2.insert(colour.0);
        for (_, _, ids) in combos {
            let mut g2 = graph.clone();
            // Keep only this combination's composite in each band.
            for (band_idx, &(lo, hi)) in bands.iter().enumerate() {
                for ei in g2.band_alive_edges(lo, hi) {
                    if ei != ids[band_idx] {
                        g2.edges[ei].alive = false;
                    }
                }
            }
            search(ctx, g2, &pinned2, ws)?;
        }
        return Ok(());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForce, Expanded};
    use hsa_tree::figures::fig2_tree;
    use hsa_tree::{CostModel, SatelliteId, TreeBuilder};

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    #[test]
    fn matches_brute_force_on_the_paper_instance() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        for lambda in [
            Lambda::HALF,
            Lambda::ONE,
            Lambda::ZERO,
            Lambda::new(2, 5).unwrap(),
        ] {
            let exact = BruteForce::default().solve(&prep, lambda).unwrap();
            let paper = PaperSsb::default().solve(&prep, lambda).unwrap();
            assert_eq!(paper.objective, exact.objective, "λ={lambda}");
        }
    }

    #[test]
    fn matches_expanded_solver() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let a = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
        let b = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        assert_eq!(a.objective, b.objective);
    }

    /// An instance engineered to stall: two same-coloured chains so B(P) is
    /// a two-edge sum, exercising expansion (Figure 9).
    fn stalling_instance() -> (hsa_tree::CruTree, CostModel) {
        // root ── a ── a1 (leaf, Sat0)
        //      └─ b ── b1 (leaf, Sat0)
        let mut bld = TreeBuilder::new("root");
        let root = bld.root();
        let a = bld.add_child(root, "a");
        let a1 = bld.add_child(a, "a1");
        let b = bld.add_child(root, "b");
        let b1 = bld.add_child(b, "b1");
        let t = bld.build();
        let mut m = CostModel::zeroed(&t, 1);
        // Host times cheap, satellite times expensive enough that the best
        // assignment is interesting; every cut keeps B a sum of two Sat0
        // contributions.
        m.set_host_time(root, c(4));
        m.set_host_time(a, c(6));
        m.set_host_time(b, c(6));
        m.set_host_time(a1, c(8));
        m.set_host_time(b1, c(8));
        m.set_satellite_time(a, c(5));
        m.set_satellite_time(b, c(5));
        m.set_satellite_time(a1, c(3));
        m.set_satellite_time(b1, c(3));
        for n in [a, b, a1, b1] {
            m.set_comm_up(n, c(2));
        }
        m.pin_leaf(a1, SatelliteId(0), c(1));
        m.pin_leaf(b1, SatelliteId(0), c(1));
        (t, m)
    }

    #[test]
    fn stalling_instance_triggers_expansion_and_stays_exact() {
        let (t, m) = stalling_instance();
        let prep = Prepared::new(&t, &m).unwrap();
        let cfg = PaperSsbConfig {
            record_trace: true,
            ..PaperSsbConfig::default()
        };
        let (sol, trace) = solve_with_trace(&prep, Lambda::HALF, &cfg).unwrap();
        let exact = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
        assert_eq!(sol.objective, exact.objective);
        // Interleaving: Sat0 occupies two bands?? No — one band (both leaves
        // adjacent). But B(P) is still a two-edge sum → expansion must fire.
        assert!(
            sol.stats.expansions >= 1 || sol.stats.edges_removed > 0,
            "trace: {trace:?}"
        );
    }

    /// Interleaved colours: Sat0, Sat1, Sat0 in leaf order — forces the
    /// multi-band branch path.
    fn interleaved_instance() -> (hsa_tree::CruTree, CostModel) {
        let mut bld = TreeBuilder::new("root");
        let root = bld.root();
        let a = bld.add_child(root, "a");
        let a1 = bld.add_child(a, "a1");
        let b1 = bld.add_child(root, "b1");
        let d = bld.add_child(root, "d");
        let d1 = bld.add_child(d, "d1");
        let t = bld.build();
        let mut m = CostModel::zeroed(&t, 2);
        m.set_host_time(root, c(3));
        for (n, h) in [(a, 7), (a1, 9), (b1, 6), (d, 7), (d1, 9)] {
            m.set_host_time(n, c(h));
        }
        for (n, s) in [(a, 4), (a1, 5), (b1, 4), (d, 4), (d1, 5)] {
            m.set_satellite_time(n, c(s));
        }
        for n in [a, a1, b1, d, d1] {
            m.set_comm_up(n, c(2));
        }
        m.pin_leaf(a1, SatelliteId(0), c(1));
        m.pin_leaf(b1, SatelliteId(1), c(1));
        m.pin_leaf(d1, SatelliteId(0), c(1));
        (t, m)
    }

    #[test]
    fn interleaved_instance_stays_exact() {
        let (t, m) = interleaved_instance();
        let prep = Prepared::new(&t, &m).unwrap();
        assert!(!prep.colouring.is_contiguous());
        for lambda in [Lambda::HALF, Lambda::ZERO, Lambda::new(1, 4).unwrap()] {
            let exact = BruteForce::default().solve(&prep, lambda).unwrap();
            let paper = PaperSsb::default().solve(&prep, lambda).unwrap();
            assert_eq!(paper.objective, exact.objective, "λ={lambda}");
        }
    }

    #[test]
    fn single_node_tree() {
        let t = TreeBuilder::new("only").build();
        let mut m = CostModel::zeroed(&t, 1);
        m.set_host_time(hsa_tree::CruId(0), c(7));
        m.pin_leaf(hsa_tree::CruId(0), SatelliteId(0), c(3));
        let prep = Prepared::new(&t, &m).unwrap();
        let sol = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
        assert_eq!(sol.report.end_to_end, c(10));
    }

    #[test]
    fn zero_cost_instance() {
        let (t, mut m) = fig2_tree();
        for i in 0..t.len() {
            let c = hsa_tree::CruId(i as u32);
            m.set_host_time(c, Cost::ZERO)
                .set_satellite_time(c, Cost::ZERO)
                .set_comm_up(c, Cost::ZERO)
                .set_comm_raw(c, Cost::ZERO);
        }
        let prep = Prepared::new(&t, &m).unwrap();
        let sol = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
        assert_eq!(sol.objective, 0);
    }
}
