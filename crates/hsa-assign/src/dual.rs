//! The coloured assignment graph — the paper's §5.2 dual construction.
//!
//! Bokhari's construction closes the tree by merging all sensors into a
//! dummy node A, inserts an assignment-graph node in every face of the
//! planar drawing (plus "S" on the left and "T" on the right), and connects
//! two nodes whenever their faces share a tree edge. We build the same
//! graph *combinatorially*: with the leaves numbered `1..k` in planar
//! order, the faces are exactly the k−1 "gaps" between consecutive leaves,
//! plus S (gap 0) and T (gap k). A closed-tree edge whose subtree spans the
//! leaf interval `[a, b]` borders precisely the faces `a−1` and `b`, so its
//! dual edge runs from gap `a−1` to gap `b`.
//!
//! Consequences used throughout:
//!
//! * the graph is a **DAG on gap indexes** — every edge strictly increases
//!   the gap number, every S→T path is monotone;
//! * an S→T path crosses a set of tree edges whose leaf intervals tile
//!   `[1, k]` — exactly the *cuts* of `hsa_tree::cuts` (an antichain
//!   covering every leaf once). The path↔cut mapping is a bijection;
//! * parallel edges appear naturally (a chain of tree edges shares one leaf
//!   interval), which is why the substrate is a multigraph;
//! * **conflicted** tree edges (colouring §5.1) are left out entirely: a
//!   subtree spanning two satellites can never be cut off.
//!
//! Each dual edge inherits the σ/β labels (Figure 8 / §5.3) and the colour
//! of the tree edge it crosses.

use crate::AssignError;
use hsa_graph::{Cost, Dwg, EdgeId, NodeId, Path};
use hsa_tree::{BetaLabels, Colouring, CruTree, Cut, SatelliteId, SigmaLabels, TreeEdge};

/// Metadata of one dual edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DualEdge {
    /// The closed-tree edge this dual edge crosses.
    pub tree_edge: TreeEdge,
    /// The satellite colour inherited from the tree edge.
    pub colour: SatelliteId,
    /// σ label (host time accumulated by the Figure 8 rule).
    pub sigma: Cost,
    /// β label (satellite time + communication, §5.3).
    pub beta: Cost,
    /// Source gap (`a−1` for leaf interval `[a,b]`).
    pub from_gap: u32,
    /// Target gap (`b`).
    pub to_gap: u32,
}

/// The coloured doubly weighted assignment graph of an instance.
#[derive(Clone, Debug)]
pub struct AssignmentGraph {
    /// The underlying DWG; node `i` is gap `i`, `S` = node 0, `T` = node k.
    pub dwg: Dwg,
    /// The distinguished source node S.
    pub source: NodeId,
    /// The distinguished target node T.
    pub target: NodeId,
    /// Metadata per dual edge, indexed by [`EdgeId`] (1:1 with `dwg`).
    pub edges: Vec<DualEdge>,
    /// Number of leaves (k); the graph has k+1 nodes.
    pub n_leaves: usize,
}

impl AssignmentGraph {
    /// Builds the coloured assignment graph. Conflicted edges are omitted;
    /// every remaining closed-tree edge contributes exactly one dual edge.
    pub fn build(
        tree: &CruTree,
        colouring: &Colouring,
        sigma: &SigmaLabels,
        beta: &BetaLabels,
    ) -> Result<AssignmentGraph, AssignError> {
        let leaves = tree.leaves_in_order();
        let k = leaves.len();
        let spans = tree.leaf_spans();
        let mut dwg = Dwg::with_nodes(k + 1);
        let mut edges = Vec::new();

        let push =
            |dwg: &mut Dwg, edges: &mut Vec<DualEdge>, tree_edge: TreeEdge, lo: u32, hi: u32| {
                if let Some(colour) = colouring.edge_colour(tree_edge).satellite() {
                    let meta = DualEdge {
                        tree_edge,
                        colour,
                        sigma: sigma.sigma(tree_edge),
                        beta: beta.beta(tree_edge),
                        from_gap: lo,
                        to_gap: hi,
                    };
                    let tag = edges.len() as u64;
                    let id =
                        dwg.add_edge_tagged(NodeId(lo), NodeId(hi), meta.sigma, meta.beta, tag);
                    debug_assert_eq!(id.index(), edges.len());
                    edges.push(meta);
                }
            };

        // Real tree edges: one per non-root node; spans give the interval.
        for c in tree.preorder() {
            if c != tree.root() {
                let (lo, hi) = spans[c.index()];
                push(&mut dwg, &mut edges, TreeEdge::Parent(c), lo, hi);
            }
        }
        // Virtual sensor edges: one per leaf, spanning that single leaf.
        for (pos, &l) in leaves.iter().enumerate() {
            push(
                &mut dwg,
                &mut edges,
                TreeEdge::Sensor(l),
                pos as u32,
                pos as u32 + 1,
            );
        }

        Ok(AssignmentGraph {
            dwg,
            source: NodeId(0),
            target: NodeId(k as u32),
            edges,
            n_leaves: k,
        })
    }

    /// Metadata of a dual edge.
    #[inline]
    pub fn meta(&self, e: EdgeId) -> &DualEdge {
        &self.edges[e.index()]
    }

    /// Converts an S→T path into the cut it crosses.
    pub fn path_to_cut(&self, tree: &CruTree, path: &Path) -> Result<Cut, AssignError> {
        let edges: Vec<TreeEdge> = path.edges.iter().map(|&e| self.meta(e).tree_edge).collect();
        Ok(Cut::new(tree, edges)?)
    }

    /// Converts a cut into the S→T path crossing it (edges ordered by leaf
    /// interval). Fails if a cut edge is conflicted (absent from the graph).
    pub fn cut_to_path(&self, cut: &Cut) -> Result<Path, AssignError> {
        let mut ids: Vec<EdgeId> = Vec::with_capacity(cut.edges().len());
        for &te in cut.edges() {
            let found = self
                .edges
                .iter()
                .position(|m| m.tree_edge == te)
                .ok_or_else(|| {
                    AssignError::Internal(format!("cut edge {te} is not in the assignment graph"))
                })?;
            ids.push(EdgeId(found as u32));
        }
        ids.sort_by_key(|&e| self.meta(e).from_gap);
        Ok(Path::new(ids))
    }

    /// Total number of dual edges (the |E| of the paper's complexity
    /// statements).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_graph::connectivity::is_connected;
    use hsa_tree::figures::{cru, fig2_tree};
    use hsa_tree::{for_each_cut, CostModel};

    fn build_fig2() -> (CruTree, CostModel, AssignmentGraph) {
        let (t, m) = fig2_tree();
        let col = Colouring::compute(&t, &m).unwrap();
        let sig = SigmaLabels::compute(&t, &m).unwrap();
        let bet = BetaLabels::compute(&t, &m).unwrap();
        let g = AssignmentGraph::build(&t, &col, &sig, &bet).unwrap();
        (t, m, g)
    }

    #[test]
    fn figure6_shape() {
        let (_t, _m, g) = build_fig2();
        // 7 leaves → 8 nodes (S, 6 gaps, T).
        assert_eq!(g.n_leaves, 7);
        assert_eq!(g.dwg.num_nodes(), 8);
        // Edges: 12 non-root tree edges − 2 conflicted (⟨1,2⟩, ⟨1,3⟩)
        //        + 7 sensor edges = 17.
        assert_eq!(g.n_edges(), 17);
        assert!(is_connected(&g.dwg, g.source, g.target));
        // Every edge goes strictly rightward (DAG on gaps).
        for (_, e) in g.dwg.all_edges() {
            assert!(e.from.0 < e.to.0);
        }
    }

    #[test]
    fn conflicted_edges_are_absent() {
        let (_t, _m, g) = build_fig2();
        assert!(!g
            .edges
            .iter()
            .any(|m| m.tree_edge == TreeEdge::Parent(cru(2))));
        assert!(!g
            .edges
            .iter()
            .any(|m| m.tree_edge == TreeEdge::Parent(cru(3))));
        // Non-conflicted interior edges are present.
        assert!(g
            .edges
            .iter()
            .any(|m| m.tree_edge == TreeEdge::Parent(cru(4))));
    }

    #[test]
    fn labels_are_inherited() {
        let (t, m, g) = build_fig2();
        let sig = SigmaLabels::compute(&t, &m).unwrap();
        let bet = BetaLabels::compute(&t, &m).unwrap();
        for meta in &g.edges {
            assert_eq!(meta.sigma, sig.sigma(meta.tree_edge));
            assert_eq!(meta.beta, bet.beta(meta.tree_edge));
        }
    }

    #[test]
    fn gap_intervals_match_leaf_spans() {
        let (t, _m, g) = build_fig2();
        let spans = t.leaf_spans();
        for meta in &g.edges {
            match meta.tree_edge {
                TreeEdge::Parent(c) => {
                    let (lo, hi) = spans[c.index()];
                    assert_eq!((meta.from_gap, meta.to_gap), (lo, hi));
                }
                TreeEdge::Sensor(_) => {
                    assert_eq!(meta.to_gap, meta.from_gap + 1);
                }
            }
        }
    }

    #[test]
    fn every_cut_maps_to_a_valid_path_and_back() {
        let (t, m, g) = build_fig2();
        let col = Colouring::compute(&t, &m).unwrap();
        let mut count = 0;
        for_each_cut(&t, &|e| col.cuttable(e), &mut |cut| {
            let path = g.cut_to_path(cut).unwrap();
            path.validate(&g.dwg, g.source, g.target).unwrap();
            let back = g.path_to_cut(&t, &path).unwrap();
            assert_eq!(&back, cut);
            count += 1;
        });
        assert!(count > 5, "expected several coloured cuts, got {count}");
    }

    #[test]
    fn conflicted_cut_edge_fails_path_mapping() {
        let (t, _m, g) = build_fig2();
        // A cut through the conflicted edge ⟨CRU1,CRU2⟩ is a valid tree cut
        // but has no dual path.
        let cut = Cut::new(
            &t,
            vec![
                TreeEdge::Parent(cru(2)),
                TreeEdge::Parent(cru(6)),
                TreeEdge::Parent(cru(7)),
                TreeEdge::Parent(cru(8)),
            ],
        )
        .unwrap();
        assert!(g.cut_to_path(&cut).is_err());
    }
}
