//! Incremental invalidation: which per-colour frontiers does a cost-model
//! perturbation actually dirty?
//!
//! The λ-independent preparation of the full-expansion solver
//! ([`crate::FrontierSet`]) decomposes by colour: satellite `s`'s Pareto
//! frontier is a function of **only**
//!
//! 1. the set of `s`-coloured *top nodes* (uniformly coloured nodes whose
//!    parent edge is conflicted or absent — their subtrees are `s`'s
//!    regions), and
//! 2. the σ/β labels of the closed-tree edges *inside* those regions
//!    (`Parent(x)` for every region node `x`, `Sensor(l)` for every region
//!    leaf `l`).
//!
//! So after a [`hsa_tree::Delta`] is applied and the (cheap, O(n)) labels
//! are re-derived, comparing those two ingredients per colour yields the
//! exact set of frontiers that must be rebuilt; everything else can be
//! reused verbatim ([`crate::FrontierSet::refresh`]). This module computes
//! that diff. It deliberately diffs *observed labels* rather than
//! interpreting delta ops: a σ change propagates down leftmost-descendant
//! chains and a β change up ancestor chains, and chasing either by hand is
//! exactly the kind of cleverness that rots — the label diff is O(n),
//! total, and correct for any perturbation, including ones that turn out
//! to be no-ops (which dirty nothing).
//!
//! See DESIGN.md §9 for the full invalidation model and the fallback
//! policy built on top of this diff by `hsa-engine::Session`.

use crate::Prepared;
use hsa_tree::{BetaLabels, Colour, Colouring, SigmaLabels, TreeEdge};

/// The per-colour dirtiness verdict for an instance update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirtyColours {
    /// One flag per satellite: `true` when its frontier must be rebuilt.
    pub dirty: Vec<bool>,
}

impl DirtyColours {
    /// Number of dirty colours.
    pub fn count(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }

    /// Dirty colours as a fraction of all colours (1.0 for an empty
    /// platform, so zero-satellite instances always take the full-rebuild
    /// path).
    pub fn fraction(&self) -> f64 {
        if self.dirty.is_empty() {
            1.0
        } else {
            self.count() as f64 / self.dirty.len() as f64
        }
    }

    /// True when no frontier needs rebuilding.
    pub fn is_clean(&self) -> bool {
        self.count() == 0
    }
}

/// Compares two label sets over the **same tree** and returns, per colour,
/// whether its frontier regions changed.
///
/// Single allocation-free pass over the nodes (this sits on the hot path
/// of every `Session::apply`):
///
/// * a node whose **colour changed** dirties both its old and its new
///   colour — this covers every top-node (region-shape) change, because a
///   region can only appear, vanish or move when some node's colour (or
///   its parent's conflict status, itself a colour) flips;
/// * a node whose colour is `Satellite(s)` — i.e. a node inside one of
///   `s`'s regions — dirties `s` when the σ or β label of its parent edge
///   (or sensor edge, for leaves) changed, since exactly those edges feed
///   `s`'s cover DP.
pub fn dirty_colours_of_labels(
    tree: &hsa_tree::CruTree,
    n_satellites: u32,
    old: (&Colouring, &SigmaLabels, &BetaLabels),
    new: (&Colouring, &SigmaLabels, &BetaLabels),
) -> DirtyColours {
    let (old_col, old_sigma, old_beta) = old;
    let (new_col, new_sigma, new_beta) = new;
    let mut dirty = vec![false; n_satellites as usize];
    let mark = |c: Colour, dirty: &mut Vec<bool>| {
        if let Colour::Satellite(s) = c {
            if let Some(slot) = dirty.get_mut(s.index()) {
                *slot = true;
            }
        }
    };
    let root = tree.root();
    for i in 0..tree.len() {
        let x = hsa_tree::CruId(i as u32);
        let (oc, nc) = (old_col.node_colour[i], new_col.node_colour[i]);
        if oc != nc {
            mark(oc, &mut dirty);
            mark(nc, &mut dirty);
            continue;
        }
        let Colour::Satellite(s) = nc else { continue };
        if let Some(slot) = dirty.get_mut(s.index()) {
            if *slot {
                continue; // already dirty; skip the label compares
            }
            let mut changed = false;
            if x != root {
                let e = TreeEdge::Parent(x);
                changed |= old_sigma.sigma(e) != new_sigma.sigma(e)
                    || old_beta.beta(e) != new_beta.beta(e);
            }
            if tree.is_leaf(x) {
                let e = TreeEdge::Sensor(x);
                changed |= old_sigma.sigma(e) != new_sigma.sigma(e)
                    || old_beta.beta(e) != new_beta.beta(e);
            }
            *slot = changed;
        }
    }
    DirtyColours { dirty }
}

/// Compares two preparations of the **same tree** and returns, per colour,
/// whether its frontier regions changed (top-node set, or any σ/β label on
/// an edge inside a region). See [`dirty_colours_of_labels`].
///
/// `old` and `new` must share the tree topology; when the satellite count
/// or tree size differs, every colour of `new` is conservatively dirty.
pub fn dirty_colours(old: &Prepared<'_>, new: &Prepared<'_>) -> DirtyColours {
    let n = new.n_satellites() as usize;
    if old.n_satellites() != new.n_satellites() || old.tree.len() != new.tree.len() {
        return DirtyColours {
            dirty: vec![true; n],
        };
    }
    dirty_colours_of_labels(
        &new.tree,
        new.n_satellites(),
        (&old.colouring, &old.sigma, &old.beta),
        (&new.colouring, &new.sigma, &new.beta),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_with_frontiers, ExpandedConfig, FrontierSet};
    use hsa_graph::{Cost, Lambda};
    use hsa_tree::figures::fig2_tree;
    use hsa_tree::{Colour, Delta};

    fn prepare_pair(delta: &Delta) -> (Prepared<'static>, Prepared<'static>) {
        let (tree, costs) = fig2_tree();
        let mut drifted = costs.clone();
        delta.apply(&tree, &mut drifted).unwrap();
        (
            Prepared::new_owned(tree.clone(), costs).unwrap(),
            Prepared::new_owned(tree, drifted).unwrap(),
        )
    }

    #[test]
    fn identical_instances_are_clean() {
        let (old, new) = prepare_pair(&Delta::new());
        let d = dirty_colours(&old, &new);
        assert!(d.is_clean());
        assert_eq!(d.fraction(), 0.0);
    }

    #[test]
    fn leaf_satellite_time_dirties_its_own_colour_chain() {
        let (tree, costs) = fig2_tree();
        let leaf = *tree.leaves_in_order().first().unwrap();
        let sat = costs.pinned_satellite(leaf).unwrap();
        let bumped = Delta::new().set_satellite_time(leaf, costs.s(leaf) + Cost::new(50));
        let (old, new) = prepare_pair(&bumped);
        let d = dirty_colours(&old, &new);
        assert!(d.dirty[sat.index()], "the leaf's own colour must be dirty");
        assert!(d.count() < d.dirty.len(), "not everything is dirty");
    }

    #[test]
    fn host_forced_host_time_change_can_leave_all_colours_clean() {
        // Bumping h of a *conflicted* node changes σ only on edges of the
        // leftmost-descendant chain below it; if that chain stays within
        // conflicted nodes until it enters a region, the entered colour is
        // dirty — assert the diff matches a brute-force frontier compare.
        let (tree, costs) = fig2_tree();
        let root = tree.root();
        let bump = Delta::new().set_host_time(root, costs.h(root) + Cost::new(7));
        let (old, new) = prepare_pair(&bump);
        let d = dirty_colours(&old, &new);
        let cfg = ExpandedConfig::default();
        let old_fs = FrontierSet::prepare(&old, &cfg).unwrap();
        let new_fs = FrontierSet::prepare(&new, &cfg).unwrap();
        for s in 0..d.dirty.len() {
            if !d.dirty[s] {
                assert_eq!(
                    old_fs.colour(s),
                    new_fs.colour(s),
                    "colour {s} marked clean but its frontier changed"
                );
            }
        }
    }

    #[test]
    fn repin_dirties_both_source_and_target_colours() {
        let (tree, costs) = fig2_tree();
        let leaf = *tree.leaves_in_order().first().unwrap();
        let from = costs.pinned_satellite(leaf).unwrap();
        let to = hsa_tree::SatelliteId((from.0 + 1) % costs.n_satellites());
        let (old, new) = prepare_pair(&Delta::new().repin(leaf, to));
        let d = dirty_colours(&old, &new);
        assert!(d.dirty[from.index()], "losing colour must be dirty");
        assert!(d.dirty[to.index()], "gaining colour must be dirty");
    }

    #[test]
    fn refresh_equals_scratch_on_drifted_instances() {
        // The end-to-end contract at this layer: refresh(dirty diff) must
        // be indistinguishable from a from-scratch prepare — frontiers,
        // thetas, composites, and the solutions they produce.
        let (tree, costs) = fig2_tree();
        let cfg = ExpandedConfig::default();
        let leaves = tree.leaves_in_order();
        let deltas = [
            Delta::new(),
            Delta::new().set_satellite_time(leaves[0], Cost::new(400)),
            Delta::new().scale_subtree(tree.children(tree.root())[0], 5, 4),
            Delta::new().repin(leaves[1], hsa_tree::SatelliteId(0)),
            Delta::new().scale_satellite(hsa_tree::SatelliteId(2), 3, 1),
            Delta::new().set_comm_raw(leaves[2], Cost::new(999)),
        ];
        let mut current = costs;
        let mut prep = Prepared::new_owned(tree.clone(), current.clone()).unwrap();
        let mut fs = FrontierSet::prepare(&prep, &cfg).unwrap();
        for (i, delta) in deltas.iter().enumerate() {
            delta.apply(&tree, &mut current).unwrap();
            let next = Prepared::new_owned(tree.clone(), current.clone()).unwrap();
            let d = dirty_colours(&prep, &next);
            let refreshed = FrontierSet::refresh(&next, &cfg, &fs, &d.dirty).unwrap();
            let scratch = FrontierSet::prepare(&next, &cfg).unwrap();
            assert_eq!(refreshed.to_nested(), scratch.to_nested(), "step {i}");
            assert_eq!(refreshed.thetas, scratch.thetas, "step {i}");
            assert_eq!(refreshed.composites, scratch.composites, "step {i}");
            assert_eq!(refreshed, scratch, "step {i}: arenas must match exactly");
            let a = solve_with_frontiers(&next, &refreshed, Lambda::HALF).unwrap();
            let b = solve_with_frontiers(&next, &scratch, Lambda::HALF).unwrap();
            assert_eq!(a.objective, b.objective, "step {i}");
            assert_eq!(a.cut, b.cut, "step {i}");
            prep = next;
            fs = refreshed;
        }
    }

    #[test]
    fn platform_shape_changes_are_conservatively_all_dirty() {
        let (tree, costs) = fig2_tree();
        let mut fewer = costs.clone();
        fewer.set_n_satellites(fewer.n_satellites() + 1); // platform grew: ids shifted semantics
        let old = Prepared::new_owned(tree.clone(), costs).unwrap();
        let new = Prepared::new_owned(tree, fewer).unwrap();
        let d = dirty_colours(&old, &new);
        assert_eq!(d.count(), d.dirty.len());
        assert_eq!(d.fraction(), 1.0);
    }

    #[test]
    fn fig2_has_multiple_colours_so_partial_dirt_is_meaningful() {
        let (tree, costs) = fig2_tree();
        let prep = Prepared::new_owned(tree, costs).unwrap();
        let used = prep
            .colouring
            .node_colour
            .iter()
            .filter_map(|c| match c {
                Colour::Satellite(s) => Some(*s),
                Colour::Conflict => None,
            })
            .collect::<std::collections::BTreeSet<_>>();
        assert!(used.len() >= 3, "paper instance uses several satellites");
    }
}
