//! Error type for the assignment layer.

use core::fmt;
use hsa_graph::GraphError;
use hsa_tree::TreeError;

/// Errors raised while building assignment graphs or solving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssignError {
    /// Propagated tree-layer error.
    Tree(TreeError),
    /// Propagated graph-layer error.
    Graph(GraphError),
    /// The instance admits no valid assignment (cannot happen for properly
    /// pinned trees — every leaf can always cut its sensor edge — so this
    /// signals an internal inconsistency).
    NoFeasibleAssignment,
    /// A Pareto frontier exceeded the configured size cap; the solver
    /// refuses to continue rather than silently approximate.
    FrontierOverflow {
        /// The configured cap.
        cap: usize,
    },
    /// Brute force was asked to enumerate more cuts than its guard allows.
    BruteForceTooLarge {
        /// The configured cut-count guard.
        cap: u64,
    },
    /// The solve observed its [`crate::CancelToken`] and stopped early
    /// without an answer (a losing portfolio arm draining, or a deadline).
    Cancelled,
    /// An internal invariant failed; carries a diagnostic message.
    Internal(String),
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::Tree(e) => write!(f, "tree error: {e}"),
            AssignError::Graph(e) => write!(f, "graph error: {e}"),
            AssignError::NoFeasibleAssignment => write!(f, "no feasible assignment exists"),
            AssignError::FrontierOverflow { cap } => {
                write!(f, "Pareto frontier exceeded the cap of {cap} points")
            }
            AssignError::BruteForceTooLarge { cap } => {
                write!(f, "instance has more than {cap} cuts; brute force refused")
            }
            AssignError::Cancelled => write!(f, "solve cancelled before completion"),
            AssignError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for AssignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AssignError::Tree(e) => Some(e),
            AssignError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TreeError> for AssignError {
    fn from(e: TreeError) -> Self {
        AssignError::Tree(e)
    }
}

impl From<GraphError> for AssignError {
    fn from(e: GraphError) -> Self {
        AssignError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: AssignError = TreeError::Malformed("x".into()).into();
        assert!(e.to_string().contains("tree error"));
        let e: AssignError = GraphError::EnumerationLimit { limit: 3 }.into();
        assert!(e.to_string().contains("graph error"));
        assert!(AssignError::FrontierOverflow { cap: 10 }
            .to_string()
            .contains("10"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error as _;
        let e: AssignError = TreeError::Malformed("x".into()).into();
        assert!(e.source().is_some());
        assert!(AssignError::NoFeasibleAssignment.source().is_none());
    }
}
