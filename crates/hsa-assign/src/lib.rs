//! # hsa-assign — the paper's core contribution
//!
//! Optimal assignment of a tree-structured context reasoning procedure onto
//! a host–satellites system (Mei, Pawar & Widya, IPPS 2007), end to end:
//!
//! 1. [`Prepared`] — colour the tree (§5.1), label σ/β (Figure 8, §5.3) and
//!    build the coloured [`AssignmentGraph`] (§5.2 dual construction);
//! 2. solve with one of:
//!    * [`PaperSsb`] — the paper's adapted SSB algorithm (§5.4): min-S path
//!      iteration, elimination, Figure 9 **expansion**, plus joint
//!      branching for multi-band colours (our completion, DESIGN.md §2);
//!    * [`Expanded`] — the full-expansion exact solver (per-colour Pareto
//!      frontiers + threshold sweep), the clean O(|E′| log |E′|) form of
//!      the paper's expanded-graph bound;
//!    * [`BruteForce`] — exhaustive ground truth for tests;
//!    * baselines: [`AllOnHost`], [`MaxOffload`], [`GreedyDescent`],
//!      [`RandomCut`], and Bokhari's objective [`SbObjective`];
//! 3. read the answer: [`Solution`] with its [`Assignment`] and
//!    [`DelayReport`] (end-to-end delay = S + B), all evaluated directly on
//!    the tree — independent of the graph machinery it was found with.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod anytime;
mod assignment;
mod baselines;
mod brute;
mod coloured;
mod delta;
mod dual;
mod error;
mod expanded;
mod frontier;
mod paper_ssb;
mod prepared;
mod solver;

pub use anytime::{structural_lower_bound, CancelToken, GapCertificate};
pub use assignment::{
    evaluate_cut, evaluate_cut_in, Assignment, DelayReport, EvalScratch, SatelliteLoad,
};
pub use baselines::{
    all_solvers, sb_optimum, AllOnHost, GreedyDescent, MaxOffload, RandomCut, SbObjective,
};
pub use brute::BruteForce;
pub use coloured::ColouredMeasure;
pub use delta::{dirty_colours, dirty_colours_of_labels, DirtyColours};
pub use dual::{AssignmentGraph, DualEdge};
pub use error::AssignError;
pub use expanded::{
    colour_frontiers, solve_sb_expanded, solve_with_frontiers, ColourFrontier, Expanded,
    ExpandedConfig, Frontier, FrontierPoint, FrontierSet,
};
pub use frontier::{lambda_frontier, lambda_frontier_with, LambdaFrontier};
pub use paper_ssb::{solve_with_trace, solve_with_trace_in, PaperSsb, PaperSsbConfig, SsbEvent};
pub use prepared::{ColourTops, EvalIndex, Prepared, ReplacedParts};
pub use solver::{Solution, SolveStats, Solver};

// Re-exported so downstream crates name the workspace type without a direct
// hsa-graph dependency.
pub use hsa_graph::SolveScratch;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        evaluate_cut, lambda_frontier, AllOnHost, AssignError, Assignment, BruteForce, CancelToken,
        DelayReport, Expanded, GapCertificate, GreedyDescent, LambdaFrontier, MaxOffload, PaperSsb,
        Prepared, SbObjective, Solution, SolveScratch, Solver,
    };
}
