//! Brute-force solver: enumerate every coloured cut and take the exact
//! optimum. Exponential — guarded by a cut-count cap — and used as the
//! ground truth the polynomial solvers are property-tested against.

use crate::{AssignError, EvalScratch, Prepared, Solution, SolveStats, Solver};
use hsa_graph::{Lambda, SolveScratch};
use hsa_tree::{bottleneck_of_cut, count_cuts, for_each_cut, host_time_of_cut, Cut, TreeEdge};

/// Exhaustive enumeration solver.
#[derive(Clone, Copy, Debug)]
pub struct BruteForce {
    /// Refuse instances with more cuts than this (default 5,000,000).
    pub max_cuts: u64,
}

impl Default for BruteForce {
    fn default() -> Self {
        BruteForce {
            max_cuts: 5_000_000,
        }
    }
}

impl Solver for BruteForce {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn solve_in(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        _scratch: &mut SolveScratch,
    ) -> Result<Solution, AssignError> {
        let cuttable = |e: TreeEdge| prep.colouring.cuttable(e);
        let total = count_cuts(&prep.tree, &cuttable);
        if total > self.max_cuts {
            return Err(AssignError::BruteForceTooLarge { cap: self.max_cuts });
        }
        let colour_of = |e: TreeEdge| prep.colouring.edge_colour(e).satellite();
        let mut best: Option<(Cut, u128)> = None;
        let mut evaluated = 0u64;
        for_each_cut(&prep.tree, &cuttable, &mut |cut| {
            evaluated += 1;
            let s = host_time_of_cut(&prep.tree, &prep.costs, cut.edges());
            let b = bottleneck_of_cut(&prep.tree, &prep.costs, colour_of, cut.edges());
            let obj = lambda.ssb_scaled(s, b);
            // Deterministic tie-break: first (lexicographically smallest
            // edge list, since enumeration order is deterministic) wins.
            let better = match &best {
                None => true,
                Some((_, cur)) => obj < *cur,
            };
            if better {
                best = Some((cut.clone(), obj));
            }
        });
        let (cut, _) = best.ok_or(AssignError::NoFeasibleAssignment)?;
        EvalScratch::with_thread_local(|es| {
            Solution::from_cut_in(
                prep,
                cut,
                lambda,
                SolveStats {
                    evaluated,
                    ..SolveStats::default()
                },
                es,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_tree::figures::fig2_tree;

    #[test]
    fn solves_the_paper_instance() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let sol = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
        assert_eq!(sol.stats.evaluated, 300); // 5 × 5 × 3 × 2 × 2 coloured cuts

        // The optimum can never exceed the trivial baselines.
        let all_host = Solution::from_cut(
            &prep,
            Cut::all_on_host(&t),
            Lambda::HALF,
            SolveStats::default(),
        )
        .unwrap();
        let offload = Solution::from_cut(
            &prep,
            Cut::max_offload(&t, &prep.colouring),
            Lambda::HALF,
            SolveStats::default(),
        )
        .unwrap();
        assert!(sol.objective <= all_host.objective);
        assert!(sol.objective <= offload.objective);
    }

    #[test]
    fn cap_is_enforced() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let solver = BruteForce { max_cuts: 10 };
        assert!(matches!(
            solver.solve(&prep, Lambda::HALF),
            Err(AssignError::BruteForceTooLarge { cap: 10 })
        ));
    }

    #[test]
    fn lambda_one_minimises_host_time() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let sol = BruteForce::default().solve(&prep, Lambda::ONE).unwrap();
        // λ=1 ignores satellites entirely: optimal host time = forced set.
        let forced_h: hsa_graph::Cost = prep
            .colouring
            .host_forced
            .iter()
            .map(|&c| prep.costs.h(c))
            .sum();
        assert_eq!(sol.report.host_time, forced_h);
    }
}
