//! The **λ-frontier** of the coloured assignment problem: every optimal
//! cut for every λ ∈ [0, 1], from one pass.
//!
//! The full-expansion solver ([`crate::Expanded`]) minimises
//! `λ·S + (1−λ)·B` over a candidate set that is *independent of λ*: for
//! each threshold θ (a frontier β value) it picks, per colour, the
//! cheapest-σ frontier point with β ≤ θ — picks that never consult λ. Only
//! the final argmin over θ does. The optimum as a function of λ is
//! therefore the lower envelope of the candidates' lines
//! `f(λ) = λ·S(θ) + (1−λ)·B(θ)` — computed exactly by
//! [`hsa_graph::envelope::lower_envelope`] with rational breakpoints.
//!
//! One frontier pass costs roughly one [`crate::Expanded`] solve; it then
//! answers *any* λ query in O(#segments), with the segment structure
//! (breakpoints, per-segment cuts) available for inspection. Agreement with
//! independent per-λ solves is property-tested at λ = 0, ½, 1 and at every
//! segment midpoint (`tests/` of the `hsa-engine` crate).

use crate::{
    AssignError, EvalScratch, ExpandedConfig, FrontierSet, Prepared, Solution, SolveStats,
};
use hsa_graph::envelope::{lower_envelope, EnvelopeSegment, LambdaEnvelope, LambdaQ};
use hsa_graph::{Cost, Lambda, ScaledSsb};
use hsa_tree::{Cut, TreeEdge};
use serde::{value, DeError, Deserialize, Serialize, Value};

/// The piecewise-linear lower envelope of optimal cuts over λ ∈ [0, 1].
#[derive(Clone, Debug)]
pub struct LambdaFrontier {
    envelope: LambdaEnvelope<Cut>,
    /// Work counters of the frontier construction (composites = |E′|,
    /// evaluated = thresholds probed).
    pub stats: SolveStats,
}

impl LambdaFrontier {
    /// The λ-ordered segments; each carries the cut that is optimal on its
    /// interval, with its S and B weights.
    pub fn segments(&self) -> &[EnvelopeSegment<Cut>] {
        self.envelope.segments()
    }

    /// Number of segments (distinct optimal cuts across all λ).
    pub fn num_segments(&self) -> usize {
        self.envelope.len()
    }

    /// The interior breakpoints — the exact rational λ values where the
    /// optimal cut changes.
    pub fn breakpoints(&self) -> Vec<LambdaQ> {
        self.envelope.breakpoints()
    }

    /// Number of interior breakpoints, without materialising them.
    pub fn num_breakpoints(&self) -> usize {
        self.envelope.num_breakpoints()
    }

    /// The exact scaled optimum `λ·S + (1−λ)·B` at `lambda`. Agrees with an
    /// independent [`crate::Solver::solve`] of an exact solver at that λ.
    pub fn objective_at(&self, lambda: Lambda) -> ScaledSsb {
        self.envelope.objective_at(lambda)
    }

    /// The cut that is optimal at `lambda` (at a breakpoint: the cut of the
    /// left segment — both tie on the objective there).
    pub fn cut_at(&self, lambda: Lambda) -> &Cut {
        &self.envelope.segment_at(lambda).payload
    }

    /// Materialises a full [`Solution`] (assignment + delay report) for the
    /// optimal cut at `lambda`.
    pub fn solution_at(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
    ) -> Result<Solution, AssignError> {
        EvalScratch::with_thread_local(|es| {
            Solution::from_cut_in(prep, self.cut_at(lambda).clone(), lambda, self.stats, es)
        })
    }
}

impl Serialize for LambdaFrontier {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("envelope".to_string(), self.envelope.to_value()),
            ("stats".to_string(), self.stats.to_value()),
        ])
    }
}

impl Deserialize for LambdaFrontier {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected LambdaFrontier map, got {v:?}")))?;
        Ok(LambdaFrontier {
            envelope: LambdaEnvelope::from_value(value::field(m, "envelope")?)?,
            stats: SolveStats::from_value(value::field(m, "stats")?)?,
        })
    }
}

/// Computes the λ-frontier of an instance (frontier DP + envelope).
pub fn lambda_frontier(
    prep: &Prepared<'_>,
    cfg: &ExpandedConfig,
) -> Result<LambdaFrontier, AssignError> {
    let fs = FrontierSet::prepare(prep, cfg)?;
    lambda_frontier_with(prep, &fs)
}

/// Computes the λ-frontier from an already-prepared [`FrontierSet`] (the
/// batch-engine path: the expensive per-instance DP is cached, the envelope
/// is rebuilt from it in O(#thetas · #colours)).
pub fn lambda_frontier_with(
    prep: &Prepared<'_>,
    fs: &FrontierSet,
) -> Result<LambdaFrontier, AssignError> {
    // Candidates carry only the per-colour picks; full cuts are built just
    // for the few hull-surviving segments afterwards. The pick rule is the
    // full-expansion solver's own (`pick_for_threshold`), so both sweeps
    // choose identically by construction.
    let mut candidates: Vec<(Cost, Cost, Vec<usize>)> = Vec::new();
    let mut evaluated = 0u64;
    for &theta in &fs.thetas {
        let Some(picks) = crate::expanded::pick_for_threshold(fs, theta) else {
            continue;
        };
        evaluated += 1;
        let mut s = Cost::ZERO;
        let mut b = Cost::ZERO;
        for (f, &i) in fs.colours().zip(&picks) {
            s += f.sigma[i];
            b = b.max(f.beta[i]);
        }
        candidates.push((s, b, picks));
    }
    // Candidates are pushed in θ-ascending order; the envelope's stable
    // Pareto keeps the earliest θ among identical (S, B) pairs, so the
    // frontier is fully deterministic.
    let envelope = lower_envelope(candidates).ok_or(AssignError::NoFeasibleAssignment)?;
    let envelope = envelope.try_map(|picks| {
        let mut edges: Vec<TreeEdge> = Vec::new();
        for (f, &i) in fs.colours().zip(&picks) {
            edges.extend_from_slice(f.point_edges(i));
        }
        // Frontier picks form valid cuts by construction (see `assemble`);
        // skip the O(n) re-validation on this hot path.
        Ok::<_, hsa_tree::TreeError>(Cut::trusted(&prep.tree, edges))
    })?;
    Ok(LambdaFrontier {
        envelope,
        stats: SolveStats {
            composites: fs.composites,
            evaluated,
            ..SolveStats::default()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForce, Expanded, Solver};
    use hsa_tree::figures::fig2_tree;

    #[test]
    fn frontier_agrees_with_expanded_on_a_lambda_grid() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let fr = lambda_frontier(&prep, &ExpandedConfig::default()).unwrap();
        assert!(fr.num_segments() >= 1);
        for num in 0..=12u32 {
            let lambda = Lambda::new(num, 12).unwrap();
            let solo = Expanded::default().solve(&prep, lambda).unwrap();
            assert_eq!(fr.objective_at(lambda), solo.objective, "λ={num}/12");
        }
    }

    #[test]
    fn frontier_agrees_with_brute_force_at_breakpoint_midpoints() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let fr = lambda_frontier(&prep, &ExpandedConfig::default()).unwrap();
        for seg in fr.segments() {
            let Some(lambda) = seg.midpoint().as_lambda() else {
                continue;
            };
            let brute = BruteForce::default().solve(&prep, lambda).unwrap();
            assert_eq!(fr.objective_at(lambda), brute.objective);
            // The segment's own cut achieves that objective when evaluated.
            let sol = fr.solution_at(&prep, lambda).unwrap();
            assert_eq!(sol.objective, brute.objective);
        }
    }

    #[test]
    fn breakpoints_are_sorted_and_interior() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let fr = lambda_frontier(&prep, &ExpandedConfig::default()).unwrap();
        let bps = fr.breakpoints();
        assert_eq!(bps.len(), fr.num_segments() - 1);
        for w in bps.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for bp in &bps {
            assert!(LambdaQ::ZERO < *bp && *bp < LambdaQ::ONE);
        }
    }

    #[test]
    fn extreme_lambdas_pick_extreme_cuts() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let fr = lambda_frontier(&prep, &ExpandedConfig::default()).unwrap();
        // λ=1 minimises S alone, λ=0 minimises B alone.
        let seg1 = fr.segments().last().unwrap();
        let seg0 = fr.segments().first().unwrap();
        assert!(seg1.s <= seg0.s);
        assert!(seg0.b <= seg1.b);
    }
}
