//! Coloured path measures (paper §5.3–5.4).
//!
//! On the coloured assignment graph the S weight stays `Σ σ`, but the B
//! weight becomes *the maximum over colours of the per-colour β sums*:
//! several cut edges of one colour land on the **same** satellite, so their
//! satellite times accumulate:
//!
//! ```text
//! B(P) = max[ Σ_{e red} β(e), Σ_{e yellow} β(e), Σ_{e blue} β(e), … ]
//! ```

use crate::AssignmentGraph;
use hsa_graph::{Cost, EdgeId, Lambda, ScaledSsb};
use hsa_tree::SatelliteId;

/// S, B and the per-colour decomposition of a coloured path (or any edge
/// multiset — the measures do not depend on edge order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColouredMeasure {
    /// S = Σ σ.
    pub s: Cost,
    /// B = max per-colour Σ β.
    pub b: Cost,
    /// Per-colour Σ β, indexed by satellite id.
    pub per_colour: Vec<Cost>,
    /// The colour achieving B (smallest id on ties; None when all zero).
    pub argmax_colour: Option<SatelliteId>,
}

impl ColouredMeasure {
    /// Measures a set of dual edges.
    pub fn of_edges(graph: &AssignmentGraph, edges: &[EdgeId], n_satellites: u32) -> Self {
        let mut s = Cost::ZERO;
        let mut per_colour = vec![Cost::ZERO; n_satellites as usize];
        for &e in edges {
            let meta = graph.meta(e);
            s += meta.sigma;
            per_colour[meta.colour.index()] += meta.beta;
        }
        let (b, argmax_colour) =
            per_colour
                .iter()
                .enumerate()
                .fold((Cost::ZERO, None), |(best, who), (i, &l)| {
                    if l > best {
                        (l, Some(SatelliteId(i as u32)))
                    } else {
                        (best, who)
                    }
                });
        ColouredMeasure {
            s,
            b,
            per_colour,
            argmax_colour,
        }
    }

    /// The λ-scaled coloured SSB weight.
    pub fn ssb_scaled(&self, lambda: Lambda) -> ScaledSsb {
        lambda.ssb_scaled(self.s, self.b)
    }

    /// End-to-end delay (S + B, the paper's λ = ½ objective).
    pub fn delay(&self) -> Cost {
        self.s + self.b
    }

    /// Bokhari's objective on the same partition: `max(S, B)`.
    pub fn sb_weight(&self) -> Cost {
        self.s.max(self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prepared;
    use hsa_tree::figures::fig2_tree;
    use hsa_tree::{Cut, TreeEdge};

    #[test]
    fn same_colour_edges_accumulate() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        // Max-offload cut: B colour covers both ⟨CRU2,CRU5⟩ and ⟨CRU3,CRU6⟩.
        let cut = Cut::max_offload(&t, &prep.colouring);
        let path = prep.graph.cut_to_path(&cut).unwrap();
        let mea = ColouredMeasure::of_edges(&prep.graph, &path.edges, prep.n_satellites());
        // Cross-check against the direct oracle.
        let (_, rep) = crate::evaluate_cut(&prep, &cut).unwrap();
        assert_eq!(mea.s, rep.host_time);
        assert_eq!(mea.b, rep.bottleneck);
        for (i, load) in rep.satellite_loads.iter().enumerate() {
            assert_eq!(mea.per_colour[i], load.total);
        }
        assert_eq!(mea.delay(), rep.end_to_end);
        // The B satellite really is the sum of two subtree betas.
        let b5 = prep.beta.beta(TreeEdge::Parent(hsa_tree::figures::cru(5)));
        let b6 = prep.beta.beta(TreeEdge::Parent(hsa_tree::figures::cru(6)));
        assert_eq!(mea.per_colour[hsa_tree::figures::SAT_B.index()], b5 + b6);
    }

    #[test]
    fn empty_measure_is_zero() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let mea = ColouredMeasure::of_edges(&prep.graph, &[], 4);
        assert_eq!(mea.s, Cost::ZERO);
        assert_eq!(mea.b, Cost::ZERO);
        assert_eq!(mea.argmax_colour, None);
        assert_eq!(mea.sb_weight(), Cost::ZERO);
    }

    #[test]
    fn argmax_ties_prefer_smallest_id() {
        // Craft a measure by hand: loads [5,5] → argmax Sat0.
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let mut mea = ColouredMeasure::of_edges(&prep.graph, &[], 2);
        mea.per_colour = vec![Cost::new(5), Cost::new(5)];
        let (b, who) =
            mea.per_colour
                .iter()
                .enumerate()
                .fold((Cost::ZERO, None), |(best, w), (i, &l)| {
                    if l > best {
                        (l, Some(SatelliteId(i as u32)))
                    } else {
                        (best, w)
                    }
                });
        assert_eq!(b, Cost::new(5));
        assert_eq!(who, Some(SatelliteId(0)));
    }
}
