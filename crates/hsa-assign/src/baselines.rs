//! Baseline assignment strategies, used by the experiments to show what the
//! optimal SSB assignment buys (experiment T6) and how the paper's
//! objective differs from Bokhari's (T3).

use crate::{
    evaluate_cut, solve_sb_expanded, AssignError, EvalScratch, ExpandedConfig, Prepared, Solution,
    SolveStats, Solver,
};
use hsa_graph::{Cost, Lambda, SolveScratch};
use hsa_tree::{Cut, TreeEdge};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything on the host; satellites only forward raw sensor frames.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllOnHost;

impl Solver for AllOnHost {
    fn name(&self) -> &'static str {
        "all-on-host"
    }

    fn solve_in(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        _scratch: &mut SolveScratch,
    ) -> Result<Solution, AssignError> {
        EvalScratch::with_thread_local(|es| {
            Solution::from_cut_in(
                prep,
                Cut::all_on_host(&prep.tree),
                lambda,
                SolveStats::default(),
                es,
            )
        })
    }
}

/// Offload as much as the colouring allows: cut at the highest
/// non-conflicted edges (the paper's "topmost" partition).
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxOffload;

impl Solver for MaxOffload {
    fn name(&self) -> &'static str {
        "max-offload"
    }

    fn solve_in(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        _scratch: &mut SolveScratch,
    ) -> Result<Solution, AssignError> {
        EvalScratch::with_thread_local(|es| {
            Solution::from_cut_in(
                prep,
                Cut::max_offload(&prep.tree, &prep.colouring),
                lambda,
                SolveStats::default(),
                es,
            )
        })
    }
}

/// Greedy local descent: start from the topmost cut and repeatedly apply
/// the best single *push-down* move (replace a cut edge by the edges one
/// level below) while the objective improves. Polynomial and typically
/// good, but not optimal — the gap to the exact solvers is itself an
/// experiment.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyDescent;

impl Solver for GreedyDescent {
    fn name(&self) -> &'static str {
        "greedy-descent"
    }

    fn solve_in(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        _scratch: &mut SolveScratch,
    ) -> Result<Solution, AssignError> {
        let mut current = Cut::max_offload(&prep.tree, &prep.colouring);
        let (_, rep) = evaluate_cut(prep, &current)?;
        let mut best_obj = rep.ssb_scaled(lambda);
        let mut evaluated = 1u64;
        let mut iterations = 0u64;
        loop {
            iterations += 1;
            let mut improved: Option<(Cut, u128)> = None;
            for (i, &edge) in current.edges().iter().enumerate() {
                let Some(children) = push_down(prep, edge) else {
                    continue;
                };
                let mut edges: Vec<TreeEdge> = current.edges().to_vec();
                edges.remove(i);
                edges.extend(children);
                let cand = Cut::new(&prep.tree, edges)?;
                let (_, rep) = evaluate_cut(prep, &cand)?;
                evaluated += 1;
                let obj = rep.ssb_scaled(lambda);
                if obj < best_obj && improved.as_ref().map(|(_, o)| obj < *o).unwrap_or(true) {
                    improved = Some((cand, obj));
                }
            }
            match improved {
                Some((cut, obj)) => {
                    current = cut;
                    best_obj = obj;
                }
                None => break,
            }
        }
        EvalScratch::with_thread_local(|es| {
            Solution::from_cut_in(
                prep,
                current,
                lambda,
                SolveStats {
                    iterations,
                    evaluated,
                    ..SolveStats::default()
                },
                es,
            )
        })
    }
}

/// The edges one level below `edge`, or `None` when it cannot be pushed
/// further (a sensor edge).
fn push_down(prep: &Prepared<'_>, edge: TreeEdge) -> Option<Vec<TreeEdge>> {
    match edge {
        TreeEdge::Sensor(_) => None,
        TreeEdge::Parent(c) => {
            if prep.tree.is_leaf(c) {
                Some(vec![TreeEdge::Sensor(c)])
            } else {
                Some(
                    prep.tree
                        .children(c)
                        .iter()
                        .map(|&ch| TreeEdge::Parent(ch))
                        .collect(),
                )
            }
        }
    }
}

/// A seeded random valid cut: descend from the root, cutting each cuttable
/// edge with probability `p_cut`.
#[derive(Clone, Copy, Debug)]
pub struct RandomCut {
    /// RNG seed.
    pub seed: u64,
    /// Probability of cutting at each opportunity (per mille).
    pub p_cut_permille: u32,
}

impl Default for RandomCut {
    fn default() -> Self {
        RandomCut {
            seed: 0,
            p_cut_permille: 500,
        }
    }
}

impl Solver for RandomCut {
    fn name(&self) -> &'static str {
        "random-cut"
    }

    fn solve_in(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        _scratch: &mut SolveScratch,
    ) -> Result<Solution, AssignError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges = Vec::new();
        let mut stack = vec![prep.tree.root()];
        while let Some(c) = stack.pop() {
            let parent_edge = TreeEdge::Parent(c);
            let may_cut = c != prep.tree.root() && prep.colouring.cuttable(parent_edge);
            let cut_here = may_cut && rng.random_range(0..1000) < self.p_cut_permille;
            if cut_here {
                edges.push(parent_edge);
            } else if prep.tree.is_leaf(c) {
                edges.push(TreeEdge::Sensor(c));
            } else {
                for &ch in prep.tree.children(c) {
                    stack.push(ch);
                }
            }
        }
        EvalScratch::with_thread_local(|es| {
            Solution::from_cut_in(
                prep,
                Cut::new(&prep.tree, edges)?,
                lambda,
                SolveStats::default(),
                es,
            )
        })
    }
}

/// Bokhari's objective as a solver: minimises `max(S, B)` exactly (via the
/// shared colour frontiers), then reports the resulting partition's S + B
/// delay — the comparison the paper motivates in §2.
#[derive(Clone, Copy, Debug, Default)]
pub struct SbObjective {
    /// Frontier configuration.
    pub config: ExpandedConfig,
}

impl Solver for SbObjective {
    fn name(&self) -> &'static str {
        "sb-objective"
    }

    fn solve_in(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        _scratch: &mut SolveScratch,
    ) -> Result<Solution, AssignError> {
        let (mut sol, _sb) = solve_sb_expanded(prep, &self.config)?;
        // Re-report the objective under the requested λ for comparability.
        sol.lambda = lambda;
        sol.objective = sol.report.ssb_scaled(lambda);
        Ok(sol)
    }
}

/// The bottleneck `max(S,B)` value achieved by the SB-objective solver.
pub fn sb_optimum(prep: &Prepared<'_>) -> Result<Cost, AssignError> {
    let (_, sb) = solve_sb_expanded(prep, &ExpandedConfig::default())?;
    Ok(sb)
}

/// All built-in solvers, for benches and examples.
pub fn all_solvers() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(crate::PaperSsb::default()),
        Box::new(crate::Expanded::default()),
        Box::new(crate::BruteForce::default()),
        Box::new(AllOnHost),
        Box::new(MaxOffload),
        Box::new(GreedyDescent),
        Box::new(RandomCut::default()),
        Box::new(SbObjective::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;
    use hsa_tree::figures::fig2_tree;

    #[test]
    fn baselines_are_valid_but_not_better_than_optimal() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let optimal = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
        for solver in all_solvers() {
            let sol = solver.solve(&prep, Lambda::HALF).unwrap();
            sol.cut.validate(&t).unwrap();
            assert!(
                sol.objective >= optimal.objective,
                "{} beat the optimum?!",
                solver.name()
            );
        }
    }

    #[test]
    fn greedy_at_least_matches_its_start() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let start = MaxOffload.solve(&prep, Lambda::HALF).unwrap();
        let greedy = GreedyDescent.solve(&prep, Lambda::HALF).unwrap();
        assert!(greedy.objective <= start.objective);
    }

    #[test]
    fn random_cut_is_deterministic_per_seed() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let a = RandomCut {
            seed: 7,
            p_cut_permille: 400,
        }
        .solve(&prep, Lambda::HALF)
        .unwrap();
        let b = RandomCut {
            seed: 7,
            p_cut_permille: 400,
        }
        .solve(&prep, Lambda::HALF)
        .unwrap();
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn sb_objective_minimises_bottleneck_not_delay() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let sb = sb_optimum(&prep).unwrap();
        // No cut can have a smaller max(S, B).
        let optimal_delay = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
        let delay_sb = optimal_delay
            .report
            .host_time
            .max(optimal_delay.report.bottleneck);
        assert!(sb <= delay_sb);
    }

    #[test]
    fn all_on_host_places_everything_on_host() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let sol = AllOnHost.solve(&prep, Lambda::HALF).unwrap();
        assert_eq!(sol.assignment.host.len(), t.len());
    }
}
