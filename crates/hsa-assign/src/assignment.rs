//! Assignments (the deliverable of the optimisation) and their delay
//! evaluation, computed **directly from the tree** — independent of the
//! assignment-graph labellings, so it doubles as the oracle the graph-side
//! algorithms are tested against.

use crate::{AssignError, Prepared};
use hsa_graph::{Cost, Lambda, ScaledSsb};
use hsa_tree::{host_time_of_cut, satellite_loads_of_cut, CruId, Cut, SatelliteId, TreeEdge};
use serde::{Deserialize, Serialize};

/// Where each CRU runs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// CRUs on the host, in pre-order.
    pub host: Vec<CruId>,
    /// CRUs per satellite (indexed by satellite id), each in pre-order.
    pub per_satellite: Vec<Vec<CruId>>,
}

/// Per-satellite share of the bottleneck weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SatelliteLoad {
    /// The satellite.
    pub satellite: SatelliteId,
    /// Processing + transmission time (the per-colour Σβ).
    pub total: Cost,
}

/// Full delay breakdown of an assignment (paper §3's objective).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayReport {
    /// S — host processing time (Σ h over host CRUs).
    pub host_time: Cost,
    /// Per-satellite loads (Σ s + Σ comm per satellite).
    pub satellite_loads: Vec<SatelliteLoad>,
    /// B — the bottleneck satellite's load.
    pub bottleneck: Cost,
    /// The satellite achieving B (None when every load is zero).
    pub bottleneck_satellite: Option<SatelliteId>,
    /// End-to-end delay = S + B (the paper's objective at λ = ½).
    pub end_to_end: Cost,
}

impl DelayReport {
    /// The λ-scaled SSB objective of this partition.
    pub fn ssb_scaled(&self, lambda: Lambda) -> ScaledSsb {
        lambda.ssb_scaled(self.host_time, self.bottleneck)
    }
}

/// Evaluates a cut into its assignment + delay report, straight from the
/// tree and the cost model.
pub fn evaluate_cut(
    prep: &Prepared<'_>,
    cut: &Cut,
) -> Result<(Assignment, DelayReport), AssignError> {
    cut.validate(&prep.tree)?;
    // Where does each CRU go?
    let below = cut.below_mask(&prep.tree);
    let mut host = Vec::new();
    let mut per_satellite: Vec<Vec<CruId>> = vec![Vec::new(); prep.n_satellites() as usize];
    for c in prep.tree.preorder() {
        if below[c.index()] {
            let sat = prep.colouring.node_colour[c.index()]
                .satellite()
                .ok_or_else(|| {
                    AssignError::Internal(format!("{c} below the cut but conflicted"))
                })?;
            per_satellite[sat.index()].push(c);
        } else {
            host.push(c);
        }
    }

    let host_time = host_time_of_cut(&prep.tree, &prep.costs, cut.edges());
    let colour_of = |e: TreeEdge| prep.colouring.edge_colour(e).satellite();
    let loads = satellite_loads_of_cut(&prep.tree, &prep.costs, colour_of, cut.edges());
    let satellite_loads: Vec<SatelliteLoad> = loads
        .iter()
        .enumerate()
        .map(|(i, &total)| SatelliteLoad {
            satellite: SatelliteId(i as u32),
            total,
        })
        .collect();
    let (bottleneck, bottleneck_satellite) =
        loads
            .iter()
            .enumerate()
            .fold((Cost::ZERO, None), |(best, who), (i, &l)| {
                if l > best {
                    (l, Some(SatelliteId(i as u32)))
                } else {
                    (best, who)
                }
            });

    Ok((
        Assignment {
            host,
            per_satellite,
        },
        DelayReport {
            host_time,
            satellite_loads,
            bottleneck,
            bottleneck_satellite,
            end_to_end: host_time + bottleneck,
        },
    ))
}

/// Reusable buffers for the walk-free cut evaluation
/// ([`evaluate_cut_in`]). One per worker thread; steady-state answers then
/// reuse the range and load buffers instead of reallocating them, and only
/// the `Solution`-owned output vectors are freshly built.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Per cut edge with a below-subtree: `(preorder pos, size, colour)`.
    ranges: Vec<(u32, u32, u32)>,
    /// Per-satellite load accumulator (`Σ β` per colour).
    loads: Vec<Cost>,
}

impl EvalScratch {
    /// A fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }

    /// Runs `f` with this thread's shared scratch — the zero-plumbing way
    /// for a solver to reach the walk-free path without threading a
    /// scratch through its own signature. Worker threads (the engine
    /// pool) each keep their own warm instance.
    pub fn with_thread_local<R>(f: impl FnOnce(&mut EvalScratch) -> R) -> R {
        thread_local! {
            static SCRATCH: std::cell::RefCell<EvalScratch> =
                std::cell::RefCell::new(EvalScratch::new());
        }
        SCRATCH.with(|s| f(&mut s.borrow_mut()))
    }
}

/// Walk-free twin of [`evaluate_cut`]: evaluates a cut using the σ/β edge
/// labels and the pre-order index instead of re-walking the tree.
///
/// Byte-identity with the oracle holds by construction:
///
/// * **S** — `Σ σ(e)` over the cut equals the host-side `Σ h` (the Figure 8
///   σ identity, property-tested in `hsa-tree::sigma`); [`Cost`] addition
///   saturates, and saturating addition of non-negatives is associative
///   and commutative (both groupings equal `min(true sum, MAX)`), so the
///   per-edge grouping reproduces the oracle's node-by-node sum exactly.
/// * **loads** — `β(Parent(c)) = Σ s(subtree c) + c_up(c)` and
///   `β(Sensor(l)) = c_raw(l)`; summing β per edge colour is the
///   `satellite_loads_of_cut` oracle under the same associativity.
/// * **assignment** — subtrees are contiguous pre-order ranges
///   ([`crate::EvalIndex`]); concatenating the colour-`s` ranges in
///   pre-order position order reproduces the oracle's pre-order
///   per-satellite lists, and the gaps between ranges are exactly the
///   host-side nodes, in pre-order.
///
/// Cuts whose below-nodes are not uniformly satellite-coloured (only
/// possible for hand-built cuts, never for frontier-assembled ones) fall
/// back to [`evaluate_cut`] so error behaviour is identical too. The cut
/// is **trusted** (frontier assembly builds valid cuts by construction);
/// debug builds assert validity.
pub fn evaluate_cut_in(
    prep: &Prepared<'_>,
    cut: &Cut,
    scratch: &mut EvalScratch,
) -> Result<(Assignment, DelayReport), AssignError> {
    debug_assert!(cut.validate(&prep.tree).is_ok(), "trusted cut invalid");
    let n_sat = prep.n_satellites() as usize;
    scratch.loads.clear();
    scratch.loads.resize(n_sat, Cost::ZERO);
    scratch.ranges.clear();

    let mut host_time = Cost::ZERO;
    for &e in cut.edges() {
        host_time += prep.sigma.sigma(e);
        if let Some(s) = prep.colouring.edge_colour(e).satellite() {
            scratch.loads[s.index()] += prep.beta.beta(e);
        }
        if let TreeEdge::Parent(c) = e {
            let Some(s) = prep.colouring.node_colour[c.index()].satellite() else {
                // Conflicted below-subtree: delegate to the oracle for its
                // exact error (which names the first conflicted node).
                return evaluate_cut(prep, cut);
            };
            scratch.ranges.push((
                prep.eval.pos[c.index()],
                prep.eval.size[c.index()],
                s.index() as u32,
            ));
        }
    }

    // Assemble placement lists from pre-order ranges: colour ranges in
    // position order, host nodes from the gaps between them.
    scratch.ranges.sort_unstable_by_key(|r| r.0);
    let offloaded: u32 = scratch.ranges.iter().map(|r| r.1).sum();
    let mut host = Vec::with_capacity(prep.tree.len() - offloaded as usize);
    let mut per_satellite: Vec<Vec<CruId>> = vec![Vec::new(); n_sat];
    let mut cursor = 0usize;
    for &(pos, size, s) in &scratch.ranges {
        let (pos, size) = (pos as usize, size as usize);
        host.extend_from_slice(&prep.eval.preorder[cursor..pos]);
        per_satellite[s as usize].extend_from_slice(&prep.eval.preorder[pos..pos + size]);
        cursor = pos + size;
    }
    host.extend_from_slice(&prep.eval.preorder[cursor..]);

    let satellite_loads: Vec<SatelliteLoad> = scratch
        .loads
        .iter()
        .enumerate()
        .map(|(i, &total)| SatelliteLoad {
            satellite: SatelliteId(i as u32),
            total,
        })
        .collect();
    let (bottleneck, bottleneck_satellite) =
        scratch
            .loads
            .iter()
            .enumerate()
            .fold((Cost::ZERO, None), |(best, who), (i, &l)| {
                if l > best {
                    (l, Some(SatelliteId(i as u32)))
                } else {
                    (best, who)
                }
            });

    Ok((
        Assignment {
            host,
            per_satellite,
        },
        DelayReport {
            host_time,
            satellite_loads,
            bottleneck,
            bottleneck_satellite,
            end_to_end: host_time + bottleneck,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_tree::figures::{cru, fig2_tree, SAT_B, SAT_R};

    #[test]
    fn all_on_host_has_raw_transfer_bottleneck() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::all_on_host(&t);
        let (asg, rep) = evaluate_cut(&prep, &cut).unwrap();
        assert_eq!(asg.host.len(), t.len());
        assert!(asg.per_satellite.iter().all(|v| v.is_empty()));
        assert_eq!(rep.host_time, m.total_host_time());
        // B satellite forwards raw frames of leaves 11, 12, 13.
        let raw_b = m.c_raw(cru(11)) + m.c_raw(cru(12)) + m.c_raw(cru(13));
        assert_eq!(rep.satellite_loads[SAT_B.index()].total, raw_b);
        assert_eq!(rep.end_to_end, rep.host_time + rep.bottleneck);
    }

    #[test]
    fn max_offload_keeps_only_forced_on_host() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::max_offload(&t, &prep.colouring);
        let (asg, rep) = evaluate_cut(&prep, &cut).unwrap();
        assert_eq!(asg.host, vec![cru(1), cru(2), cru(3)]);
        // R gets subtree(CRU4) whole.
        assert!(asg.per_satellite[SAT_R.index()].contains(&cru(4)));
        assert!(asg.per_satellite[SAT_R.index()].contains(&cru(9)));
        // B gets both subtree(CRU5) and subtree(CRU6).
        let b = &asg.per_satellite[SAT_B.index()];
        assert!(b.contains(&cru(5)) && b.contains(&cru(6)) && b.contains(&cru(13)));
        assert_eq!(rep.host_time, m.h(cru(1)) + m.h(cru(2)) + m.h(cru(3)));
        // Bottleneck is whichever satellite load is max; consistency checks:
        let max = rep
            .satellite_loads
            .iter()
            .map(|l| l.total)
            .fold(Cost::ZERO, Cost::max);
        assert_eq!(rep.bottleneck, max);
        assert!(rep.bottleneck_satellite.is_some());
    }

    #[test]
    fn ssb_scaled_matches_lambda() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let (_a, rep) = evaluate_cut(&prep, &Cut::all_on_host(&t)).unwrap();
        assert_eq!(
            rep.ssb_scaled(Lambda::HALF),
            rep.host_time.ticks() as u128 + rep.bottleneck.ticks() as u128
        );
        assert_eq!(rep.ssb_scaled(Lambda::ONE), rep.host_time.ticks() as u128);
    }

    #[test]
    fn every_cru_is_placed_exactly_once() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::max_offload(&t, &prep.colouring);
        let (asg, _rep) = evaluate_cut(&prep, &cut).unwrap();
        let mut seen = vec![false; t.len()];
        for &c in asg.host.iter().chain(asg.per_satellite.iter().flatten()) {
            assert!(!seen[c.index()], "{c} placed twice");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
