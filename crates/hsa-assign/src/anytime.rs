//! Cancellation and gap certificates: the plumbing anytime solvers share.
//!
//! A racing portfolio (hsa-engine) runs several solver arms over one
//! [`crate::Prepared`] instance and wants two things from this layer:
//!
//! * a **cooperative cancellation flag** every arm polls ([`CancelToken`]),
//!   doubling as a soft deadline — heuristic arms answer with their best
//!   incumbent when it fires, the exact arm aborts with
//!   [`crate::AssignError::Cancelled`];
//! * a **certified optimality gap** ([`GapCertificate`]) bracketing every
//!   answer: `lower ≤ optimum ≤ upper` in the λ-scaled SSB objective, where
//!   the upper bound is the reported cut's own objective and the lower
//!   bound comes from an admissible relaxation (or the exact envelope once
//!   it is known, collapsing the gap to zero).

use crate::Prepared;
use hsa_graph::{Cost, Lambda, ScaledSsb};
use hsa_tree::TreeEdge;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared cooperative cancellation flag with an optional deadline.
///
/// Clones share the underlying flag: cancelling any clone cancels them
/// all. Solvers poll [`CancelToken::is_cancelled`] at natural loop
/// boundaries (per tree node in the frontier DP, per generation in the
/// heuristics) — polling is one `Acquire` load plus, when a deadline is
/// set, one monotonic clock read.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that reports cancelled once `deadline` passes, in addition
    /// to explicit [`CancelToken::cancel`] calls.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// A clone sharing this token's flag that additionally fires once
    /// `deadline` passes. The racing portfolio hands these to its
    /// heuristic arms (soft budget: answer with the incumbent) while the
    /// exact arm keeps the undated original and only stops when the race
    /// is explicitly cancelled.
    pub fn until(&self, deadline: Instant) -> CancelToken {
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: Some(deadline),
        }
    }

    /// Requests cancellation: every clone observes it on its next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] was called on any clone, or the
    /// deadline (if set) has passed.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// A certified bracket on the optimum of one λ query: the answer it
/// accompanies costs `upper`, and no feasible cut can cost less than
/// `lower` (both in the λ-scaled SSB objective, [`ScaledSsb`] units).
///
/// Soundness is by construction: `upper` is the objective of an actually
/// evaluated feasible cut, and `lower` comes from either the structural
/// relaxation ([`structural_lower_bound`], admissible by dropping the
/// coupling between colours) or the exact λ-envelope (in which case
/// `lower == upper` and the certificate is tight). Upgrades over an
/// answer's lifetime only ever shrink the gap: `lower` is monotonically
/// non-decreasing, `upper` monotonically non-increasing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapCertificate {
    /// Certified lower bound on the optimum (admissible, never above it).
    pub lower: ScaledSsb,
    /// The reported answer's own objective (a feasible upper bound).
    pub upper: ScaledSsb,
    /// The λ both bounds are scaled with.
    pub lambda: Lambda,
}

impl GapCertificate {
    /// Builds a certificate, clamping `lower` to `upper` so a conservative
    /// bound can never produce a negative gap.
    pub fn new(lower: ScaledSsb, upper: ScaledSsb, lambda: Lambda) -> GapCertificate {
        GapCertificate {
            lower: lower.min(upper),
            upper,
            lambda,
        }
    }

    /// A zero-gap certificate for an exactly-solved answer.
    pub fn tight(optimum: ScaledSsb, lambda: Lambda) -> GapCertificate {
        GapCertificate {
            lower: optimum,
            upper: optimum,
            lambda,
        }
    }

    /// The absolute certified gap, `upper − lower`.
    pub fn gap(&self) -> ScaledSsb {
        self.upper - self.lower
    }

    /// True when the answer is certified optimal (`lower == upper`).
    pub fn is_tight(&self) -> bool {
        self.lower == self.upper
    }

    /// The relative gap `(upper − lower) / upper` (0 when tight; 1 when
    /// the lower bound is vacuous or `upper` is zero-cost).
    pub fn relative_gap(&self) -> f64 {
        if self.upper == 0 {
            return 0.0;
        }
        self.gap() as f64 / self.upper as f64
    }

    /// Merges a better answer into this certificate: the gap shrinks (or
    /// stays) on both sides, never widens. Used by the racing portfolio
    /// when a later arm improves the incumbent or tightens the bound.
    pub fn tightened(&self, lower: ScaledSsb, upper: ScaledSsb) -> GapCertificate {
        GapCertificate {
            lower: self.lower.max(lower).min(self.upper.min(upper)),
            upper: self.upper.min(upper),
            lambda: self.lambda,
        }
    }
}

/// An admissible structural lower bound on the λ-scaled optimum, O(n) and
/// λ-independent in its inputs — usable before any frontier exists.
///
/// Relaxation argument: any feasible cut covers every leaf's sensor path
/// with exactly one edge, so per colour the host-time contribution is at
/// least the colour's cheapest single-point cover... more precisely:
///
/// * **S side**: every leaf must be covered by some cut edge on its
///   root path; charge each *colour* the cheapest σ over all edges in its
///   region (a colour with any covered leaf contributes at least its
///   region-wide minimum σ once). Summing those minima over colours that
///   must appear (colours owning at least one leaf) never exceeds the true
///   Σσ of a feasible cut.
/// * **B side**: the bottleneck is the loaded satellite's Σβ; for each
///   colour the load, if the colour appears, is at least the minimum β
///   over its region's edges. The max over *forced* colours (colours
///   owning a leaf reachable only through that colour's region) bounds B
///   from below. We conservatively use the max over colours owning leaves
///   of the per-colour minimum β — admissible because every leaf's cover
///   edge lies inside its own colour's region.
pub fn structural_lower_bound(prep: &Prepared<'_>, lambda: Lambda) -> ScaledSsb {
    let n_colours = prep.n_satellites() as usize;
    let mut min_sigma: Vec<Option<Cost>> = vec![None; n_colours];
    let mut min_beta: Vec<Option<Cost>> = vec![None; n_colours];
    let tree = prep.tree.as_ref();
    let mut note = |s: usize, e: TreeEdge| {
        let (sg, bt) = (prep.sigma.sigma(e), prep.beta.beta(e));
        min_sigma[s] = Some(min_sigma[s].map_or(sg, |m: Cost| m.min(sg)));
        min_beta[s] = Some(min_beta[s].map_or(bt, |m: Cost| m.min(bt)));
    };
    for s in 0..n_colours {
        for &top in prep.tops.of(s) {
            for c in tree.subtree(top) {
                if c != tree.root() {
                    let e = TreeEdge::Parent(c);
                    if prep.colouring.cuttable(e) {
                        note(s, e);
                    }
                }
                if tree.is_leaf(c) {
                    note(s, TreeEdge::Sensor(c));
                }
            }
        }
    }
    let mut s_lb = Cost::ZERO;
    let mut b_lb = Cost::ZERO;
    for s in 0..n_colours {
        if let (Some(sg), Some(bt)) = (min_sigma[s], min_beta[s]) {
            s_lb += sg;
            b_lb = b_lb.max(bt);
        }
    }
    lambda.ssb_scaled(s_lb, b_lb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForce, Solver};
    use hsa_tree::figures::fig2_tree;
    use std::time::Duration;

    #[test]
    fn cancel_token_shared_and_deadline() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        let past = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(past.is_cancelled());
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }

    #[test]
    fn certificate_gap_arithmetic_and_monotone_tightening() {
        let c = GapCertificate::new(10, 30, Lambda::HALF);
        assert_eq!(c.gap(), 20);
        assert!(!c.is_tight());
        assert!((c.relative_gap() - 20.0 / 30.0).abs() < 1e-12);
        // Tightening never widens either side.
        let t = c.tightened(15, 25);
        assert_eq!((t.lower, t.upper), (15, 25));
        let worse = t.tightened(5, 40);
        assert_eq!((worse.lower, worse.upper), (15, 25));
        // Collapse to tight.
        let tight = t.tightened(25, 25);
        assert!(tight.is_tight());
        assert_eq!(GapCertificate::tight(7, Lambda::HALF).gap(), 0);
        // A conservative lower above the upper clamps instead of crossing.
        assert_eq!(GapCertificate::new(50, 30, Lambda::HALF).lower, 30);
    }

    #[test]
    fn structural_bound_is_admissible_on_fig2() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        for lambda in [Lambda::ZERO, Lambda::HALF, Lambda::ONE] {
            let opt = BruteForce::default().solve(&prep, lambda).unwrap();
            let lb = structural_lower_bound(&prep, lambda);
            assert!(
                lb <= opt.objective,
                "structural bound {lb} exceeds optimum {} at λ={lambda:?}",
                opt.objective
            );
        }
    }
}
