//! The **full-expansion** exact solver.
//!
//! The paper's adapted SSB algorithm (§5.4) works on an *expanded*
//! assignment graph E′ in which same-coloured subgraphs have been replaced
//! by composite parallel edges, and states its running time as O(|E′|).
//! This module implements the clean closed form of that idea:
//!
//! 1. **Per-colour frontiers.** The coloured cut problem decomposes by
//!    colour: a colour's cut edges live in its own uniformly-coloured
//!    subtrees, so the choices for different satellites are independent —
//!    they interact *only* through `B = max_colour Σβ`. For every satellite
//!    we enumerate the Pareto frontier of `(Σσ, Σβ)` over all ways to cover
//!    its leaves (a post-order dynamic program with Minkowski sums and
//!    dominance pruning). Each frontier point is precisely one composite
//!    edge of the paper's expanded graph — our `composites` statistic *is*
//!    |E′|.
//! 2. **Threshold sweep.** The optimum's B equals some frontier β value, so
//!    sweeping candidate thresholds θ over the union of frontier β values
//!    and, for each θ, picking per colour the cheapest point with β ≤ θ
//!    yields the exact optimum of `λ·S + (1−λ)·B` in O(|E′| log |E′|).
//!
//! The same frontiers also answer Bokhari's objective `max(S, B)`
//! ([`solve_sb_expanded`]), which the objective-comparison experiment (T3)
//! uses.
//!
//! Dominance pruning never approximates: a dominated point (σ and β both no
//! better) can be substituted by its dominator in any solution without
//! increasing either objective component. A configurable cap guards the
//! frontier size and fails loudly ([`AssignError::FrontierOverflow`])
//! rather than degrade silently.

use crate::{AssignError, CancelToken, EvalScratch, Prepared, Solution, SolveStats, Solver};
use hsa_graph::{Cost, Lambda, SolveScratch};
#[cfg(test)]
use hsa_tree::SatelliteId;
use hsa_tree::{CruId, Cut, TreeEdge};

/// One Pareto-optimal way to cover a colour's leaves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontierPoint {
    /// Σ σ of the chosen cut edges (host-time contribution).
    pub sigma: Cost,
    /// Σ β of the chosen cut edges (this satellite's load).
    pub beta: Cost,
    /// The chosen closed-tree edges.
    pub edges: Vec<TreeEdge>,
}

/// A Pareto frontier: sorted by β ascending with σ strictly descending.
pub type Frontier = Vec<FrontierPoint>;

/// Configuration of the full-expansion solver.
#[derive(Clone, Copy, Debug)]
pub struct ExpandedConfig {
    /// Maximum allowed size of any intermediate frontier.
    pub frontier_cap: usize,
}

impl Default for ExpandedConfig {
    fn default() -> Self {
        ExpandedConfig {
            frontier_cap: 1_000_000,
        }
    }
}

/// Sorts + prunes to the Pareto frontier (min σ for each β, then strictly
/// decreasing σ). Deterministic: ties keep the lexicographically smallest
/// edge list.
fn pareto_prune(mut pts: Vec<FrontierPoint>, cap: usize) -> Result<Frontier, AssignError> {
    pts.sort_by(|a, b| {
        a.beta
            .cmp(&b.beta)
            .then(a.sigma.cmp(&b.sigma))
            .then_with(|| a.edges.cmp(&b.edges))
    });
    let mut out: Frontier = Vec::new();
    for p in pts {
        match out.last() {
            Some(last) if p.sigma >= last.sigma => {} // dominated (β ≥, σ ≥)
            _ => out.push(p),
        }
    }
    if out.len() > cap {
        return Err(AssignError::FrontierOverflow { cap });
    }
    Ok(out)
}

/// Minkowski sum of two frontiers (σ and β add, edge lists concatenate),
/// pruned.
fn minkowski(a: &Frontier, b: &Frontier, cap: usize) -> Result<Frontier, AssignError> {
    if a.len().saturating_mul(b.len()) > cap.saturating_mul(4) {
        return Err(AssignError::FrontierOverflow { cap });
    }
    let mut pts = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            let mut edges = x.edges.clone();
            edges.extend_from_slice(&y.edges);
            pts.push(FrontierPoint {
                sigma: x.sigma + y.sigma,
                beta: x.beta + y.beta,
                edges,
            });
        }
    }
    pareto_prune(pts, cap)
}

/// All ways to cover the leaves of `c`'s subtree with cuts *at or below*
/// the edge ⟨parent(c), c⟩.
fn cover_at_or_below(
    prep: &Prepared<'_>,
    c: CruId,
    cfg: &ExpandedConfig,
    cancel: Option<&CancelToken>,
) -> Result<Frontier, AssignError> {
    let mut pts_below = cover_below(prep, c, cfg, cancel)?;
    if c != prep.tree.root() {
        let e = TreeEdge::Parent(c);
        pts_below.push(FrontierPoint {
            sigma: prep.sigma.sigma(e),
            beta: prep.beta.beta(e),
            edges: vec![e],
        });
    }
    pareto_prune(pts_below, cfg.frontier_cap)
}

/// All ways to cover the leaves of `c`'s subtree with cuts strictly below
/// `c` (sensor edge for leaves; child combinations otherwise).
///
/// Polls `cancel` once per visited node — the Minkowski fold between two
/// polls is bounded by the frontier cap, so a cancelled prepare unwinds
/// promptly instead of finishing a colour.
fn cover_below(
    prep: &Prepared<'_>,
    c: CruId,
    cfg: &ExpandedConfig,
    cancel: Option<&CancelToken>,
) -> Result<Frontier, AssignError> {
    if cancel.is_some_and(CancelToken::is_cancelled) {
        return Err(AssignError::Cancelled);
    }
    if prep.tree.is_leaf(c) {
        let e = TreeEdge::Sensor(c);
        return Ok(vec![FrontierPoint {
            sigma: prep.sigma.sigma(e),
            beta: prep.beta.beta(e),
            edges: vec![e],
        }]);
    }
    let mut acc: Frontier = seed_frontier();
    for &ch in prep.tree.children(c) {
        let child_frontier = cover_at_or_below(prep, ch, cfg, cancel)?;
        acc = minkowski(&acc, &child_frontier, cfg.frontier_cap)?;
    }
    Ok(acc)
}

/// The zero-point frontier every colour accumulation starts from.
fn seed_frontier() -> Frontier {
    vec![FrontierPoint {
        sigma: Cost::ZERO,
        beta: Cost::ZERO,
        edges: Vec::new(),
    }]
}

/// Runs the per-region cover DP for every colour whose `rebuild` flag is
/// set, folding into the matching `frontiers` slot (which must hold the
/// seed frontier); unflagged slots are left untouched. Shared by the
/// from-scratch preparation (all flags set) and the incremental refresh
/// (only dirty flags set), so both produce identical frontiers per colour
/// by construction.
fn build_frontiers_into(
    prep: &Prepared<'_>,
    cfg: &ExpandedConfig,
    frontiers: &mut [Frontier],
    rebuild: &[bool],
    cancel: Option<&CancelToken>,
) -> Result<(), AssignError> {
    for s in 0..prep.n_satellites() as usize {
        if !rebuild[s] {
            continue;
        }
        for &c in prep.tops.of(s) {
            let f = if c == prep.tree.root() {
                // Root cannot be cut above; cover strictly below.
                cover_below(prep, c, cfg, cancel)?
            } else {
                cover_at_or_below(prep, c, cfg, cancel)?
            };
            frontiers[s] = minkowski(&frontiers[s], &f, cfg.frontier_cap)?;
        }
    }
    Ok(())
}

/// Per-colour Pareto frontiers for an instance. Unused satellites get an
/// empty-edge zero point.
pub fn colour_frontiers(
    prep: &Prepared<'_>,
    cfg: &ExpandedConfig,
) -> Result<Vec<Frontier>, AssignError> {
    let n = prep.n_satellites() as usize;
    let mut frontiers: Vec<Frontier> = vec![seed_frontier(); n];
    build_frontiers_into(prep, cfg, &mut frontiers, &vec![true; n], None)?;
    Ok(frontiers)
}

/// For each colour, the index of the cheapest-σ point with β ≤ θ (i.e. the
/// last frontier point with β ≤ θ, frontiers being β-sorted/σ-descending).
/// Shared with the λ-frontier so both sweeps pick identically by
/// construction.
///
/// Equivalence with the nested formulation: `pareto_prune` emits strictly
/// increasing β (an equal-β later point has σ ≥ its predecessor's and is
/// dropped as dominated), so a binary search over the `beta` arena alone
/// finds the same index a search over full points would.
pub(crate) fn pick_for_threshold(fs: &FrontierSet, theta: Cost) -> Option<Vec<usize>> {
    let mut picks = Vec::with_capacity(fs.n_colours());
    for f in fs.colours() {
        let idx = f.beta.partition_point(|&b| b <= theta);
        if idx == 0 {
            return None; // infeasible θ for this colour
        }
        picks.push(idx - 1);
    }
    Some(picks)
}

fn assemble(
    prep: &Prepared<'_>,
    fs: &FrontierSet,
    picks: &[usize],
    lambda: Lambda,
    stats: SolveStats,
) -> Result<Solution, AssignError> {
    let mut edges: Vec<TreeEdge> = Vec::new();
    for (f, &i) in fs.colours().zip(picks) {
        edges.extend_from_slice(f.point_edges(i));
    }
    // Frontier points are valid per-colour partial cuts and colours'
    // regions are disjoint, so their union is a valid cut by construction:
    // take the walk-free path (`trusted` + label-based evaluation).
    let cut = Cut::trusted(&prep.tree, edges);
    EvalScratch::with_thread_local(|es| Solution::from_cut_in(prep, cut, lambda, stats, es))
}

/// A borrowed view of one colour's Pareto frontier inside a
/// [`FrontierSet`]'s flat arenas.
///
/// The per-point fields live in parallel arrays (`sigma[i]`/`beta[i]` are
/// point `i`'s coordinates; β strictly ascending, σ strictly descending),
/// so threshold scans touch one contiguous `beta` run per colour instead
/// of striding over boxed points.
#[derive(Clone, Copy, Debug)]
pub struct ColourFrontier<'a> {
    /// Σσ of each point (strictly descending).
    pub sigma: &'a [Cost],
    /// Σβ of each point (strictly ascending).
    pub beta: &'a [Cost],
    /// Absolute offsets into `edges`; point `i` owns
    /// `edges[edge_starts[i]..edge_starts[i+1]]`. Length `len() + 1`.
    edge_starts: &'a [u32],
    /// The whole edge arena (shared across colours).
    edges: &'a [TreeEdge],
}

impl<'a> ColourFrontier<'a> {
    /// Number of Pareto points.
    pub fn len(&self) -> usize {
        self.sigma.len()
    }

    /// True when the colour has no feasible cover at all.
    pub fn is_empty(&self) -> bool {
        self.sigma.is_empty()
    }

    /// The closed-tree edges of point `i`.
    pub fn point_edges(&self, i: usize) -> &'a [TreeEdge] {
        &self.edges[self.edge_starts[i] as usize..self.edge_starts[i + 1] as usize]
    }

    /// Materialises point `i` in the nested representation.
    pub fn point(&self, i: usize) -> FrontierPoint {
        FrontierPoint {
            sigma: self.sigma[i],
            beta: self.beta[i],
            edges: self.point_edges(i).to_vec(),
        }
    }
}

impl PartialEq for ColourFrontier<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.sigma == other.sigma
            && self.beta == other.beta
            && (0..self.len()).all(|i| self.point_edges(i) == other.point_edges(i))
    }
}

impl Eq for ColourFrontier<'_> {}

/// The λ-independent half of the full-expansion solver: per-colour Pareto
/// frontiers plus the sorted candidate thresholds.
///
/// Preparing a `FrontierSet` is the expensive part of every
/// [`Expanded`] solve (the post-order Minkowski DP); the per-λ remainder
/// ([`solve_with_frontiers`]) is a single sweep over the thresholds. Batch
/// services cache one `FrontierSet` per instance and answer each λ query
/// from it — byte-identically to a fresh [`Expanded::solve`], at a fraction
/// of the cost.
///
/// Internally the points of all colours live in **flat CSR-style arenas**:
/// one contiguous `sigma`/`beta` pair of arrays plus one edge arena, with
/// per-colour offset ranges (`point_starts`) — not a `Vec` of per-colour
/// `Vec`s of boxed points. The threshold sweep thereby scans two dense
/// arrays and the per-query cache footprint is three allocations instead
/// of O(points). Access goes through [`FrontierSet::colour`] views; the
/// nested representation is only materialised on demand
/// ([`FrontierSet::to_nested`], the equivalence oracle of the test suite).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontierSet {
    /// Colour `s`'s points occupy `point_starts[s]..point_starts[s+1]` in
    /// the point arenas. Length `n_colours + 1`.
    point_starts: Vec<u32>,
    /// Σσ per point, colour-major.
    sigma: Vec<Cost>,
    /// Σβ per point, colour-major (strictly ascending within a colour).
    beta: Vec<Cost>,
    /// Absolute offsets into `edges`; point `p` owns
    /// `edges[edge_starts[p]..edge_starts[p+1]]`. Length `points + 1`.
    edge_starts: Vec<u32>,
    /// Every point's closed-tree edges, concatenated.
    edges: Vec<TreeEdge>,
    /// Sorted distinct candidate thresholds (every frontier β value).
    pub thetas: Vec<Cost>,
    /// Total frontier points — the paper's |E′|.
    pub composites: u64,
}

impl FrontierSet {
    /// Number of colours (satellites) the set covers.
    pub fn n_colours(&self) -> usize {
        self.point_starts.len() - 1
    }

    /// Colour `s`'s frontier as a borrowed arena view.
    pub fn colour(&self, s: usize) -> ColourFrontier<'_> {
        let (lo, hi) = (
            self.point_starts[s] as usize,
            self.point_starts[s + 1] as usize,
        );
        ColourFrontier {
            sigma: &self.sigma[lo..hi],
            beta: &self.beta[lo..hi],
            edge_starts: &self.edge_starts[lo..=hi],
            edges: &self.edges,
        }
    }

    /// All colours' frontiers, in colour order.
    pub fn colours(&self) -> impl Iterator<Item = ColourFrontier<'_>> {
        (0..self.n_colours()).map(move |s| self.colour(s))
    }

    /// Materialises the nested `Vec<Frontier>` representation (tests and
    /// the layout-equivalence oracle; the hot paths never do this).
    pub fn to_nested(&self) -> Vec<Frontier> {
        self.colours()
            .map(|f| (0..f.len()).map(|i| f.point(i)).collect())
            .collect()
    }
    /// Computes the frontiers and thresholds for an instance.
    pub fn prepare(prep: &Prepared<'_>, cfg: &ExpandedConfig) -> Result<FrontierSet, AssignError> {
        let frontiers = colour_frontiers(prep, cfg)?;
        Ok(FrontierSet::from_frontiers(frontiers))
    }

    /// Like [`FrontierSet::prepare`], but polls `cancel` once per visited
    /// tree node inside the cover DP and aborts with
    /// [`AssignError::Cancelled`] when it fires. An uncancelled run is
    /// byte-identical to [`FrontierSet::prepare`] — the polls change no
    /// fold order. This is the exact arm of the racing portfolio.
    pub fn prepare_cancellable(
        prep: &Prepared<'_>,
        cfg: &ExpandedConfig,
        cancel: &CancelToken,
    ) -> Result<FrontierSet, AssignError> {
        let n = prep.n_satellites() as usize;
        let mut frontiers: Vec<Frontier> = vec![seed_frontier(); n];
        build_frontiers_into(prep, cfg, &mut frontiers, &vec![true; n], Some(cancel))?;
        Ok(FrontierSet::from_frontiers(frontiers))
    }

    /// Recomputes only the colours flagged `dirty`, reusing every clean
    /// colour's frontier from `old` verbatim; thresholds and the composite
    /// count are re-derived from the merged set.
    ///
    /// Correctness contract (established by [`crate::dirty_colours`], and
    /// property-tested end to end in the `hsa-engine` crate): a colour's
    /// frontier depends only on its own top-node regions and the σ/β labels
    /// of the edges inside them, so a colour whose regions and labels are
    /// unchanged has, by construction, an unchanged frontier. `prep` must
    /// be the *updated* instance and `dirty.len()` its satellite count;
    /// `old` must come from the same tree with the same satellite count.
    pub fn refresh(
        prep: &Prepared<'_>,
        cfg: &ExpandedConfig,
        old: &FrontierSet,
        dirty: &[bool],
    ) -> Result<FrontierSet, AssignError> {
        let mut fs = old.clone();
        fs.refresh_in_place(prep, cfg, dirty)?;
        Ok(fs)
    }

    /// The allocation-lean form of [`FrontierSet::refresh`]: patches this
    /// set in place, re-running the cover DP **only** for the dirty
    /// colours (clean colours' arena slices are block-copied, never
    /// re-enumerated point by point — this is the `Session` apply hot
    /// path). On error, `self` is unchanged: all dirty frontiers are
    /// rebuilt fallibly off to the side before anything is spliced in.
    pub fn refresh_in_place(
        &mut self,
        prep: &Prepared<'_>,
        cfg: &ExpandedConfig,
        dirty: &[bool],
    ) -> Result<(), AssignError> {
        let n = prep.n_satellites() as usize;
        assert_eq!(dirty.len(), n, "dirty flags must cover every satellite");
        assert_eq!(
            self.n_colours(),
            n,
            "frontier set is for a different platform"
        );
        if !dirty.contains(&true) {
            return Ok(()); // observed-clean apply: nothing to rebuild
        }
        let mut rebuilt: Vec<Frontier> = dirty
            .iter()
            .map(|&d| if d { seed_frontier() } else { Frontier::new() })
            .collect();
        build_frontiers_into(prep, cfg, &mut rebuilt, dirty, None)?;
        self.splice_arenas(&rebuilt, dirty);
        self.rederive();
        Ok(())
    }

    /// Rebuilds the flat arenas, taking dirty colours' points from
    /// `rebuilt` and block-copying clean colours' slices from the current
    /// arenas (clean edge offsets are rebased, their payload memcpy'd).
    /// Infallible by design: every fallible step happened before this.
    fn splice_arenas(&mut self, rebuilt: &[Frontier], dirty: &[bool]) {
        let n = dirty.len();
        let mut point_starts = Vec::with_capacity(n + 1);
        let mut sigma = Vec::with_capacity(self.sigma.len());
        let mut beta = Vec::with_capacity(self.beta.len());
        let mut edge_starts = Vec::with_capacity(self.edge_starts.len());
        let mut edges = Vec::with_capacity(self.edges.len());
        point_starts.push(0u32);
        edge_starts.push(0u32);
        for s in 0..n {
            if dirty[s] {
                for p in &rebuilt[s] {
                    sigma.push(p.sigma);
                    beta.push(p.beta);
                    edges.extend_from_slice(&p.edges);
                    edge_starts.push(edges.len() as u32);
                }
            } else {
                let (lo, hi) = (
                    self.point_starts[s] as usize,
                    self.point_starts[s + 1] as usize,
                );
                sigma.extend_from_slice(&self.sigma[lo..hi]);
                beta.extend_from_slice(&self.beta[lo..hi]);
                let elo = self.edge_starts[lo];
                let base = edges.len() as u32;
                edges.extend_from_slice(&self.edges[elo as usize..self.edge_starts[hi] as usize]);
                edge_starts.extend(
                    self.edge_starts[lo + 1..=hi]
                        .iter()
                        .map(|&e| e - elo + base),
                );
            }
            point_starts.push(sigma.len() as u32);
        }
        self.point_starts = point_starts;
        self.sigma = sigma;
        self.beta = beta;
        self.edge_starts = edge_starts;
        self.edges = edges;
    }

    /// Re-derives the threshold set and composite count from the current
    /// arenas — the one place that logic lives, shared by the from-scratch
    /// and incremental paths.
    fn rederive(&mut self) {
        self.composites = self.beta.len() as u64;
        self.thetas.clear();
        self.thetas.extend_from_slice(&self.beta);
        self.thetas.sort();
        self.thetas.dedup();
    }

    /// Assembles the λ-independent preparation from per-colour frontiers.
    fn from_frontiers(frontiers: Vec<Frontier>) -> FrontierSet {
        let n = frontiers.len();
        let mut fs = FrontierSet {
            point_starts: vec![0; n + 1],
            sigma: Vec::new(),
            beta: Vec::new(),
            edge_starts: vec![0],
            edges: Vec::new(),
            thetas: Vec::new(),
            composites: 0,
        };
        fs.splice_arenas(&frontiers, &vec![true; n]);
        fs.rederive();
        fs
    }
}

/// Solves one λ query from a prepared [`FrontierSet`]: the threshold sweep
/// half of the full-expansion solver. Produces exactly the answer (cut,
/// objective, stats) that [`Expanded::solve`] computes from scratch.
pub fn solve_with_frontiers(
    prep: &Prepared<'_>,
    fs: &FrontierSet,
    lambda: Lambda,
) -> Result<Solution, AssignError> {
    // Allocation-light scan for the winning threshold; the per-colour
    // picks are only materialised once, for the winner. Candidate order,
    // the strict `<` and the per-θ pick rule match the one-pass
    // formulation exactly, so the chosen cut is byte-identical. The inner
    // loop binary-searches each colour's dense β array and reads the
    // matching σ by index — two contiguous streams, no pointer chasing.
    let cols: Vec<ColourFrontier<'_>> = fs.colours().collect();
    let mut best: Option<(u128, Cost)> = None;
    let mut evaluated = 0u64;
    'theta: for &theta in &fs.thetas {
        let mut s = Cost::ZERO;
        let mut b = Cost::ZERO;
        for f in &cols {
            let idx = f.beta.partition_point(|&pb| pb <= theta);
            if idx == 0 {
                continue 'theta; // infeasible θ for this colour
            }
            s += f.sigma[idx - 1];
            // The *actual* B may be below θ; use it.
            b = b.max(f.beta[idx - 1]);
        }
        evaluated += 1;
        let obj = lambda.ssb_scaled(s, b);
        if best.map(|(o, _)| obj < o).unwrap_or(true) {
            best = Some((obj, theta));
        }
    }
    let (_, theta) = best.ok_or(AssignError::NoFeasibleAssignment)?;
    let picks =
        pick_for_threshold(fs, theta).expect("the winning threshold was feasible during the scan");
    assemble(
        prep,
        fs,
        &picks,
        lambda,
        SolveStats {
            composites: fs.composites,
            evaluated,
            ..SolveStats::default()
        },
    )
}

/// The full-expansion exact solver for the SSB objective.
#[derive(Clone, Copy, Debug, Default)]
pub struct Expanded {
    /// Frontier configuration.
    pub config: ExpandedConfig,
}

impl Solver for Expanded {
    fn name(&self) -> &'static str {
        "expanded"
    }

    fn solve_in(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        _scratch: &mut SolveScratch,
    ) -> Result<Solution, AssignError> {
        let fs = FrontierSet::prepare(prep, &self.config)?;
        solve_with_frontiers(prep, &fs, lambda)
    }

    fn solve_cancellable(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        _scratch: &mut SolveScratch,
        cancel: &CancelToken,
    ) -> Result<Solution, AssignError> {
        let fs = FrontierSet::prepare_cancellable(prep, &self.config, cancel)?;
        solve_with_frontiers(prep, &fs, lambda)
    }
}

/// Exact solver for Bokhari's `max(S, B)` objective on the coloured
/// problem, reusing the same frontiers (used by the T3 experiment).
pub fn solve_sb_expanded(
    prep: &Prepared<'_>,
    config: &ExpandedConfig,
) -> Result<(Solution, Cost), AssignError> {
    let fs = FrontierSet::prepare(prep, config)?;
    let mut best: Option<(Cost, Vec<usize>)> = None;
    for &theta in &fs.thetas {
        let Some(picks) = pick_for_threshold(&fs, theta) else {
            continue;
        };
        let s: Cost = picks
            .iter()
            .zip(fs.colours())
            .map(|(&i, f)| f.sigma[i])
            .sum();
        let b: Cost = picks
            .iter()
            .zip(fs.colours())
            .map(|(&i, f)| f.beta[i])
            .fold(Cost::ZERO, Cost::max);
        let sb = s.max(b);
        if best.as_ref().map(|(o, _)| sb < *o).unwrap_or(true) {
            best = Some((sb, picks));
        }
    }
    let (sb, picks) = best.ok_or(AssignError::NoFeasibleAssignment)?;
    let sol = assemble(
        prep,
        &fs,
        &picks,
        // Report with λ=½ so `objective` is the S+B delay of the SB-optimal
        // partition — what T3 compares.
        Lambda::HALF,
        SolveStats {
            composites: fs.composites,
            ..SolveStats::default()
        },
    )?;
    Ok((sol, sb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;
    use hsa_tree::figures::fig2_tree;

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    #[test]
    fn pareto_prune_keeps_only_nondominated() {
        let pts = vec![
            FrontierPoint {
                sigma: c(5),
                beta: c(1),
                edges: vec![],
            },
            FrontierPoint {
                sigma: c(4),
                beta: c(2),
                edges: vec![],
            },
            FrontierPoint {
                sigma: c(6),
                beta: c(2),
                edges: vec![],
            }, // dominated by (4,2)
            FrontierPoint {
                sigma: c(4),
                beta: c(3),
                edges: vec![],
            }, // dominated by (4,2)
            FrontierPoint {
                sigma: c(1),
                beta: c(9),
                edges: vec![],
            },
        ];
        let f = pareto_prune(pts, 100).unwrap();
        let pairs: Vec<(u64, u64)> = f
            .iter()
            .map(|p| (p.sigma.ticks(), p.beta.ticks()))
            .collect();
        assert_eq!(pairs, vec![(5, 1), (4, 2), (1, 9)]);
    }

    #[test]
    fn frontier_cap_triggers() {
        let pts: Vec<FrontierPoint> = (0..10)
            .map(|i| FrontierPoint {
                sigma: c(100 - i),
                beta: c(i),
                edges: vec![],
            })
            .collect();
        assert!(matches!(
            pareto_prune(pts, 3),
            Err(AssignError::FrontierOverflow { cap: 3 })
        ));
    }

    #[test]
    fn matches_brute_force_on_the_paper_instance() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        for lambda in [
            Lambda::HALF,
            Lambda::ONE,
            Lambda::ZERO,
            Lambda::new(1, 3).unwrap(),
        ] {
            let exact = BruteForce::default().solve(&prep, lambda).unwrap();
            let fast = Expanded::default().solve(&prep, lambda).unwrap();
            assert_eq!(fast.objective, exact.objective, "λ={lambda}");
        }
    }

    #[test]
    fn sb_objective_on_paper_instance_matches_brute_force() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        // Brute-force the SB objective directly.
        let mut best = Cost::MAX;
        hsa_tree::for_each_cut(&t, &|e| prep.colouring.cuttable(e), &mut |cut| {
            let s = hsa_tree::host_time_of_cut(&t, &m, cut.edges());
            let b = hsa_tree::bottleneck_of_cut(
                &t,
                &m,
                |e| prep.colouring.edge_colour(e).satellite(),
                cut.edges(),
            );
            best = best.min(s.max(b));
        });
        let (_sol, sb) = solve_sb_expanded(&prep, &ExpandedConfig::default()).unwrap();
        assert_eq!(sb, best);
    }

    #[test]
    fn composites_are_counted() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let sol = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        assert!(
            sol.stats.composites >= 4,
            "one composite per used colour at least"
        );
    }

    #[test]
    fn single_node_tree() {
        let t = hsa_tree::TreeBuilder::new("only").build();
        let mut m = hsa_tree::CostModel::zeroed(&t, 1);
        m.set_host_time(CruId(0), c(7));
        m.pin_leaf(CruId(0), SatelliteId(0), c(3));
        let prep = Prepared::new(&t, &m).unwrap();
        let sol = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        // Only cut: sensor edge. S = 7, B = 3 → delay 10.
        assert_eq!(sol.report.end_to_end, c(10));
    }
}
