//! The common solver interface and solution type.

use crate::{
    evaluate_cut, evaluate_cut_in, AssignError, Assignment, CancelToken, DelayReport, EvalScratch,
    Prepared,
};
use hsa_graph::{Cost, Lambda, ScaledSsb, SolveScratch};
use hsa_tree::Cut;
use serde::{Deserialize, Serialize};

/// Search statistics, for the complexity experiments (T1/T2/T5).
///
/// All counters are `u64` so they aggregate portably across queries and
/// platforms — the batch engine sums millions of per-query stats via
/// [`SolveStats::merge`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Iterations of the candidate/eliminate loop (0 for non-iterative
    /// solvers).
    pub iterations: u64,
    /// Edges eliminated.
    pub edges_removed: u64,
    /// Expansion steps performed (paper Figure 9/10).
    pub expansions: u64,
    /// Composite edges materialised by expansions — the paper's |E′|.
    pub composites: u64,
    /// Branches explored (multi-band colours; 0 when never needed).
    pub branches: u64,
    /// Cuts/candidates explicitly evaluated (brute force, heuristics).
    pub evaluated: u64,
}

impl SolveStats {
    /// Accumulates another query's counters into this one (saturating, so
    /// long-running services never wrap).
    pub fn merge(&mut self, other: &SolveStats) {
        self.iterations = self.iterations.saturating_add(other.iterations);
        self.edges_removed = self.edges_removed.saturating_add(other.edges_removed);
        self.expansions = self.expansions.saturating_add(other.expansions);
        self.composites = self.composites.saturating_add(other.composites);
        self.branches = self.branches.saturating_add(other.branches);
        self.evaluated = self.evaluated.saturating_add(other.evaluated);
    }
}

/// A solved assignment with its objective breakdown.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Solution {
    /// The optimal (or heuristic) cut.
    pub cut: Cut,
    /// Placement of every CRU.
    pub assignment: Assignment,
    /// Full delay breakdown.
    pub report: DelayReport,
    /// The λ used.
    pub lambda: Lambda,
    /// The λ-scaled SSB objective value (what was minimised).
    pub objective: ScaledSsb,
    /// Search statistics.
    pub stats: SolveStats,
}

impl Solution {
    /// Builds a solution from a cut by direct evaluation.
    pub fn from_cut(
        prep: &Prepared<'_>,
        cut: Cut,
        lambda: Lambda,
        stats: SolveStats,
    ) -> Result<Solution, AssignError> {
        let (assignment, report) = evaluate_cut(prep, &cut)?;
        let objective = report.ssb_scaled(lambda);
        Ok(Solution {
            cut,
            assignment,
            report,
            lambda,
            objective,
            stats,
        })
    }

    /// Walk-free twin of [`Solution::from_cut`]: evaluates through the
    /// σ/β labels and the pre-order index ([`crate::evaluate_cut_in`]),
    /// reusing `scratch`'s buffers. Byte-identical to [`Solution::from_cut`]
    /// for any cut the solvers produce — that identity is what the
    /// engine's verify mode and the `proptest_eval` suite pin down.
    pub fn from_cut_in(
        prep: &Prepared<'_>,
        cut: Cut,
        lambda: Lambda,
        stats: SolveStats,
        scratch: &mut EvalScratch,
    ) -> Result<Solution, AssignError> {
        let (assignment, report) = evaluate_cut_in(prep, &cut, scratch)?;
        let objective = report.ssb_scaled(lambda);
        Ok(Solution {
            cut,
            assignment,
            report,
            lambda,
            objective,
            stats,
        })
    }

    /// End-to-end delay (S + B) of this solution.
    pub fn delay(&self) -> Cost {
        self.report.end_to_end
    }
}

/// A solver of the coloured assignment problem.
///
/// The workspace-based entry point [`Solver::solve_in`] is the one
/// implementations provide; [`Solver::solve`] is a convenience wrapper that
/// allocates a throwaway [`SolveScratch`]. Batch services keep one scratch
/// per worker and call `solve_in` so steady-state solving allocates only
/// for the returned [`Solution`].
pub trait Solver {
    /// Short stable name used in benches and reports.
    fn name(&self) -> &'static str;

    /// Solves the prepared instance for the given λ inside a reusable
    /// workspace. Solvers that need no search buffers simply ignore it.
    fn solve_in(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        scratch: &mut SolveScratch,
    ) -> Result<Solution, AssignError>;

    /// Solves the prepared instance for the given λ (fresh workspace).
    fn solve(&self, prep: &Prepared<'_>, lambda: Lambda) -> Result<Solution, AssignError> {
        self.solve_in(prep, lambda, &mut SolveScratch::new())
    }

    /// Cancellation-aware solve for racing portfolios. Implementations
    /// that can observe the token poll it at loop boundaries: exact
    /// solvers abort with [`AssignError::Cancelled`], anytime heuristics
    /// return their best incumbent instead. The default ignores the token
    /// and solves to completion — correct, just not promptly cancellable.
    fn solve_cancellable(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        scratch: &mut SolveScratch,
        cancel: &CancelToken,
    ) -> Result<Solution, AssignError> {
        let _ = cancel;
        self.solve_in(prep, lambda, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_tree::figures::fig2_tree;

    #[test]
    fn from_cut_round_trips_objective() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::all_on_host(&t);
        let sol = Solution::from_cut(&prep, cut, Lambda::HALF, SolveStats::default()).unwrap();
        assert_eq!(
            sol.objective,
            sol.report.host_time.ticks() as u128 + sol.report.bottleneck.ticks() as u128
        );
        assert_eq!(sol.delay(), sol.report.end_to_end);
    }

    #[test]
    fn stats_merge_accumulates_and_saturates() {
        let mut a = SolveStats {
            iterations: 2,
            edges_removed: 3,
            expansions: 1,
            composites: 4,
            branches: 0,
            evaluated: u64::MAX - 1,
        };
        let b = SolveStats {
            iterations: 5,
            edges_removed: 7,
            expansions: 0,
            composites: 6,
            branches: 9,
            evaluated: 10,
        };
        a.merge(&b);
        assert_eq!(a.iterations, 7);
        assert_eq!(a.edges_removed, 10);
        assert_eq!(a.expansions, 1);
        assert_eq!(a.composites, 10);
        assert_eq!(a.branches, 9);
        assert_eq!(a.evaluated, u64::MAX, "saturates instead of wrapping");
    }
}
