//! The common solver interface and solution type.

use crate::{evaluate_cut, AssignError, Assignment, DelayReport, Prepared};
use hsa_graph::{Cost, Lambda, ScaledSsb};
use hsa_tree::Cut;

/// Search statistics, for the complexity experiments (T1/T2/T5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Iterations of the candidate/eliminate loop (0 for non-iterative
    /// solvers).
    pub iterations: usize,
    /// Edges eliminated.
    pub edges_removed: usize,
    /// Expansion steps performed (paper Figure 9/10).
    pub expansions: usize,
    /// Composite edges materialised by expansions — the paper's |E′|.
    pub composites: usize,
    /// Branches explored (multi-band colours; 0 when never needed).
    pub branches: usize,
    /// Cuts/candidates explicitly evaluated (brute force, heuristics).
    pub evaluated: u64,
}

/// A solved assignment with its objective breakdown.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The optimal (or heuristic) cut.
    pub cut: Cut,
    /// Placement of every CRU.
    pub assignment: Assignment,
    /// Full delay breakdown.
    pub report: DelayReport,
    /// The λ used.
    pub lambda: Lambda,
    /// The λ-scaled SSB objective value (what was minimised).
    pub objective: ScaledSsb,
    /// Search statistics.
    pub stats: SolveStats,
}

impl Solution {
    /// Builds a solution from a cut by direct evaluation.
    pub fn from_cut(
        prep: &Prepared<'_>,
        cut: Cut,
        lambda: Lambda,
        stats: SolveStats,
    ) -> Result<Solution, AssignError> {
        let (assignment, report) = evaluate_cut(prep, &cut)?;
        let objective = report.ssb_scaled(lambda);
        Ok(Solution {
            cut,
            assignment,
            report,
            lambda,
            objective,
            stats,
        })
    }

    /// End-to-end delay (S + B) of this solution.
    pub fn delay(&self) -> Cost {
        self.report.end_to_end
    }
}

/// A solver of the coloured assignment problem.
pub trait Solver {
    /// Short stable name used in benches and reports.
    fn name(&self) -> &'static str;
    /// Solves the prepared instance for the given λ.
    fn solve(&self, prep: &Prepared<'_>, lambda: Lambda) -> Result<Solution, AssignError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_tree::figures::fig2_tree;

    #[test]
    fn from_cut_round_trips_objective() {
        let (t, m) = fig2_tree();
        let prep = Prepared::new(&t, &m).unwrap();
        let cut = Cut::all_on_host(&t);
        let sol = Solution::from_cut(&prep, cut, Lambda::HALF, SolveStats::default()).unwrap();
        assert_eq!(
            sol.objective,
            sol.report.host_time.ticks() as u128 + sol.report.bottleneck.ticks() as u128
        );
        assert_eq!(sol.delay(), sol.report.end_to_end);
    }
}
