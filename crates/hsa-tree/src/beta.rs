//! The β (satellite execution + communication time) labelling — paper §5.3.
//!
//! An assignment-graph edge crossing tree edge `⟨i,j⟩` cuts the subtree of
//! `j` off to `j`'s correspondent satellite. Its β weight is
//!
//! ```text
//! β(⟨i,j⟩) = Σ_{m ∈ subtree(j)} s_m  +  c_{j,i}
//! ```
//!
//! — the paper's example: β(⟨CRU3,CRU6⟩) = `s6 + s13 + c_{6,3}`. A virtual
//! sensor edge `⟨A,l⟩` cuts nothing off; only the raw sensor frames cross
//! the link: β(⟨A,l⟩) = `c_{s,l}` (the paper's ⟨A,CRU10⟩ example).

use crate::{CostModel, CruTree, SatelliteId, TreeEdge, TreeError};
use hsa_graph::Cost;

/// The β label of every closed-tree edge.
#[derive(Clone, Debug)]
pub struct BetaLabels {
    /// β of `Parent(c)`, indexed by `c` (root entry unused, zero).
    pub parent_edge: Vec<Cost>,
    /// β of `Sensor(l)`, indexed by `l` (zero for internal nodes).
    pub sensor_edge: Vec<Cost>,
}

impl BetaLabels {
    /// Computes the labelling in one post-order pass (subtree `s` sums are
    /// accumulated bottom-up, so the whole labelling is O(n)).
    pub fn compute(tree: &CruTree, costs: &CostModel) -> Result<BetaLabels, TreeError> {
        costs.validate(tree)?;
        let n = tree.len();
        let mut subtree_s = vec![Cost::ZERO; n];
        for c in tree.postorder() {
            let mut sum = costs.s(c);
            for &ch in tree.children(c) {
                sum += subtree_s[ch.index()];
            }
            subtree_s[c.index()] = sum;
        }
        let mut parent_edge = vec![Cost::ZERO; n];
        let mut sensor_edge = vec![Cost::ZERO; n];
        for c in tree.preorder() {
            if c != tree.root() {
                parent_edge[c.index()] = subtree_s[c.index()] + costs.c_up(c);
            }
            if tree.is_leaf(c) {
                sensor_edge[c.index()] = costs.c_raw(c);
            }
        }
        Ok(BetaLabels {
            parent_edge,
            sensor_edge,
        })
    }

    /// β of a closed-tree edge.
    pub fn beta(&self, e: TreeEdge) -> Cost {
        match e {
            TreeEdge::Parent(c) => self.parent_edge[c.index()],
            TreeEdge::Sensor(l) => self.sensor_edge[l.index()],
        }
    }
}

/// The *oracle*: per-satellite load of a cut, computed directly.
///
/// Satellite σ's load = Σ s over CRUs assigned to it (subtrees below cut
/// `Parent` edges of its colour) + the communication cost of every cut edge
/// of its colour (`c_up` for parent edges, `c_raw` for sensor edges).
/// Returns a vector indexed by satellite id.
pub fn satellite_loads_of_cut(
    tree: &CruTree,
    costs: &CostModel,
    colour_of: impl Fn(TreeEdge) -> Option<SatelliteId>,
    cut: &[TreeEdge],
) -> Vec<Cost> {
    let mut loads = vec![Cost::ZERO; costs.n_satellites() as usize];
    for &e in cut {
        let Some(sat) = colour_of(e) else { continue };
        let slot = &mut loads[sat.index()];
        match e {
            TreeEdge::Parent(c) => {
                for x in tree.subtree(c) {
                    *slot += costs.s(x);
                }
                *slot += costs.c_up(c);
            }
            TreeEdge::Sensor(l) => {
                *slot += costs.c_raw(l);
            }
        }
    }
    loads
}

/// The bottleneck `B` of a cut: the maximum satellite load.
pub fn bottleneck_of_cut(
    tree: &CruTree,
    costs: &CostModel,
    colour_of: impl Fn(TreeEdge) -> Option<SatelliteId>,
    cut: &[TreeEdge],
) -> Cost {
    satellite_loads_of_cut(tree, costs, colour_of, cut)
        .into_iter()
        .fold(Cost::ZERO, Cost::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{cru, fig2_tree, SAT_B, SAT_R};
    use crate::Colouring;

    #[test]
    fn paper_examples() {
        let (t, m) = fig2_tree();
        let b = BetaLabels::compute(&t, &m).unwrap();
        // β(⟨CRU3,CRU6⟩) = s6 + s13 + c_{6,3}
        assert_eq!(
            b.beta(TreeEdge::Parent(cru(6))),
            m.s(cru(6)) + m.s(cru(13)) + m.c_up(cru(6))
        );
        // β(⟨A,CRU10⟩) = c_{s,10}
        assert_eq!(b.beta(TreeEdge::Sensor(cru(10))), m.c_raw(cru(10)));
    }

    #[test]
    fn subtree_sums_accumulate() {
        let (t, m) = fig2_tree();
        let b = BetaLabels::compute(&t, &m).unwrap();
        // β(⟨CRU2,CRU4⟩) = s4 + s9 + s10 + c_up(4).
        assert_eq!(
            b.beta(TreeEdge::Parent(cru(4))),
            m.s(cru(4)) + m.s(cru(9)) + m.s(cru(10)) + m.c_up(cru(4))
        );
        // β of a leaf's parent edge = its own s + c_up.
        assert_eq!(
            b.beta(TreeEdge::Parent(cru(9))),
            m.s(cru(9)) + m.c_up(cru(9))
        );
    }

    #[test]
    fn satellite_loads_direct_oracle() {
        let (t, m) = fig2_tree();
        let col = Colouring::compute(&t, &m).unwrap();
        let colour_of = |e: TreeEdge| col.edge_colour(e).satellite();
        // Cut subtree(CRU4) → R and subtree(CRU6) → B; CRU5's leaves raw;
        // CRU7, CRU8 raw.
        let cut = [
            TreeEdge::Parent(cru(4)),
            TreeEdge::Sensor(cru(11)),
            TreeEdge::Sensor(cru(12)),
            TreeEdge::Parent(cru(6)),
            TreeEdge::Sensor(cru(7)),
            TreeEdge::Sensor(cru(8)),
        ];
        let loads = satellite_loads_of_cut(&t, &m, colour_of, &cut);
        // R: s4+s9+s10 + c_up(4)
        assert_eq!(
            loads[SAT_R.index()],
            m.s(cru(4)) + m.s(cru(9)) + m.s(cru(10)) + m.c_up(cru(4))
        );
        // B: raw(11) + raw(12) + (s6+s13+c_up(6))
        assert_eq!(
            loads[SAT_B.index()],
            m.c_raw(cru(11)) + m.c_raw(cru(12)) + m.s(cru(6)) + m.s(cru(13)) + m.c_up(cru(6))
        );
        let bott = bottleneck_of_cut(&t, &m, colour_of, &cut);
        assert_eq!(bott, loads.iter().copied().fold(Cost::ZERO, Cost::max));
    }

    #[test]
    fn beta_labels_match_oracle_on_singleton_cuts() {
        let (t, m) = fig2_tree();
        let col = Colouring::compute(&t, &m).unwrap();
        let b = BetaLabels::compute(&t, &m).unwrap();
        let colour_of = |e: TreeEdge| col.edge_colour(e).satellite();
        // For any single cuttable parent edge, β(edge) equals the load it
        // induces on its own satellite.
        for k in [4u32, 5, 6, 7, 8, 9, 13] {
            let e = TreeEdge::Parent(cru(k));
            if let Some(sat) = colour_of(e) {
                let loads = satellite_loads_of_cut(&t, &m, colour_of, &[e]);
                assert_eq!(loads[sat.index()], b.beta(e), "edge {e}");
            }
        }
    }

    #[test]
    fn root_parent_edge_is_zero() {
        let (t, m) = fig2_tree();
        let b = BetaLabels::compute(&t, &m).unwrap();
        assert_eq!(b.beta(TreeEdge::Parent(t.root())), Cost::ZERO);
        assert_eq!(b.beta(TreeEdge::Sensor(cru(2))), Cost::ZERO); // internal
    }
}
