//! # hsa-tree — the CRU tree model of the IPPS 2007 paper
//!
//! A **context reasoning procedure** is an ordered tree of CRUs (Context
//! Reasoning Units): leaves ingest sensor data, the root produces the
//! high-level context consumed on the host (paper §3). This crate owns
//! everything tree-side of the reproduction:
//!
//! * [`CruTree`] / [`TreeBuilder`] — ordered (planar) arena trees with the
//!   traversals the dual construction needs (leaf order, leaf spans,
//!   leftmost-child tests);
//! * [`CostModel`] — the per-CRU `h`/`s` processing times, `c_up`/`c_raw`
//!   communication times, and the physical pinning of leaf sensors to
//!   satellites (§5.3);
//! * [`Colouring`] — the §5.1 colouring scheme: colour propagation,
//!   conflict detection (host-forced CRUs), colour bands and interleaving;
//! * [`SigmaLabels`] / [`BetaLabels`] — the Figure 8 σ labelling and §5.3 β
//!   labelling of the closed tree, each paired with a *direct oracle*
//!   ([`host_time_of_cut`], [`satellite_loads_of_cut`]) that property tests
//!   compare against;
//! * [`Cut`] and exhaustive cut enumeration ([`for_each_cut`]) — the
//!   tree-side image of assignment-graph paths and the brute-force ground
//!   truth;
//! * [`Delta`] / [`DeltaOp`] — structured cost-model perturbations (drift,
//!   satellite capacity changes, sensor churn) for the incremental
//!   re-solver (`hsa-engine::Session`, DESIGN.md §9);
//! * [`figures::fig2_tree`] — a canonical reconstruction of the paper's
//!   worked example, satisfying every constraint in the surviving text.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod beta;
mod colouring;
mod costs;
mod cuts;
mod delta;
mod error;
mod hash;
mod ids;
mod sigma;
mod tree;

pub mod figures;
pub mod render;

pub use beta::{bottleneck_of_cut, satellite_loads_of_cut, BetaLabels};
pub use colouring::{Band, Colour, Colouring};
pub use costs::CostModel;
pub use cuts::{count_cuts, for_each_cut, Cut};
pub use delta::{Delta, DeltaOp};
pub use error::TreeError;
pub use hash::{Fnv1a, HashCache};
pub use ids::{CruId, SatelliteId, TreeEdge};
pub use sigma::{host_time_of_cut, SigmaLabels};
pub use tree::{CruNode, CruTree, TreeBuilder};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        Colour, Colouring, CostModel, CruId, CruTree, Cut, Delta, DeltaOp, SatelliteId,
        TreeBuilder, TreeEdge, TreeError,
    };
}
