//! Typed identifiers for CRUs, satellites and tree edges.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of a CRU (Context Reasoning Unit) in a [`crate::CruTree`].
/// Indexes are dense; the root is *not* necessarily id 0 (builders decide),
/// though [`crate::TreeBuilder`] always allocates the root first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CruId(pub u32);

impl CruId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CruId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CRU{}", self.0)
    }
}

impl fmt::Display for CruId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CRU{}", self.0)
    }
}

/// Identifier of a satellite (equivalently, a *colour* — the paper paints
/// each satellite with a distinguishable colour, §5.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SatelliteId(pub u32);

impl SatelliteId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SatelliteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sat{}", self.0)
    }
}

impl fmt::Display for SatelliteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sat{}", self.0)
    }
}

/// An edge of the *closed* CRU tree (paper §5.2: all sensors are merged
/// into the dummy node "A", adding one virtual edge below every leaf).
///
/// * `Parent(c)` — the real tree edge from `c`'s parent down to `c`.
///   Cutting it assigns the whole subtree of `c` to `c`'s satellite.
/// * `Sensor(l)` — the virtual edge from leaf `l` down to the dummy sensor
///   node A. Cutting it keeps `l` on the host; only the raw sensor frames
///   cross the link (β weight `c_{s,l}`, §5.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TreeEdge {
    /// Edge from the parent of the given CRU down to it.
    Parent(CruId),
    /// Virtual edge from the given *leaf* CRU down to the dummy sensor node.
    Sensor(CruId),
}

impl TreeEdge {
    /// The CRU at the *lower* end's top: the node whose subtree is separated
    /// when this edge is cut. For `Parent(c)` that is `c`; for `Sensor(l)`
    /// the separated subtree is empty and the reference node is `l`.
    #[inline]
    pub fn node(self) -> CruId {
        match self {
            TreeEdge::Parent(c) | TreeEdge::Sensor(c) => c,
        }
    }

    /// Whether this is a virtual sensor edge.
    #[inline]
    pub fn is_sensor(self) -> bool {
        matches!(self, TreeEdge::Sensor(_))
    }
}

impl fmt::Debug for TreeEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for TreeEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeEdge::Parent(c) => write!(f, "⟨parent,{c}⟩"),
            TreeEdge::Sensor(c) => write!(f, "⟨A,{c}⟩"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_the_paper() {
        assert_eq!(CruId(5).to_string(), "CRU5");
        assert_eq!(format!("{:?}", SatelliteId(2)), "Sat2");
        assert_eq!(TreeEdge::Parent(CruId(6)).to_string(), "⟨parent,CRU6⟩");
        assert_eq!(TreeEdge::Sensor(CruId(10)).to_string(), "⟨A,CRU10⟩");
    }

    #[test]
    fn tree_edge_accessors() {
        assert_eq!(TreeEdge::Parent(CruId(3)).node(), CruId(3));
        assert_eq!(TreeEdge::Sensor(CruId(3)).node(), CruId(3));
        assert!(TreeEdge::Sensor(CruId(1)).is_sensor());
        assert!(!TreeEdge::Parent(CruId(1)).is_sensor());
    }

    #[test]
    fn ordering_is_stable_for_cut_normalisation() {
        let mut v = [TreeEdge::Sensor(CruId(1)), TreeEdge::Parent(CruId(2))];
        v.sort();
        assert_eq!(v[0], TreeEdge::Parent(CruId(2)));
    }
}
