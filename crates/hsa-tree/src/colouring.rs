//! The colouring scheme of paper §5.1.
//!
//! Each satellite is painted a distinguishable colour. Each edge of the CRU
//! tree is painted by *propagating* the colour of the satellites its
//! subtree's sensors are pinned to, towards the root. Where the propagated
//! colours conflict (a subtree touches ≥ 2 satellites), the edge is
//! **conflicted**: it can never be cut, which is exactly the paper's
//! statement that the CRUs above it "have to be deployed on the host"
//! (CRU1–CRU3 in the paper's Figure 5).
//!
//! Beyond the paper, this module computes the **band structure** of the
//! leaf colour sequence — the maximal runs of equal colour in planar leaf
//! order. Bands drive the expansion step of the adapted SSB algorithm
//! (paper Figure 9) and the detection of *interleaved* colours, where the
//! paper's contiguous expansion alone is insufficient (see DESIGN.md §2).

use crate::{CostModel, CruId, CruTree, SatelliteId, TreeEdge, TreeError};
use serde::{Deserialize, Serialize};

/// Colour of a node/edge after propagation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Colour {
    /// Subtree's sensors all live on one satellite.
    Satellite(SatelliteId),
    /// Subtree touches two or more satellites: host-forced.
    Conflict,
}

impl Colour {
    /// The satellite, if uniquely coloured.
    pub fn satellite(self) -> Option<SatelliteId> {
        match self {
            Colour::Satellite(s) => Some(s),
            Colour::Conflict => None,
        }
    }
}

/// A maximal run of consecutive equally-coloured leaves (in planar order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Band {
    /// The satellite colouring this band.
    pub satellite: SatelliteId,
    /// First leaf position (inclusive).
    pub lo: u32,
    /// Last leaf position (exclusive).
    pub hi: u32,
}

/// Result of colouring a costed CRU tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Colouring {
    /// Colour per node (indexed by CRU id): the colour of its subtree, i.e.
    /// of its *parent* edge in the paper's edge-painting.
    pub node_colour: Vec<Colour>,
    /// CRUs that must run on the host (conflicted nodes plus the root).
    pub host_forced: Vec<CruId>,
    /// Satellite of each leaf position, in planar leaf order.
    pub leaf_colours: Vec<SatelliteId>,
    /// Maximal same-colour runs of `leaf_colours`.
    pub bands: Vec<Band>,
    /// Satellites that occupy ≥ 2 disjoint bands: for these the contiguous
    /// expansion of the paper's Figure 9 cannot couple all their cut edges.
    pub interleaved: Vec<SatelliteId>,
}

impl Colouring {
    /// Computes the colouring of `tree` under `costs`' sensor pinning.
    ///
    /// Single post-order pass: a leaf takes its pinned satellite; an
    /// internal node takes its children's common colour or `Conflict`.
    pub fn compute(tree: &CruTree, costs: &CostModel) -> Result<Colouring, TreeError> {
        costs.validate(tree)?;
        let mut node_colour = vec![Colour::Conflict; tree.len()];
        for c in tree.postorder() {
            node_colour[c.index()] = if tree.is_leaf(c) {
                Colour::Satellite(
                    costs
                        .pinned_satellite(c)
                        .ok_or(TreeError::UnpinnedLeaf(c))?,
                )
            } else {
                let mut it = tree.children(c).iter();
                let first = node_colour[it.next().expect("internal node").index()];
                if it.all(|&ch| node_colour[ch.index()] == first) {
                    first
                } else {
                    Colour::Conflict
                }
            };
        }

        let host_forced: Vec<CruId> = tree
            .preorder()
            .into_iter()
            .filter(|&c| c == tree.root() || node_colour[c.index()] == Colour::Conflict)
            .collect();

        let leaf_colours: Vec<SatelliteId> = tree
            .leaves_in_order()
            .into_iter()
            .map(|l| costs.pinned_satellite(l).expect("validated above"))
            .collect();

        let bands = bands_of(&leaf_colours);
        let mut band_count = vec![0u32; costs.n_satellites() as usize];
        for b in &bands {
            band_count[b.satellite.index()] += 1;
        }
        let interleaved = band_count
            .iter()
            .enumerate()
            .filter(|(_, &n)| n >= 2)
            .map(|(i, _)| SatelliteId(i as u32))
            .collect();

        Ok(Colouring {
            node_colour,
            host_forced,
            leaf_colours,
            bands,
            interleaved,
        })
    }

    /// Colour of a closed-tree edge: both `Parent(c)` and `Sensor(c)` carry
    /// the colour propagated through `c` (a sensor edge's "subtree" is the
    /// leaf's own sensors). Conflicted edges may never be cut.
    pub fn edge_colour(&self, e: TreeEdge) -> Colour {
        match e {
            TreeEdge::Parent(c) => self.node_colour[c.index()],
            // A leaf's own colour is always a concrete satellite.
            TreeEdge::Sensor(l) => self.node_colour[l.index()],
        }
    }

    /// Whether an edge may appear in a cut (non-conflicted).
    pub fn cuttable(&self, e: TreeEdge) -> bool {
        self.edge_colour(e) != Colour::Conflict
    }

    /// True when every satellite occupies a single contiguous band — the
    /// regime where the paper's contiguous expansion is complete.
    pub fn is_contiguous(&self) -> bool {
        self.interleaved.is_empty()
    }

    /// The number of distinct satellites that actually pin a sensor.
    pub fn used_satellites(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for &s in &self.leaf_colours {
            seen.insert(s);
        }
        seen.len()
    }
}

fn bands_of(leaf_colours: &[SatelliteId]) -> Vec<Band> {
    let mut bands: Vec<Band> = Vec::new();
    for (i, &s) in leaf_colours.iter().enumerate() {
        match bands.last_mut() {
            Some(b) if b.satellite == s && b.hi == i as u32 => b.hi += 1,
            _ => bands.push(Band {
                satellite: s,
                lo: i as u32,
                hi: i as u32 + 1,
            }),
        }
    }
    bands
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;
    use hsa_graph::Cost;

    /// root ── a ── (l1→Sat0, l2→Sat0)
    ///      └─ b ── (l3→Sat1)
    fn two_sat_tree() -> (CruTree, CostModel) {
        let mut b = TreeBuilder::new("root");
        let root = b.root();
        let a = b.add_child(root, "a");
        let l1 = b.add_child(a, "l1");
        let l2 = b.add_child(a, "l2");
        let bb = b.add_child(root, "b");
        let l3 = b.add_child(bb, "l3");
        let t = b.build();
        let mut m = CostModel::zeroed(&t, 2);
        m.pin_leaf(l1, SatelliteId(0), Cost::ZERO);
        m.pin_leaf(l2, SatelliteId(0), Cost::ZERO);
        m.pin_leaf(l3, SatelliteId(1), Cost::ZERO);
        (t, m)
    }

    #[test]
    fn propagation_and_conflicts() {
        let (t, m) = two_sat_tree();
        let col = Colouring::compute(&t, &m).unwrap();
        // a's subtree is pure Sat0; b's is pure Sat1; root conflicts.
        assert_eq!(col.node_colour[1], Colour::Satellite(SatelliteId(0)));
        assert_eq!(col.node_colour[4], Colour::Satellite(SatelliteId(1)));
        assert_eq!(col.node_colour[0], Colour::Conflict);
        assert_eq!(col.host_forced, vec![CruId(0)]);
        assert!(col.cuttable(TreeEdge::Parent(CruId(1))));
        assert!(!col.cuttable(TreeEdge::Parent(CruId(0)))); // root edge is conflicted by id 0
    }

    #[test]
    fn single_satellite_never_conflicts() {
        let mut b = TreeBuilder::new("root");
        let root = b.root();
        let a = b.add_child(root, "a");
        let l1 = b.add_child(a, "l1");
        let t = b.build();
        let mut m = CostModel::zeroed(&t, 1);
        m.pin_leaf(l1, SatelliteId(0), Cost::ZERO);
        let col = Colouring::compute(&t, &m).unwrap();
        // Whole tree colourable: only the root is host-forced (by policy).
        assert_eq!(col.host_forced, vec![CruId(0)]);
        assert_eq!(col.node_colour[0], Colour::Satellite(SatelliteId(0)));
        assert!(col.is_contiguous());
        assert_eq!(col.used_satellites(), 1);
    }

    #[test]
    fn bands_contiguous_case() {
        let (t, m) = two_sat_tree();
        let col = Colouring::compute(&t, &m).unwrap();
        assert_eq!(col.bands.len(), 2);
        assert_eq!(
            col.bands[0],
            Band {
                satellite: SatelliteId(0),
                lo: 0,
                hi: 2
            }
        );
        assert_eq!(
            col.bands[1],
            Band {
                satellite: SatelliteId(1),
                lo: 2,
                hi: 3
            }
        );
        assert!(col.is_contiguous());
        assert!(col.interleaved.is_empty());
    }

    /// Leaves pinned 0,1,0 — satellite 0 occupies two bands.
    #[test]
    fn interleaving_is_detected() {
        let mut b = TreeBuilder::new("root");
        let root = b.root();
        let l1 = b.add_child(root, "l1");
        let l2 = b.add_child(root, "l2");
        let l3 = b.add_child(root, "l3");
        let t = b.build();
        let mut m = CostModel::zeroed(&t, 2);
        m.pin_leaf(l1, SatelliteId(0), Cost::ZERO);
        m.pin_leaf(l2, SatelliteId(1), Cost::ZERO);
        m.pin_leaf(l3, SatelliteId(0), Cost::ZERO);
        let col = Colouring::compute(&t, &m).unwrap();
        assert_eq!(col.bands.len(), 3);
        assert_eq!(col.interleaved, vec![SatelliteId(0)]);
        assert!(!col.is_contiguous());
    }

    #[test]
    fn conflict_propagates_to_ancestors_only() {
        // root ── x ── (a: Sat0, b: Sat1)   → x and root conflicted
        //      └─ c: Sat0                    → c clean
        let mut b = TreeBuilder::new("root");
        let root = b.root();
        let x = b.add_child(root, "x");
        let a = b.add_child(x, "a");
        let bb = b.add_child(x, "b");
        let c = b.add_child(root, "c");
        let t = b.build();
        let mut m = CostModel::zeroed(&t, 2);
        m.pin_leaf(a, SatelliteId(0), Cost::ZERO);
        m.pin_leaf(bb, SatelliteId(1), Cost::ZERO);
        m.pin_leaf(c, SatelliteId(0), Cost::ZERO);
        let col = Colouring::compute(&t, &m).unwrap();
        assert_eq!(col.node_colour[x.index()], Colour::Conflict);
        assert_eq!(col.node_colour[root.index()], Colour::Conflict);
        assert_eq!(
            col.node_colour[c.index()],
            Colour::Satellite(SatelliteId(0))
        );
        assert_eq!(col.host_forced, vec![CruId(0), x]);
    }

    #[test]
    fn sensor_edges_carry_leaf_colour() {
        let (t, m) = two_sat_tree();
        let col = Colouring::compute(&t, &m).unwrap();
        assert_eq!(
            col.edge_colour(TreeEdge::Sensor(CruId(2))),
            Colour::Satellite(SatelliteId(0))
        );
        assert_eq!(
            col.edge_colour(TreeEdge::Sensor(CruId(5))),
            Colour::Satellite(SatelliteId(1))
        );
    }

    #[test]
    fn unpinned_leaf_fails() {
        let (t, mut m) = two_sat_tree();
        m.set_pinning(CruId(2), None);
        assert!(Colouring::compute(&t, &m).is_err());
    }
}
